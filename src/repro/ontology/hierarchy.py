"""Hierarchies (Hasse diagrams of partial orders) and ontologies.

Section 4.1: "Suppose (S, <=) is a partially ordered set.  A *hierarchy*
for (S, <=) is the Hasse diagram for (S, <=) ... a directed acyclic graph
whose set of nodes is S [with] a minimal set of edges such that there is a
path from u to v in the Hasse diagram iff u <= v."

Edges therefore point *upward*: an edge ``u -> v`` means ``u <= v`` and v
covers u (author -> article in the part-of example).  The constructor
accepts any acyclic edge set and normalises it to the minimal (transitively
reduced) Hasse form, so ``Hierarchy`` values are canonical: two hierarchies
encode the same partial order iff they compare equal.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .. import graphutils
from ..errors import OntologyError, UnknownTermError

Term = Hashable


class Hierarchy:
    """An immutable Hasse diagram over a finite set of terms.

    Parameters
    ----------
    edges:
        Pairs ``(u, v)`` meaning ``u <= v`` (or a mapping ``u -> iterable``
        of upper covers).  The pairs may contain redundant (transitively
        implied) edges; they are reduced to Hasse form.
    nodes:
        Additional isolated terms that carry no order relationships.

    Raises
    ------
    HierarchyCycleError
        If the supplied edges contain a directed cycle (a partial order is
        antisymmetric, so cycles are impossible).
    """

    __slots__ = ("_parents", "_children", "_up", "_down", "_hash")

    def __init__(
        self,
        edges: "Iterable[Tuple[Term, Term]] | Mapping[Term, Iterable[Term]]" = (),
        nodes: Iterable[Term] = (),
    ) -> None:
        if isinstance(edges, Mapping):
            edge_pairs = [(u, v) for u, targets in edges.items() for v in targets]
        else:
            edge_pairs = [(u, v) for u, v in edges]
        graph: Dict[Term, Set[Term]] = {}
        for u, v in edge_pairs:
            if u == v:
                continue  # reflexive pairs are implicit in a partial order
            graph.setdefault(u, set()).add(v)
            graph.setdefault(v, set())
        for node in nodes:
            graph.setdefault(node, set())
        reduced = graphutils.transitive_reduction(graph)  # also checks acyclicity
        self._parents: Dict[Term, FrozenSet[Term]] = {
            node: frozenset(targets) for node, targets in reduced.items()
        }
        self._finish()

    @classmethod
    def from_hasse(
        cls,
        edges: "Iterable[Tuple[Term, Term]]" = (),
        nodes: Iterable[Term] = (),
    ) -> "Hierarchy":
        """Construct from an edge set already in Hasse form.

        Skips the transitive-reduction pass — the dominant cost of
        ``__init__`` on large hierarchies — for callers restoring a
        hierarchy that was *serialised from an existing* ``Hierarchy``,
        whose edges are transitively reduced by construction.  The
        reachability closures are derived lazily from whatever edges were
        given (closure computation terminates on any acyclic input), so
        feeding non-Hasse edges yields a non-canonical order rather than
        a hang; callers must authenticate the payload (e.g. with a
        checksum) before taking this fast path.
        """
        hierarchy = cls.__new__(cls)
        graph: Dict[Term, Set[Term]] = {}
        for u, v in edges:
            if u == v:
                continue
            graph.setdefault(u, set()).add(v)
            graph.setdefault(v, set())
        for node in nodes:
            graph.setdefault(node, set())
        hierarchy._parents = {
            node: frozenset(targets) for node, targets in graph.items()
        }
        hierarchy._finish()
        return hierarchy

    def _finish(self) -> None:
        """Derive the children map from ``_parents``; closures stay lazy."""
        children: Dict[Term, Set[Term]] = {node: set() for node in self._parents}
        for node, targets in self._parents.items():
            for target in targets:
                children[target].add(node)
        self._children: Dict[Term, FrozenSet[Term]] = {
            node: frozenset(kids) for node, kids in children.items()
        }
        self._up: Optional[Dict[Term, FrozenSet[Term]]] = None
        self._down: Optional[Dict[Term, FrozenSet[Term]]] = None
        self._hash: Optional[int] = None

    @property
    def _up_closure(self) -> Dict[Term, FrozenSet[Term]]:
        """Reachability closure over ``_parents``, computed on first use.

        Laziness matters for restored hierarchies (cache hits, loads):
        the closure is the dominant construction cost and a process that
        only serialises or compares the hierarchy never needs it.
        """
        if self._up is None:
            self._up = {
                node: frozenset(targets)
                for node, targets in graphutils.transitive_closure(
                    self._parents
                ).items()
            }
        return self._up

    @property
    def _down_closure(self) -> Dict[Term, FrozenSet[Term]]:
        if self._down is None:
            self._down = {
                node: frozenset(targets)
                for node, targets in graphutils.transitive_closure(
                    self._children
                ).items()
            }
        return self._down

    # -- basic container protocol -----------------------------------------

    def __contains__(self, term: Term) -> bool:
        return term in self._parents

    def __iter__(self) -> Iterator[Term]:
        return iter(self._parents)

    def __len__(self) -> int:
        return len(self._parents)

    @property
    def terms(self) -> AbstractSet[Term]:
        """The node set S of the partial order."""
        return self._parents.keys()

    def edges(self) -> Iterator[Tuple[Term, Term]]:
        """Hasse edges as ``(lower, upper)`` pairs."""
        for node, targets in self._parents.items():
            for target in targets:
                yield (node, target)

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._parents.values())

    # -- order queries ------------------------------------------------------

    def _require(self, term: Term) -> None:
        if term not in self._parents:
            raise UnknownTermError(f"term {term!r} is not in the hierarchy")

    def parents(self, term: Term) -> FrozenSet[Term]:
        """Upper covers of ``term`` (immediate Hasse successors)."""
        self._require(term)
        return self._parents[term]

    def children(self, term: Term) -> FrozenSet[Term]:
        """Lower covers of ``term``."""
        self._require(term)
        return self._children[term]

    def leq(self, lower: Term, upper: Term) -> bool:
        """The partial order: True iff ``lower <= upper``.

        Reflexive: ``leq(x, x)`` is True for any term in the hierarchy.
        """
        self._require(lower)
        self._require(upper)
        return lower == upper or upper in self._up_closure[lower]

    def lt(self, lower: Term, upper: Term) -> bool:
        """Strict order: ``lower <= upper`` and ``lower != upper``."""
        return lower != upper and self.leq(lower, upper)

    def ancestors(self, term: Term) -> FrozenSet[Term]:
        """All terms strictly above ``term``."""
        self._require(term)
        return self._up_closure[term]

    def descendants(self, term: Term) -> FrozenSet[Term]:
        """All terms strictly below ``term``."""
        self._require(term)
        return self._down_closure[term]

    def below(self, term: Term) -> FrozenSet[Term]:
        """``{t | t <= term}`` — the paper's below-set without dom(tau)."""
        return self.descendants(term) | {term}

    def above(self, term: Term) -> FrozenSet[Term]:
        """``{t | term <= t}`` including ``term`` itself."""
        return self.ancestors(term) | {term}

    def roots(self) -> FrozenSet[Term]:
        """Maximal terms (no strict ancestors)."""
        return frozenset(node for node in self._parents if not self._parents[node])

    def leaves(self) -> FrozenSet[Term]:
        """Minimal terms (no strict descendants)."""
        return frozenset(node for node in self._children if not self._children[node])

    def least_upper_bound(self, left: Term, right: Term) -> Optional[Term]:
        """The least common upper bound of two terms, or None.

        Used for the *least common supertype* of Section 5.1.1.  Returns
        None when no upper bound exists or no unique least one does.
        """
        common = self.above(left) & self.above(right)
        if not common:
            return None
        minimal = [
            candidate
            for candidate in common
            if not any(self.lt(other, candidate) for other in common)
        ]
        if len(minimal) == 1:
            return minimal[0]
        return None

    def comparable(self, left: Term, right: Term) -> bool:
        """True iff the two terms are ordered one way or the other."""
        return self.leq(left, right) or self.leq(right, left)

    # -- derivation ----------------------------------------------------------

    def restrict(self, keep: Iterable[Term]) -> "Hierarchy":
        """Sub-hierarchy induced on ``keep``, preserving reachability.

        If a dropped term lies between two kept terms, the kept terms stay
        ordered (the restriction is of the partial order, not the diagram).
        """
        kept = set(keep)
        missing = kept - set(self._parents)
        if missing:
            raise UnknownTermError(f"terms not in hierarchy: {sorted(map(repr, missing))}")
        edges = [
            (lower, upper)
            for lower in kept
            for upper in self._up_closure[lower]
            if upper in kept
        ]
        return Hierarchy(edges, nodes=kept)

    def with_edges(self, extra_edges: Iterable[Tuple[Term, Term]]) -> "Hierarchy":
        """A new hierarchy with additional ``u <= v`` pairs added."""
        return Hierarchy(list(self.edges()) + list(extra_edges), nodes=self.terms)

    def extended_with_lower_terms(
        self,
        new_edges: Iterable[Tuple[Term, Term]],
        new_nodes: Iterable[Term] = (),
    ) -> Optional["Hierarchy"]:
        """Incremental extension: add edges whose *lower* ends are new terms.

        The streaming-ingest fast path: when a mutation only introduces
        new terms *below* the existing order (new content values under
        their tags, fresh hypernym chains), the Hasse diagram and the
        reachability closures can be extended in time proportional to the
        delta instead of re-reducing the whole graph.  The result is
        value-identical to ``Hierarchy(list(self.edges()) + new_edges,
        nodes=self.terms | new_nodes)`` — the canonical from-scratch
        construction — because:

        * no new edge leaves an existing term, so no new path between
          existing terms can appear: existing cover edges and existing
          up-closures are untouched;
        * each new term's cover set is computed by minimalising its edge
          targets against the (seeded) closures, exactly what transitive
          reduction would do.

        Returns None when the precondition does not hold (some new edge's
        lower end already exists, or the new edges are cyclic among
        themselves); callers then fall back to the full constructor.
        ``new_nodes`` adds isolated terms (already-present ones are
        ignored, matching the constructor).
        """
        grouped: Dict[Term, List[Term]] = {}
        for lower, upper in new_edges:
            if lower == upper:
                continue
            if lower in self._parents:
                return None
            grouped.setdefault(lower, []).append(upper)
        isolated = [
            node
            for node in new_nodes
            if node not in self._parents and node not in grouped
        ]
        if not grouped and not isolated:
            return self
        # Topologically order the new terms over new-new edges so a term's
        # closure is computed after its new uppers'.
        order: List[Term] = []
        state: Dict[Term, int] = {}  # 1 = visiting, 2 = done

        def visit(term: Term) -> bool:
            mark = state.get(term)
            if mark == 2:
                return True
            if mark == 1:
                return False  # cycle among the new terms
            state[term] = 1
            for upper in grouped.get(term, ()):
                if upper in grouped and not visit(upper):
                    return False
            state[term] = 2
            order.append(term)
            return True

        for term in grouped:
            if not visit(term):
                return None

        up = self._up_closure
        new_up: Dict[Term, FrozenSet[Term]] = {}

        def closure_of(term: Term) -> FrozenSet[Term]:
            if term in new_up:
                return new_up[term]
            return up.get(term, frozenset())

        new_parents: Dict[Term, FrozenSet[Term]] = {}
        new_uppers: Set[Term] = set()
        for term in order:
            targets: List[Term] = []
            for upper in grouped[term]:
                if upper not in targets:
                    targets.append(upper)
            # Minimalise: drop any target reachable from another target —
            # exactly the edges transitive reduction would remove.
            covers = [
                target
                for target in targets
                if not any(
                    other != target and target in closure_of(other)
                    for other in targets
                )
            ]
            reach: Set[Term] = set()
            for upper in targets:
                reach.add(upper)
                reach.update(closure_of(upper))
            new_up[term] = frozenset(reach)
            new_parents[term] = frozenset(covers)
            for upper in targets:
                if upper not in self._parents and upper not in grouped:
                    new_uppers.add(upper)

        extended = Hierarchy.__new__(Hierarchy)
        parents = dict(self._parents)
        parents.update(new_parents)
        for term in isolated:
            parents[term] = frozenset()
        for upper in new_uppers:
            parents.setdefault(upper, frozenset())
        extended._parents = parents

        children = dict(self._children)
        for term in order:
            children.setdefault(term, frozenset())
            for upper in new_parents[term]:
                children[upper] = children.get(upper, frozenset()) | {term}
        for term in isolated:
            children.setdefault(term, frozenset())
        for upper in new_uppers:
            children.setdefault(upper, frozenset())
        extended._children = children

        # Seed the closures: existing up-closures are unchanged; existing
        # down-closures gain exactly the new terms below them.
        up_seeded = dict(up)
        up_seeded.update(new_up)
        for term in isolated:
            up_seeded[term] = frozenset()
        for upper in new_uppers:
            up_seeded.setdefault(upper, frozenset())
        extended._up = up_seeded
        if self._down is not None:
            below: Dict[Term, Set[Term]] = {}
            for term in order:
                for ancestor in new_up[term]:
                    below.setdefault(ancestor, set()).add(term)
            down_seeded = dict(self._down)
            for ancestor, gained in below.items():
                down_seeded[ancestor] = down_seeded.get(ancestor, frozenset()) | gained
            for term in order:
                down_seeded[term] = frozenset(below.get(term, ()))
            for term in isolated:
                down_seeded.setdefault(term, frozenset())
            extended._down = down_seeded
        else:
            extended._down = None
        extended._hash = None
        return extended

    def without_leaves(self, terms: Iterable[Term]) -> Optional["Hierarchy"]:
        """Incremental removal of *minimal* terms (terms with no children).

        The inverse fast path of :meth:`extended_with_lower_terms`: a
        minimal term sits below nothing, so deleting it cannot reconnect
        or reorder the remaining terms — its covers lose one child, the
        down-closures of its ancestors lose one entry, and everything
        else (including every other up-closure) is untouched.  The result
        is value-identical to rebuilding from the surviving edges.

        Returns None when a term is absent or has children (its removal
        would change reachability between survivors); callers fall back
        to full construction.
        """
        doomed = set(terms)
        if not doomed:
            return self
        for term in doomed:
            if term not in self._parents or self._children[term]:
                return None
        removed = Hierarchy.__new__(Hierarchy)
        parents = {
            node: targets
            for node, targets in self._parents.items()
            if node not in doomed
        }
        removed._parents = parents
        children = dict(self._children)
        for term in doomed:
            for upper in self._parents[term]:
                children[upper] = children[upper] - doomed
            del children[term]
        removed._children = children
        if self._up is not None:
            up = dict(self._up)
            for term in doomed:
                del up[term]
            removed._up = up
        else:
            removed._up = None
        if self._down is not None:
            down = dict(self._down)
            ancestors: Set[Term] = set()
            if self._up is not None:
                for term in doomed:
                    ancestors.update(self._up[term])
            else:
                # Walk covers upward; doomed terms are minimal, so this
                # touches only their (small) ancestor cones.
                stack = [
                    upper for term in doomed for upper in self._parents[term]
                ]
                while stack:
                    node = stack.pop()
                    if node not in ancestors:
                        ancestors.add(node)
                        stack.extend(self._parents[node])
            for term in doomed:
                del down[term]
            for ancestor in ancestors:
                if ancestor in down:
                    down[ancestor] = down[ancestor] - doomed
            removed._down = down
        else:
            removed._down = None
        removed._hash = None
        return removed

    def with_terms(self, extra_terms: Iterable[Term]) -> "Hierarchy":
        """A new hierarchy with additional isolated terms added."""
        return Hierarchy(self.edges(), nodes=set(self.terms) | set(extra_terms))

    def relabel(self, mapping: Mapping[Term, Term]) -> "Hierarchy":
        """Apply a node renaming; unmapped terms keep their identity.

        The mapping must be injective on the node set (a partial order
        cannot merge nodes without re-checking antisymmetry — use the
        fusion machinery for that).
        """
        def rename(term: Term) -> Term:
            return mapping.get(term, term)

        new_nodes = [rename(term) for term in self._parents]
        if len(set(new_nodes)) != len(new_nodes):
            raise OntologyError("relabel mapping must be injective on the node set")
        return Hierarchy(
            [(rename(u), rename(v)) for u, v in self.edges()], nodes=new_nodes
        )

    # -- value semantics ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hierarchy):
            return NotImplemented
        return self._parents == other._parents

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                frozenset((node, targets) for node, targets in self._parents.items())
            )
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Hierarchy({self.edge_count()} edges over {len(self)} terms)"
        )

    def pretty(self) -> str:
        """Multi-line indented rendering, roots first."""
        lines: List[str] = []

        def visit(term: Term, depth: int) -> None:
            lines.append("  " * depth + str(term))
            for child in sorted(self._children[term], key=str):
                visit(child, depth + 1)

        for root in sorted(self.roots(), key=str):
            visit(root, 0)
        return "\n".join(lines)

    def to_dot(self, name: str = "hierarchy", rankdir: str = "BT") -> str:
        """Graphviz DOT rendering (edges point lower -> upper).

        Handy for DBAs inspecting extracted, fused or similarity-enhanced
        ontologies: ``dot -Tsvg`` the output.  ``rankdir=BT`` draws broader
        concepts on top, the way the paper's Figures 9-11 are drawn.
        """
        def quote(term: Term) -> str:
            escaped = str(term).replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'

        lines = [f"digraph {name} {{", f"  rankdir={rankdir};"]
        for term in sorted(self._parents, key=str):
            lines.append(f"  {quote(term)};")
        for lower, upper in sorted(self.edges(), key=lambda e: (str(e[0]), str(e[1]))):
            lines.append(f"  {quote(lower)} -> {quote(upper)};")
        lines.append("}")
        return "\n".join(lines)


class Ontology:
    """Definition 3: a partial mapping from relation names to hierarchies.

    The paper fixes a set Sigma of distinguished strings — at least ``isa``
    and ``part-of`` — and an ontology assigns a hierarchy to each.  Missing
    names default to the empty hierarchy so ``isa`` and ``part-of`` are
    always defined, as the paper assumes.
    """

    ISA = "isa"
    PART_OF = "part-of"

    def __init__(self, hierarchies: Optional[Mapping[str, Hierarchy]] = None) -> None:
        self._hierarchies: Dict[str, Hierarchy] = dict(hierarchies or {})
        self._hierarchies.setdefault(self.ISA, Hierarchy())
        self._hierarchies.setdefault(self.PART_OF, Hierarchy())

    def __getitem__(self, relation: str) -> Hierarchy:
        try:
            return self._hierarchies[relation]
        except KeyError:
            raise KeyError(f"ontology has no {relation!r} hierarchy") from None

    def __contains__(self, relation: str) -> bool:
        return relation in self._hierarchies

    def __iter__(self) -> Iterator[str]:
        return iter(self._hierarchies)

    def __len__(self) -> int:
        return len(self._hierarchies)

    @property
    def isa(self) -> Hierarchy:
        """The distinguished isa hierarchy."""
        return self._hierarchies[self.ISA]

    @property
    def part_of(self) -> Hierarchy:
        """The distinguished part-of hierarchy."""
        return self._hierarchies[self.PART_OF]

    def relations(self) -> FrozenSet[str]:
        return frozenset(self._hierarchies)

    def with_hierarchy(self, relation: str, hierarchy: Hierarchy) -> "Ontology":
        """A new ontology with ``relation`` (re)bound to ``hierarchy``."""
        updated = dict(self._hierarchies)
        updated[relation] = hierarchy
        return Ontology(updated)

    def term_count(self) -> int:
        """Total number of terms across hierarchies (paper's ontology size)."""
        return sum(len(h) for h in self._hierarchies.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ontology):
            return NotImplemented
        return self._hierarchies == other._hierarchies

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}: {len(h)} terms" for name, h in sorted(self._hierarchies.items())
        )
        return f"Ontology({parts})"
