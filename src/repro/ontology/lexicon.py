"""A miniature lexical knowledge base — the WordNet substitute.

The paper's Ontology Maker "uses WordNet to automatically identify isa,
equivalent, and part-of relationships between terms in an SDB" (Section 3).
WordNet itself cannot be shipped here, so :class:`Lexicon` provides the
same three lookup surfaces — hypernyms (isa), holonyms (part-of) and
synonyms (equivalence) — over an embedded, DBA-extensible knowledge base
for the bibliographic domain, including every term the paper's motivating
examples rely on ("US Census Bureau" part-of "US government", "Google" isa
"web search company" isa "computer company" isa "company", ...).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple


class Lexicon:
    """Hypernym/holonym/synonym lookups over lower-cased terms."""

    def __init__(self) -> None:
        self._hypernyms: Dict[str, Set[str]] = {}
        self._holonyms: Dict[str, Set[str]] = {}
        self._synonyms: Dict[str, Set[str]] = {}

    # -- population -----------------------------------------------------------

    @staticmethod
    def _key(term: str) -> str:
        return term.strip().lower()

    def add_hypernym(self, term: str, hypernym: str) -> None:
        """Record ``term`` isa ``hypernym``."""
        self._hypernyms.setdefault(self._key(term), set()).add(self._key(hypernym))

    def add_holonym(self, part: str, whole: str) -> None:
        """Record ``part`` part-of ``whole``."""
        self._holonyms.setdefault(self._key(part), set()).add(self._key(whole))

    def add_synonyms(self, *terms: str) -> None:
        """Record that all ``terms`` are mutually equivalent."""
        keys = {self._key(term) for term in terms}
        for key in keys:
            self._synonyms.setdefault(key, set()).update(keys - {key})

    def add_isa_chain(self, *terms: str) -> None:
        """``add_isa_chain(a, b, c)`` records a isa b and b isa c."""
        for lower, upper in zip(terms, terms[1:]):
            self.add_hypernym(lower, upper)

    # -- lookups -----------------------------------------------------------------

    def hypernyms(self, term: str) -> FrozenSet[str]:
        """Direct hypernyms (isa parents) of a term."""
        return frozenset(self._hypernyms.get(self._key(term), frozenset()))

    def hypernym_closure(self, term: str) -> FrozenSet[str]:
        """All hypernyms, transitively."""
        seen: Set[str] = set()
        frontier = [self._key(term)]
        while frontier:
            current = frontier.pop()
            for parent in self._hypernyms.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return frozenset(seen)

    def holonyms(self, term: str) -> FrozenSet[str]:
        """Direct holonyms (part-of parents) of a term."""
        return frozenset(self._holonyms.get(self._key(term), frozenset()))

    def synonyms(self, term: str) -> FrozenSet[str]:
        """Terms recorded as equivalent to this one (excluding itself)."""
        return frozenset(self._synonyms.get(self._key(term), frozenset()))

    def knows(self, term: str) -> bool:
        key = self._key(term)
        return key in self._hypernyms or key in self._holonyms or key in self._synonyms

    def terms(self) -> FrozenSet[str]:
        known: Set[str] = set(self._hypernyms) | set(self._holonyms) | set(self._synonyms)
        for parents in self._hypernyms.values():
            known.update(parents)
        for wholes in self._holonyms.values():
            known.update(wholes)
        return frozenset(known)

    def __len__(self) -> int:
        return len(self.terms())

    def __repr__(self) -> str:
        return f"Lexicon({len(self)} terms)"

    # -- persistence (DBA-editable knowledge files) -----------------------------

    def to_dict(self) -> dict:
        """A JSON-compatible snapshot of the knowledge base."""
        synonym_groups = []
        seen: Set[FrozenSet[str]] = set()
        for term, others in self._synonyms.items():
            group = frozenset({term} | others)
            if group not in seen:
                seen.add(group)
                synonym_groups.append(sorted(group))
        return {
            "format": 1,
            "hypernyms": {
                term: sorted(parents)
                for term, parents in sorted(self._hypernyms.items())
            },
            "holonyms": {
                term: sorted(wholes)
                for term, wholes in sorted(self._holonyms.items())
            },
            "synonyms": sorted(synonym_groups),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Lexicon":
        """Rebuild a lexicon from :meth:`to_dict` output (or a hand-written
        knowledge file of the same shape)."""
        if payload.get("format") != 1:
            raise ValueError(f"unsupported lexicon format {payload.get('format')!r}")
        lexicon = cls()
        for term, parents in payload.get("hypernyms", {}).items():
            for parent in parents:
                lexicon.add_hypernym(term, parent)
        for term, wholes in payload.get("holonyms", {}).items():
            for whole in wholes:
                lexicon.add_holonym(term, whole)
        for group in payload.get("synonyms", []):
            lexicon.add_synonyms(*group)
        return lexicon

    def save(self, path: str) -> None:
        """Write the lexicon as an indented JSON knowledge file."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "Lexicon":
        """Read a JSON knowledge file written by :meth:`save` (or by hand)."""
        import json

        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def merged_with(self, other: "Lexicon") -> "Lexicon":
        """A new lexicon containing both knowledge bases' entries."""
        merged = Lexicon()
        for source in (self, other):
            for term, parents in source._hypernyms.items():
                for parent in parents:
                    merged.add_hypernym(term, parent)
            for term, wholes in source._holonyms.items():
                for whole in wholes:
                    merged.add_holonym(term, whole)
            for term, others in source._synonyms.items():
                merged.add_synonyms(term, *others)
        return merged


def bibliography_lexicon() -> Lexicon:
    """The embedded bibliographic-domain knowledge base.

    Covers the schema vocabulary of DBLP and the SIGMOD proceedings pages,
    the organisational examples from the paper's introduction, and generic
    publication-world concepts, so the Ontology Maker can build Figure
    9-style ontologies without external resources.
    """
    lexicon = Lexicon()

    # --- publication taxonomy -------------------------------------------------
    lexicon.add_isa_chain("publication", "document", "entity")
    for kind in ("article", "inproceedings", "incollection", "book",
                 "phdthesis", "mastersthesis", "techreport"):
        lexicon.add_hypernym(kind, "publication")
    lexicon.add_hypernym("paper", "publication")
    lexicon.add_synonyms("paper", "article")
    lexicon.add_hypernym("proceedings", "publication")
    lexicon.add_hypernym("journal", "publication")

    # --- people ---------------------------------------------------------------
    lexicon.add_isa_chain("person", "entity")
    for role in ("author", "editor", "researcher", "professor", "scientist"):
        lexicon.add_hypernym(role, "person")
    lexicon.add_hypernym("professor", "researcher")

    # --- venues and events -----------------------------------------------------
    lexicon.add_isa_chain("event", "entity")
    lexicon.add_hypernym("conference", "event")
    lexicon.add_hypernym("workshop", "event")
    lexicon.add_hypernym("symposium", "event")
    lexicon.add_synonyms("booktitle", "conference")
    lexicon.add_synonyms("confyear", "year")

    # --- organisations (the paper's introduction examples) -----------------------
    lexicon.add_isa_chain("organization", "entity")
    lexicon.add_hypernym("company", "organization")
    lexicon.add_isa_chain("computer company", "company")
    lexicon.add_isa_chain("web search company", "computer company")
    lexicon.add_hypernym("google", "web search company")
    lexicon.add_hypernym("microsoft", "computer company")
    lexicon.add_hypernym("ibm", "computer company")
    lexicon.add_hypernym("government", "organization")
    lexicon.add_hypernym("university", "organization")
    lexicon.add_hypernym("us government", "government")
    for agency in ("us census bureau", "us army", "us navy", "nasa", "nsf"):
        lexicon.add_holonym(agency, "us government")
        lexicon.add_hypernym(agency, "government agency")
    lexicon.add_hypernym("government agency", "organization")

    # --- bibliographic record parts ------------------------------------------------
    for part in ("title", "author", "year", "pages", "url", "volume",
                 "number", "month", "abstract"):
        lexicon.add_holonym(part, "publication")
    lexicon.add_holonym("booktitle", "publication")
    lexicon.add_holonym("conference", "proceedings")

    # --- time -----------------------------------------------------------------------
    lexicon.add_isa_chain("year", "time period", "abstraction")
    lexicon.add_hypernym("month", "time period")
    lexicon.add_hypernym("date", "time period")

    return lexicon
