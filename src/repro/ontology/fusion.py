"""Canonical fusion of hierarchies under interoperation constraints.

Definitions 5-6 and the paper's references [3, 2]: given hierarchies
``<H_i, <=_i>`` and constraints IC, build the *hierarchy graph* (the Hasse
edges of every input, plus one directed edge per ``<=`` constraint and two
per ``=`` constraint), then compute the *canonical* integration:

1. every strongly connected component of the hierarchy graph is a set of
   scoped terms that the constraints force to be equivalent — it becomes a
   single node of the fused hierarchy (a :class:`FusedNode`);
2. the condensation DAG, transitively reduced, is the fused Hasse diagram;
3. each witness mapping ``psi_i`` sends ``x`` in ``H_i`` to the fused node
   containing ``x:i``.

This construction satisfies both axioms of Definition 5 (order preservation
and constraint preservation) with a minimal node set, and reproduces the
paper's Figure 11 example (see tests).  ``!=`` constraints are checked
afterwards: if both sides land in the same fused node the constraint set is
unsatisfiable and :class:`~repro.errors.FusionInconsistencyError` is raised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .. import graphutils
from ..errors import ConstraintError, FusionInconsistencyError
from ..guard import ResourceGuard
from .constraints import (
    EqualityConstraint,
    InequalityConstraint,
    InteroperationConstraint,
    ScopedTerm,
    SubsumptionConstraint,
)
from .hierarchy import Hierarchy


@dataclass(frozen=True)
class FusedNode:
    """A node of the canonical fused hierarchy.

    Wraps the set of scoped terms merged into this node.  ``label`` is a
    human-readable canonical name (the lexicographically smallest term
    string), and ``strings`` is the set of distinct term strings the node
    contains — exactly the "set of strings contained in a node" that the
    similarity machinery of Section 4.3 operates on.
    """

    members: FrozenSet[ScopedTerm]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a fused node must contain at least one scoped term")

    @property
    def strings(self) -> FrozenSet[str]:
        """Distinct term strings of the merged scoped terms."""
        return frozenset(str(member.term) for member in self.members)

    @property
    def label(self) -> str:
        """Deterministic representative string for display and sorting."""
        return min(self.strings)

    def contains_term(self, term: Hashable) -> bool:
        """True iff some scoped member has exactly this (unscoped) term."""
        return any(member.term == term for member in self.members)

    def __str__(self) -> str:
        if len(self.strings) == 1:
            return self.label
        return "{" + ", ".join(sorted(self.strings)) + "}"

    def __repr__(self) -> str:
        return f"FusedNode({str(self)})"


class FusionResult:
    """The canonical fusion: fused hierarchy + witness mappings.

    ``hierarchy`` is a :class:`Hierarchy` whose terms are
    :class:`FusedNode` values; ``witness`` maps each scoped term ``x:i`` to
    its fused node (the paper's ``psi_i`` mappings, combined).
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        witness: Mapping[ScopedTerm, FusedNode],
    ) -> None:
        self.hierarchy = hierarchy
        self.witness: Dict[ScopedTerm, FusedNode] = dict(witness)
        self._by_term: Dict[Hashable, Set[FusedNode]] = {}
        for scoped, node in self.witness.items():
            self._by_term.setdefault(scoped.term, set()).add(node)

    def node_of(self, term: Hashable, source: Optional[Hashable] = None) -> FusedNode:
        """The fused node of a term.

        With ``source`` given, looks up the scoped term exactly.  Without,
        the term must resolve unambiguously across sources.
        """
        if source is not None:
            scoped = ScopedTerm(term, source)
            try:
                return self.witness[scoped]
            except KeyError:
                raise ConstraintError(f"no fused node for {scoped}") from None
        nodes = self._by_term.get(term, set())
        if not nodes:
            raise ConstraintError(f"term {term!r} does not occur in any input hierarchy")
        if len(nodes) > 1:
            raise ConstraintError(
                f"term {term!r} is ambiguous across sources; pass source= explicitly"
            )
        return next(iter(nodes))

    def nodes_of_term(self, term: Hashable) -> FrozenSet[FusedNode]:
        """All fused nodes containing the (unscoped) term."""
        return frozenset(self._by_term.get(term, frozenset()))

    def psi(self, source: Hashable) -> Dict[Hashable, FusedNode]:
        """The witness mapping ``psi_source`` restricted to one input."""
        return {
            scoped.term: node
            for scoped, node in self.witness.items()
            if scoped.source == source
        }

    def __repr__(self) -> str:
        return f"FusionResult({len(self.hierarchy)} fused nodes)"


def hierarchy_graph(
    hierarchies: Mapping[Hashable, Hierarchy],
    constraints: Iterable[InteroperationConstraint] = (),
) -> Dict[ScopedTerm, Set[ScopedTerm]]:
    """The hierarchy graph of Definition 6 as an adjacency mapping.

    Nodes are scoped terms ``x:i``; edges are the Hasse edges of each input
    hierarchy plus one edge per ``<=`` constraint (two per ``=``).  ``!=``
    constraints contribute no edges (they are checked post-fusion).
    """
    graph: Dict[ScopedTerm, Set[ScopedTerm]] = {}
    for source, hierarchy in hierarchies.items():
        for term in hierarchy.terms:
            graph.setdefault(ScopedTerm(term, source), set())
        for lower, upper in hierarchy.edges():
            graph[ScopedTerm(lower, source)].add(ScopedTerm(upper, source))
    for constraint in constraints:
        constraint.validate(hierarchies)
        if isinstance(constraint, EqualityConstraint):
            first, second = constraint.decompose()
            graph[first.left].add(first.right)
            graph[second.left].add(second.right)
        elif isinstance(constraint, SubsumptionConstraint):
            graph[constraint.left].add(constraint.right)
        elif isinstance(constraint, InequalityConstraint):
            continue
        else:  # pragma: no cover - defensive
            raise ConstraintError(f"unknown constraint type {type(constraint).__name__}")
    return graph


def canonical_fusion(
    hierarchies: Mapping[Hashable, Hierarchy],
    constraints: Iterable[InteroperationConstraint] = (),
    guard: Optional["ResourceGuard"] = None,
) -> FusionResult:
    """Compute the canonical fusion of the input hierarchies under IC.

    ``guard`` (a :class:`~repro.guard.ResourceGuard`) bounds the build:
    the graph construction and condensation tick it per node, so a fusion
    over pathological inputs raises instead of hanging.

    Raises
    ------
    FusionInconsistencyError
        If an ``x:i != y:j`` constraint's two sides end up merged.
    ConstraintError
        If a constraint references an unknown hierarchy or term.
    """
    constraint_list = list(constraints)
    graph = hierarchy_graph(hierarchies, constraint_list)
    if guard is not None:
        guard.tick(len(graph), what="canonical fusion")
        guard.check_deadline("canonical fusion")
    dag, membership = graphutils.condensation(graph)
    if guard is not None:
        guard.tick(len(membership), what="canonical fusion")
        guard.check_deadline("canonical fusion")

    fused_of_component: Dict[FrozenSet[ScopedTerm], FusedNode] = {
        component: FusedNode(component) for component in dag
    }
    fused_edges: List[Tuple[FusedNode, FusedNode]] = [
        (fused_of_component[source_c], fused_of_component[target_c])
        for source_c, targets in dag.items()
        for target_c in targets
    ]
    hierarchy = Hierarchy(fused_edges, nodes=fused_of_component.values())
    witness = {
        scoped: fused_of_component[component]
        for scoped, component in membership.items()
    }

    for constraint in constraint_list:
        if isinstance(constraint, InequalityConstraint):
            if witness[constraint.left] is witness[constraint.right] or (
                witness[constraint.left] == witness[constraint.right]
            ):
                raise FusionInconsistencyError(
                    f"constraint {constraint!r} is violated: both terms were fused "
                    f"into {witness[constraint.left]}"
                )
    return FusionResult(hierarchy, witness)


def extend_fusion(
    prev: FusionResult,
    added_edges: Mapping[Hashable, Iterable[Tuple[Hashable, Hashable]]],
    added_nodes: Optional[Mapping[Hashable, Iterable[Hashable]]] = None,
) -> Optional[FusionResult]:
    """Extend a fusion with per-source *leaf* deltas, without refusing.

    ``added_edges[source]`` lists ``(lower, upper)`` Hasse pairs whose
    lower term is new to that source; ``added_nodes[source]`` lists new
    isolated terms.  Under an unchanged constraint set (the caller's
    responsibility to check) such a delta cannot create or grow any
    strongly connected component of the hierarchy graph: a new term has
    no incoming edges, so no cycle can pass through it.  Each new scoped
    term therefore condenses to a singleton :class:`FusedNode`, the old
    components are untouched, and the fused Hasse diagram extends via
    :meth:`Hierarchy.extended_with_lower_terms` — producing exactly the
    result ``canonical_fusion`` would on the grown inputs, in time
    proportional to the delta.

    Returns None when the delta is not leaf-only for some source (a
    "new" lower term is already witnessed there, or the new edges are
    cyclic among themselves); callers fall back to the full fusion.
    """
    singleton: Dict[ScopedTerm, FusedNode] = {}

    def node_for(scoped: ScopedTerm) -> FusedNode:
        node = singleton.get(scoped)
        if node is None:
            node = FusedNode(frozenset({scoped}))
            singleton[scoped] = node
        return node

    fused_edges: List[Tuple[FusedNode, FusedNode]] = []
    for source, edges in added_edges.items():
        pairs = [(lower, upper) for lower, upper in edges]
        for lower, _ in pairs:
            if ScopedTerm(lower, source) in prev.witness:
                return None
        for lower, upper in pairs:
            scoped_upper = ScopedTerm(upper, source)
            existing = prev.witness.get(scoped_upper)
            # An unwitnessed upper is itself new to this source (e.g. the
            # top of a fresh hypernym chain) and condenses to a singleton,
            # just like the new lowers.
            upper_node = existing if existing is not None else node_for(scoped_upper)
            fused_edges.append((node_for(ScopedTerm(lower, source)), upper_node))
    isolated_nodes: List[FusedNode] = []
    for source, terms in (added_nodes or {}).items():
        for term in terms:
            scoped = ScopedTerm(term, source)
            if scoped in prev.witness:
                return None
            isolated_nodes.append(node_for(scoped))

    if not singleton:
        return prev
    hierarchy = prev.hierarchy.extended_with_lower_terms(
        fused_edges, new_nodes=isolated_nodes
    )
    if hierarchy is None:
        return None
    witness = dict(prev.witness)
    for scoped, node in singleton.items():
        witness[scoped] = node
    return FusionResult(hierarchy, witness)


def fuse_single(hierarchy: Hierarchy, source: Hashable = 1) -> FusionResult:
    """Wrap one hierarchy as a (trivial) fusion of itself.

    Convenient when a database has a single instance: the TOSS algebra is
    defined over a fusion, so single-instance setups go through here.
    """
    return canonical_fusion({source: hierarchy})
