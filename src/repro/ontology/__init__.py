"""Ontologies: hierarchies, interoperation constraints, and canonical fusion.

Section 4 of the paper: an ontology w.r.t. a set of relation names (isa,
part-of, ...) maps each name to a *hierarchy* — the Hasse diagram of a
partial order over terms.  Ontologies of the instances in a semistructured
database are merged into a single *canonical fusion* under DBA-specified
interoperation constraints, following the paper's references [3, 2].

The :class:`~repro.ontology.maker.OntologyMaker` automates ontology
construction from XML instances using structural extraction plus an
embedded lexical knowledge base (the WordNet substitute; see DESIGN.md).
"""

from .constraints import (
    EqualityConstraint,
    InequalityConstraint,
    InteroperationConstraint,
    ScopedTerm,
    SubsumptionConstraint,
    parse_constraint,
)
from .fusion import FusedNode, FusionResult, canonical_fusion, hierarchy_graph
from .hierarchy import Hierarchy, Ontology
from .lexicon import Lexicon, bibliography_lexicon
from .maker import OntologyMaker

__all__ = [
    "EqualityConstraint",
    "FusedNode",
    "FusionResult",
    "Hierarchy",
    "InequalityConstraint",
    "InteroperationConstraint",
    "Lexicon",
    "Ontology",
    "OntologyMaker",
    "ScopedTerm",
    "SubsumptionConstraint",
    "bibliography_lexicon",
    "canonical_fusion",
    "hierarchy_graph",
    "parse_constraint",
]
