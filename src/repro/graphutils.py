"""Graph algorithms used across the ontology and similarity subsystems.

Everything here operates on a plain adjacency-mapping representation::

    graph: Mapping[node, Iterable[node]]

where nodes are any hashable values.  The helpers are written from scratch
(rather than delegating to networkx) because the fusion and SEA algorithms
need precise, documented behaviour — e.g. Tarjan's SCC order and a
transitive reduction that is only valid on DAGs — and because the
algorithms themselves are part of what the paper's references [3, 2]
contribute.  The test suite cross-checks several of them against networkx.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .errors import HierarchyCycleError

Node = Hashable
Graph = Mapping[Node, Iterable[Node]]


def _successors(graph: Graph, node: Node) -> Iterable[Node]:
    """Successors of ``node``, treating absent keys as leaf nodes."""
    return graph.get(node, ())  # type: ignore[union-attr]


def all_nodes(graph: Graph) -> Set[Node]:
    """Every node mentioned in ``graph`` as a source or a target."""
    nodes: Set[Node] = set(graph)
    for targets in graph.values():
        nodes.update(targets)
    return nodes


def successors_map(graph: Graph) -> Dict[Node, Set[Node]]:
    """Normalise a graph into ``{node: set(successors)}`` over all nodes."""
    result: Dict[Node, Set[Node]] = {node: set() for node in all_nodes(graph)}
    for node, targets in graph.items():
        result[node].update(targets)
    return result


def reverse_graph(graph: Graph) -> Dict[Node, Set[Node]]:
    """The graph with every edge reversed."""
    result: Dict[Node, Set[Node]] = {node: set() for node in all_nodes(graph)}
    for node, targets in graph.items():
        for target in targets:
            result[target].add(node)
    return result


def reachable_from(graph: Graph, start: Node) -> Set[Node]:
    """All nodes reachable from ``start`` (including ``start`` itself)."""
    seen: Set[Node] = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for nxt in _successors(graph, node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def has_path(graph: Graph, source: Node, target: Node) -> bool:
    """True iff a directed path of length >= 0 exists from source to target."""
    if source == target:
        return True
    seen: Set[Node] = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in _successors(graph, node):
            if nxt == target:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def transitive_closure(graph: Graph) -> Dict[Node, Set[Node]]:
    """Reflexive-free transitive closure: ``closure[u]`` = nodes v != u ...

    ... such that a non-empty path u -> v exists.  Self-loops in the input
    are preserved (u appears in its own closure only if it lies on a cycle).
    """
    nodes = all_nodes(graph)
    closure: Dict[Node, Set[Node]] = {}
    # Memoised DFS in reverse topological order would be fastest, but the
    # graphs here are small (ontology hierarchies); BFS per node is clear
    # and O(V * E).
    for node in nodes:
        seen: Set[Node] = set()
        frontier = deque(_successors(graph, node))
        while frontier:
            nxt = frontier.popleft()
            if nxt in seen:
                continue
            seen.add(nxt)
            frontier.extend(_successors(graph, nxt))
        closure[node] = seen
    return closure


def find_cycle(graph: Graph) -> Optional[List[Node]]:
    """Return one directed cycle as ``[n0, n1, ..., n0]`` or None if acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Node, int] = {node: WHITE for node in all_nodes(graph)}
    parent: Dict[Node, Node] = {}

    for root in colour:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(_successors(graph, root)))]
        colour[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if colour.get(child, WHITE) == GREY:
                    # Found a back edge: reconstruct the cycle.
                    cycle = [child, node]
                    walk = node
                    while walk != child:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()  # child ... node child -> chronological
                    # Normalise to start and end at the same node.
                    start = cycle[0]
                    return cycle + [start] if cycle[-1] != start else cycle
                if colour.get(child, WHITE) == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(_successors(graph, child))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def is_acyclic(graph: Graph) -> bool:
    """True iff the directed graph contains no cycle."""
    return find_cycle(graph) is None


def ensure_acyclic(graph: Graph) -> None:
    """Raise :class:`HierarchyCycleError` if the graph has a cycle."""
    cycle = find_cycle(graph)
    if cycle is not None:
        raise HierarchyCycleError(cycle)


def topological_order(graph: Graph) -> List[Node]:
    """Kahn topological sort; raises :class:`HierarchyCycleError` on cycles.

    Output order is deterministic given the iteration order of the input
    mapping (ties broken by insertion order of a FIFO queue).
    """
    succ = successors_map(graph)
    indegree: Dict[Node, int] = {node: 0 for node in succ}
    for targets in succ.values():
        for target in targets:
            indegree[target] += 1
    queue = deque(node for node in succ if indegree[node] == 0)
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for target in succ[node]:
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(target)
    if len(order) != len(succ):
        ensure_acyclic(graph)  # raises with an explicit cycle
        raise AssertionError("unreachable: kahn failed on an acyclic graph")
    return order


def strongly_connected_components(graph: Graph) -> List[List[Node]]:
    """Tarjan's algorithm, iterative.

    Returns SCCs in reverse topological order of the condensation (i.e.
    every component precedes the components that can reach it).
    """
    succ = successors_map(graph)
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in succ:
        if root in index_of:
            continue
        work: List[Tuple[Node, Iterator[Node]]] = [(root, iter(succ[root]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(succ[child])))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(
    graph: Graph,
) -> Tuple[Dict[FrozenSet[Node], Set[FrozenSet[Node]]], Dict[Node, FrozenSet[Node]]]:
    """Condense a digraph into its DAG of strongly connected components.

    Returns ``(dag, membership)`` where ``dag`` maps each component (a
    frozenset of original nodes) to its successor components, and
    ``membership`` maps each original node to its component.
    """
    components = [frozenset(c) for c in strongly_connected_components(graph)]
    membership: Dict[Node, FrozenSet[Node]] = {}
    for component in components:
        for node in component:
            membership[node] = component
    dag: Dict[FrozenSet[Node], Set[FrozenSet[Node]]] = {c: set() for c in components}
    for node, targets in graph.items():
        for target in targets:
            source_c = membership[node]
            target_c = membership[target]
            if source_c is not target_c:
                dag[source_c].add(target_c)
    return dag, membership


def transitive_reduction(graph: Graph) -> Dict[Node, Set[Node]]:
    """Minimal edge set with the same reachability; input must be a DAG.

    This is exactly the "Hasse diagram" computation of Section 4.1: the
    Hasse diagram of a partial order has a *minimal* set of edges such that
    u -> v is a path iff u <= v.
    """
    ensure_acyclic(graph)
    succ = successors_map(graph)
    order = topological_order(succ)
    position = {node: i for i, node in enumerate(order)}
    # descendants[u] = nodes reachable from u by a non-empty path.
    descendants: Dict[Node, Set[Node]] = {}
    for node in reversed(order):
        reach: Set[Node] = set()
        for child in succ[node]:
            reach.add(child)
            reach.update(descendants[child])
        descendants[node] = reach
    reduced: Dict[Node, Set[Node]] = {node: set() for node in succ}
    for node in succ:
        # An edge u->v is redundant iff v is reachable from another child.
        children = sorted(succ[node], key=position.__getitem__)
        kept: Set[Node] = set()
        covered: Set[Node] = set()
        for child in children:
            if child in covered:
                continue
            kept.add(child)
            covered.add(child)
            covered.update(descendants[child])
        reduced[node] = kept
    return reduced


def undirected_adjacency(edges: Iterable[Tuple[Node, Node]]) -> Dict[Node, Set[Node]]:
    """Build a symmetric adjacency map from an iterable of edges."""
    adjacency: Dict[Node, Set[Node]] = {}
    for left, right in edges:
        adjacency.setdefault(left, set())
        adjacency.setdefault(right, set())
        if left != right:
            adjacency[left].add(right)
            adjacency[right].add(left)
    return adjacency


def maximal_cliques(adjacency: Mapping[Node, Set[Node]]) -> List[FrozenSet[Node]]:
    """Bron-Kerbosch with pivoting over an undirected adjacency map.

    Every node appears in at least one clique (isolated nodes form singleton
    cliques).  Used by the SEA algorithm: the nodes of a similarity
    enhancement are precisely the maximal cliques of the epsilon-similarity
    graph (see DESIGN.md section 5).
    """
    if not adjacency:
        return []
    cliques: List[FrozenSet[Node]] = []

    def expand(candidate: Set[Node], prospective: Set[Node], excluded: Set[Node]) -> None:
        if not prospective and not excluded:
            cliques.append(frozenset(candidate))
            return
        pivot_pool = prospective | excluded
        pivot = max(pivot_pool, key=lambda n: len(adjacency[n] & prospective))
        for node in list(prospective - adjacency[pivot]):
            neighbours = adjacency[node]
            expand(candidate | {node}, prospective & neighbours, excluded & neighbours)
            prospective.discard(node)
            excluded.add(node)

    expand(set(), set(adjacency), set())
    return cliques


def connected_components_undirected(
    adjacency: Mapping[Node, Set[Node]]
) -> List[Set[Node]]:
    """Connected components of an undirected adjacency map."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in adjacency:
        if start in seen:
            continue
        component: Set[Node] = set()
        frontier = deque([start])
        seen.add(start)
        while frontier:
            node = frontier.popleft()
            component.add(node)
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        components.append(component)
    return components
