"""Process-level parallelism for the SEO build.

The epsilon-similarity graph decomposes into independent *blocks* of
probe positions (see :func:`repro.similarity.candidates.block_edges`):
each block reports exactly the similar pairs whose later element falls
inside it, so the union over any partition of the probe range is the
full edge set regardless of which process computed which block.  This
module partitions the blocks of every order-context bucket across a
``multiprocessing`` pool, merges the results deterministically, and
falls back to serial execution when a pool cannot pay for itself.

Guard semantics are *cooperative*: the parent's
:class:`~repro.guard.ResourceGuard` cannot be shared across process
boundaries, so each worker runs under its own guard carrying the
parent's **remaining** wall-clock deadline and step budget.  A worker
that exceeds either returns a typed failure marker; the parent re-raises
the matching :class:`~repro.errors.QueryTimeoutError` /
:class:`~repro.errors.ResourceExhaustedError` (first failing worker
wins, deterministically).  After a successful merge the parent ticks its
own guard with the total steps the workers consumed, so the build's
overall accounting — and any budget exhaustion it implies — is preserved
exactly as if the work had run serially.

Workers re-instantiate the similarity measure from its registry name, so
only registry measures parallelise; custom unnamed measures (and weak
measures, whose node distance needs the full string sets) stay on the
serial path in :mod:`repro.similarity.sea`.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .errors import QueryTimeoutError, ResourceExhaustedError
from .guard import ResourceGuard
from .obs.metrics import REGISTRY as METRICS
from .obs.trace import current_tracer
from .similarity import candidates as _candidates
from .similarity.candidates import BlockStats

#: Minimum number of pairwise comparisons before a worker pool pays for
#: its fork/spawn + pickling overhead.
DEFAULT_PARALLEL_THRESHOLD = 50_000

#: Target number of blocks per worker; more blocks smooth out the skew
#: between cheap early probes and expensive late ones.
_BLOCKS_PER_WORKER = 4


@dataclass(frozen=True)
class BuildOptions:
    """Tuning knobs for the SEO construction pipeline.

    Attributes
    ----------
    workers:
        Process count for the similarity-graph phase; 1 disables the pool.
    candidate_filter:
        Enable the inverted q-gram candidate index (only ever applied to
        measures where it is sound; see
        :func:`repro.similarity.candidates.supports_filter`).
    parallel_threshold:
        Minimum total pairwise comparisons before the pool engages;
        below it even ``workers > 1`` builds run serially.
    """

    workers: int = 1
    candidate_filter: bool = True
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.parallel_threshold < 0:
            raise ValueError(
                f"parallel_threshold must be >= 0, got {self.parallel_threshold}"
            )

    def with_overrides(
        self,
        workers: Optional[int] = None,
        candidate_filter: Optional[bool] = None,
        parallel_threshold: Optional[int] = None,
    ) -> "BuildOptions":
        """A copy with any non-None override applied."""
        updated = self
        if workers is not None:
            updated = replace(updated, workers=workers)
        if candidate_filter is not None:
            updated = replace(updated, candidate_filter=candidate_filter)
        if parallel_threshold is not None:
            updated = replace(updated, parallel_threshold=parallel_threshold)
        return updated


#: The default, serial configuration.
SERIAL_OPTIONS = BuildOptions()


def should_parallelize(
    options: BuildOptions, measure_name: str, total_pairs: int
) -> bool:
    """Whether the pool is worth engaging for this build."""
    return (
        options.workers > 1
        and bool(measure_name)
        and total_pairs >= options.parallel_threshold
    )


def partition_blocks(
    group_sizes: Mapping[int, int], workers: int
) -> List[List[Tuple[int, int, int, int]]]:
    """Split every group's probe range into per-worker block lists.

    Returns one list per worker of ``(block_id, group_id, lo, hi)``
    tuples.  Probe position ``p`` verifies against up to ``p`` earlier
    strings, so blocks are balanced on the triangular weight ``sum(p)``
    rather than on width, and assigned round-robin in block order —
    a deterministic schedule independent of runtime timings.
    """
    blocks: List[Tuple[int, int, int]] = []  # (group_id, lo, hi)
    for group_id in sorted(group_sizes):
        size = group_sizes[group_id]
        if size < 2:
            continue
        total_weight = size * (size - 1) // 2
        target = max(1, total_weight // (workers * _BLOCKS_PER_WORKER))
        lo = 0
        weight = 0
        for p in range(size):
            weight += p
            if weight >= target or p == size - 1:
                blocks.append((group_id, lo, p + 1))
                lo = p + 1
                weight = 0
        if lo < size:
            blocks.append((group_id, lo, size))
    assignments: List[List[Tuple[int, int, int, int]]] = [[] for _ in range(workers)]
    for block_id, (group_id, lo, hi) in enumerate(blocks):
        assignments[block_id % workers].append((block_id, group_id, lo, hi))
    return assignments


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the interpreter); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def remaining_budget(
    guard: Optional[ResourceGuard],
) -> Tuple[Optional[float], Optional[int]]:
    """(remaining deadline seconds, remaining step budget) of a guard.

    The cooperative cross-process guard protocol: a parent guard cannot
    be shared with workers, so each worker gets a fresh guard carrying
    the parent's *remaining* wall-clock and step budget at dispatch
    time.  Returns ``(None, None)`` components for disabled limits.
    """
    deadline: Optional[float] = None
    steps: Optional[int] = None
    if guard is not None:
        if guard.deadline_seconds is not None:
            deadline = max(0.0, guard.deadline_seconds - guard.elapsed)
        if guard.max_steps is not None:
            steps = max(0, guard.max_steps - guard.steps)
    return deadline, steps


def absorb_worker_steps(
    guard: Optional[ResourceGuard],
    stage_totals: Mapping[str, int],
    total_steps: int,
    what: str,
) -> None:
    """Tick a parent guard with the steps its workers consumed.

    Preserves the serial accounting: a budget the pool collectively
    exceeded still raises, and downstream phases see the true count.
    The workers' per-stage attribution survives the merge — each stage
    label is ticked with its own total (the labels sum to
    ``total_steps`` by the guard's invariant), falling back to ``what``
    for any steps a stage dict did not account for.
    """
    if guard is None or not total_steps:
        return
    accounted = 0
    for stage in sorted(stage_totals):
        steps = stage_totals[stage]
        if steps:
            guard.tick(steps, what=stage)
            accounted += steps
    if accounted < total_steps:
        guard.tick(total_steps - accounted, what=what)


def _compute_edge_blocks(payload: dict) -> dict:
    """Worker entry point: compute the edges of the assigned blocks.

    Runs in a separate process.  Returns either ``{"blocks": [...],
    "steps": n, "stage_steps": {...}, "seconds": t}`` or a failure marker
    ``{"failure": (kind, detail)}`` when the per-worker guard trips —
    exceptions never cross the process boundary raw, so the parent
    controls their reconstruction.  ``seconds`` and ``stage_steps`` are
    plain data precisely because live spans cannot cross processes: the
    parent re-attaches them to its own trace
    (:meth:`repro.obs.trace.Tracer.record_span`).
    """
    from .similarity.measures import get_measure

    measure = get_measure(payload["measure"])
    epsilon = payload["epsilon"]
    use_filter = payload["use_filter"]
    deadline = payload["deadline"]
    step_budget = payload["step_budget"]
    guard: Optional[ResourceGuard] = None
    if deadline is not None or step_budget is not None:
        guard = ResourceGuard(deadline_seconds=deadline, max_steps=step_budget)
    orders: Dict[int, List[int]] = {}
    results: List[Tuple[int, int, List[Tuple[int, int]], BlockStats]] = []
    started = time.perf_counter()
    try:
        for block_id, group_id, lo, hi in payload["blocks"]:
            reps = payload["groups"][group_id]
            order = orders.get(group_id)
            if order is None:
                order = _candidates.length_sorted_order(reps)
                orders[group_id] = order
            edges, stats = _candidates.block_edges(
                reps,
                order,
                measure,
                epsilon,
                lo,
                hi,
                guard=guard,
                use_filter=use_filter,
            )
            results.append((block_id, group_id, edges, stats))
    except QueryTimeoutError as exc:
        return {"failure": ("timeout", exc.deadline, exc.elapsed)}
    except ResourceExhaustedError as exc:
        return {"failure": ("steps", str(exc))}
    return {
        "blocks": results,
        "steps": guard.steps if guard is not None else 0,
        "stage_steps": guard.stage_steps if guard is not None else {},
        "seconds": time.perf_counter() - started,
    }


@dataclass
class ParallelRunStats:
    """Outcome counters of one parallel edge computation."""

    workers: int = 1
    blocks: int = 0
    block_stats: BlockStats = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.block_stats is None:
            self.block_stats = BlockStats()


def parallel_group_edges(
    groups: Mapping[int, Sequence[str]],
    measure_name: str,
    epsilon: float,
    options: BuildOptions,
    guard: Optional[ResourceGuard] = None,
    use_filter: bool = True,
    what: str = "SEA similarity graph",
) -> Tuple[Dict[int, List[Tuple[int, int]]], ParallelRunStats]:
    """Compute every group's similar pairs on a worker pool.

    ``groups`` maps a group id to the representative strings of one
    order-context bucket; the result maps each group id to its edge list
    as ``(i, j)`` index pairs (``i < j``) into that group's sequence.
    The merge is deterministic: blocks are reassembled in block-id order,
    so the output is byte-for-byte the serial result.
    """
    if guard is not None:
        guard.check_deadline(what)
    workers = options.workers
    group_lists = {gid: list(reps) for gid, reps in groups.items()}
    assignments = partition_blocks(
        {gid: len(reps) for gid, reps in group_lists.items()}, workers
    )
    deadline_remaining, step_budget = remaining_budget(guard)
    payloads = []
    for worker_blocks in assignments:
        if not worker_blocks:
            continue
        needed = {block[1] for block in worker_blocks}
        payloads.append(
            {
                "measure": measure_name,
                "epsilon": epsilon,
                "use_filter": use_filter,
                "deadline": deadline_remaining,
                "step_budget": step_budget,
                "groups": {gid: group_lists[gid] for gid in needed},
                "blocks": worker_blocks,
            }
        )

    run_stats = ParallelRunStats(workers=len(payloads))
    edges_by_group: Dict[int, List[Tuple[int, int]]] = {
        gid: [] for gid in group_lists
    }
    if not payloads:
        return edges_by_group, run_stats

    tracer = current_tracer()
    METRICS.counter("parallel.runs").inc()
    METRICS.gauge("parallel.workers").set(len(payloads))
    with tracer.span("parallel.map", workers=len(payloads)):
        context = _pool_context()
        with context.Pool(processes=len(payloads)) as pool:
            outcomes = pool.map(_compute_edge_blocks, payloads)

        for outcome in outcomes:
            failure = outcome.get("failure")
            if failure is None:
                continue
            if failure[0] == "timeout":
                raise QueryTimeoutError(what, failure[1], failure[2])
            raise ResourceExhaustedError(failure[1])

        # Worker spans are re-attached in payload order (block ids are
        # assigned round-robin in block order), so the merged trace is
        # deterministic regardless of pool scheduling.
        for worker_id, outcome in enumerate(outcomes):
            tracer.record_span(
                f"parallel.worker[{worker_id}]",
                float(outcome.get("seconds", 0.0)),
                attributes={
                    "blocks": len(outcome["blocks"]),
                    "guard_steps": outcome["steps"],
                },
            )

    merged: List[Tuple[int, int, List[Tuple[int, int]], BlockStats]] = []
    total_steps = 0
    stage_totals: Dict[str, int] = {}
    for outcome in outcomes:
        merged.extend(outcome["blocks"])
        total_steps += outcome["steps"]
        for stage, steps in outcome.get("stage_steps", {}).items():
            stage_totals[stage] = stage_totals.get(stage, 0) + steps
    merged.sort(key=lambda item: item[0])
    for _, group_id, edges, stats in merged:
        edges_by_group[group_id].extend(edges)
        run_stats.block_stats.merge(stats)
    run_stats.blocks = len(merged)
    METRICS.counter("parallel.blocks").inc(run_stats.blocks)

    absorb_worker_steps(guard, stage_totals, total_steps, what)
    return edges_by_group, run_stats
