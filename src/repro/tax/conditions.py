"""Selection conditions over pattern-tree nodes.

The TAX condition language: simple conditions ``X op Y`` over terms (a
pattern node's tag or content, or a constant), closed under conjunction,
disjunction and negation.  The TOSS extension (Section 5.1.1) adds the
semantic operators — ``~`` (similarTo), ``instance_of``, ``subtype_of``,
``below``, ``above``, ``part_of`` — whose truth depends on a similarity
enhanced ontology; those atom classes live in :mod:`repro.core.conditions`
but evaluate through the same :class:`ConditionContext` hook object defined
here, so plain TAX evaluation simply runs with the base context (which
rejects semantic operators, exactly TAX's behaviour).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Union

from ..errors import ConditionError
from ..xmldb.model import XmlNode

#: An embedding restricted to what conditions need: label -> data node.
Binding = Mapping[int, XmlNode]


class ConditionContext:
    """Evaluation hooks for condition atoms.

    The base context implements syntactic comparison only; semantic
    operators raise :class:`ConditionError`, which is precisely TAX: "TAX
    does not use any notion of similarity between search terms".  The TOSS
    context (:class:`repro.core.conditions.SeoConditionContext`) overrides
    the hooks with ontology- and similarity-aware behaviour.
    """

    def compare(self, op: str, left: str, right: str) -> bool:
        """``=, !=, <, <=, >, >=`` with numeric coercion when possible."""
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        try:
            left_value: Union[float, str] = float(left)
            right_value: Union[float, str] = float(right)
        except ValueError:
            left_value, right_value = left, right
        if op == "<":
            return left_value < right_value
        if op == "<=":
            return left_value <= right_value
        if op == ">":
            return left_value > right_value
        if op == ">=":
            return left_value >= right_value
        raise ConditionError(f"unknown comparison operator {op!r}")

    # -- semantic hooks (TOSS overrides these) --------------------------------

    def similar(self, left: str, right: str) -> bool:
        raise ConditionError(
            "the ~ (similarTo) operator needs an ontology context; "
            "plain TAX supports exact comparison only"
        )

    def instance_of(self, left: str, right: str) -> bool:
        raise ConditionError("instance_of needs an ontology context")

    def subtype_of(self, left: str, right: str) -> bool:
        raise ConditionError("subtype_of needs an ontology context")

    def below(self, left: str, right: str) -> bool:
        raise ConditionError("below needs an ontology context")

    def above(self, left: str, right: str) -> bool:
        raise ConditionError("above needs an ontology context")

    def part_of(self, left: str, right: str) -> bool:
        raise ConditionError("part_of needs an ontology context")


#: Module-level default so callers can omit the context for plain TAX.
DEFAULT_CONTEXT = ConditionContext()


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term(abc.ABC):
    """A term of a simple condition: node attribute or constant."""

    __slots__ = ()

    @abc.abstractmethod
    def resolve(self, binding: Binding) -> str:
        """The term's string value under an embedding."""

    def labels(self) -> Set[int]:
        """Pattern labels this term references (empty for constants)."""
        return set()


class NodeTag(Term):
    """``#label.tag`` — the tag of the data node bound to ``label``."""

    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def resolve(self, binding: Binding) -> str:
        try:
            return binding[self.label].tag
        except KeyError:
            raise ConditionError(f"no binding for pattern node {self.label}") from None

    def labels(self) -> Set[int]:
        return {self.label}

    def __repr__(self) -> str:
        return f"#{self.label}.tag"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NodeTag) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("tag", self.label))


class NodeContent(Term):
    """``#label.content`` — the content of the bound data node."""

    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def resolve(self, binding: Binding) -> str:
        try:
            return binding[self.label].content
        except KeyError:
            raise ConditionError(f"no binding for pattern node {self.label}") from None

    def labels(self) -> Set[int]:
        return {self.label}

    def __repr__(self) -> str:
        return f"#{self.label}.content"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NodeContent) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("content", self.label))


class Constant(Term):
    """A literal string (optionally carrying a type name, used by TOSS)."""

    __slots__ = ("value", "type_name")

    def __init__(self, value: str, type_name: Optional[str] = None) -> None:
        self.value = value
        self.type_name = type_name

    def resolve(self, binding: Binding) -> str:
        return self.value

    def __repr__(self) -> str:
        if self.type_name:
            return f"{self.value!r}:{self.type_name}"
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.value == self.value
            and other.type_name == self.type_name
        )

    def __hash__(self) -> int:
        return hash(("const", self.value, self.type_name))


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Condition(abc.ABC):
    """A selection condition; evaluated against a binding and a context."""

    __slots__ = ()

    @abc.abstractmethod
    def evaluate(self, binding: Binding, context: ConditionContext = DEFAULT_CONTEXT) -> bool:
        """Truth of the condition under the embedding ``binding``."""

    @abc.abstractmethod
    def labels(self) -> Set[int]:
        """All pattern labels referenced anywhere in the condition."""

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


class TrueCondition(Condition):
    """The vacuous condition (used by default on pattern trees)."""

    __slots__ = ()

    def evaluate(self, binding: Binding, context: ConditionContext = DEFAULT_CONTEXT) -> bool:
        return True

    def labels(self) -> Set[int]:
        return set()

    def __repr__(self) -> str:
        return "TRUE"


class Comparison(Condition):
    """A simple condition ``X op Y`` with a syntactic operator."""

    OPS = ("=", "!=", "<", "<=", ">", ">=")

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Term, right: Term) -> None:
        if op not in self.OPS:
            raise ConditionError(f"unsupported operator {op!r}; use one of {self.OPS}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, binding: Binding, context: ConditionContext = DEFAULT_CONTEXT) -> bool:
        return context.compare(self.op, self.left.resolve(binding), self.right.resolve(binding))

    def labels(self) -> Set[int]:
        return self.left.labels() | self.right.labels()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Contains(Condition):
    """Substring containment — the TAX fallback for semantic operators.

    The experiments in Section 6 replace each isa condition by "contains"
    when running plain TAX; this atom is that replacement.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: Term, right: Term) -> None:
        self.left = left
        self.right = right

    def evaluate(self, binding: Binding, context: ConditionContext = DEFAULT_CONTEXT) -> bool:
        return self.right.resolve(binding).lower() in self.left.resolve(binding).lower()

    def labels(self) -> Set[int]:
        return self.left.labels() | self.right.labels()

    def __repr__(self) -> str:
        return f"contains({self.left!r}, {self.right!r})"


class And(Condition):
    """Conjunction of two or more conditions."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Condition) -> None:
        if len(operands) < 2:
            raise ConditionError("And requires at least two operands")
        self.operands = tuple(operands)

    def evaluate(self, binding: Binding, context: ConditionContext = DEFAULT_CONTEXT) -> bool:
        return all(operand.evaluate(binding, context) for operand in self.operands)

    def labels(self) -> Set[int]:
        result: Set[int] = set()
        for operand in self.operands:
            result |= operand.labels()
        return result

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(o) for o in self.operands) + ")"


class Or(Condition):
    """Disjunction of two or more conditions."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Condition) -> None:
        if len(operands) < 2:
            raise ConditionError("Or requires at least two operands")
        self.operands = tuple(operands)

    def evaluate(self, binding: Binding, context: ConditionContext = DEFAULT_CONTEXT) -> bool:
        return any(operand.evaluate(binding, context) for operand in self.operands)

    def labels(self) -> Set[int]:
        result: Set[int] = set()
        for operand in self.operands:
            result |= operand.labels()
        return result

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(o) for o in self.operands) + ")"


class Not(Condition):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Condition) -> None:
        self.operand = operand

    def evaluate(self, binding: Binding, context: ConditionContext = DEFAULT_CONTEXT) -> bool:
        return not self.operand.evaluate(binding, context)

    def labels(self) -> Set[int]:
        return self.operand.labels()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


# ---------------------------------------------------------------------------
# Static analysis for embedding pruning
# ---------------------------------------------------------------------------


def required_tags(condition: Condition) -> Dict[int, Set[str]]:
    """Per-label tag restrictions implied by the condition.

    Walks the positive conjunctive structure of the condition and collects
    ``#n.tag = 'x'`` atoms (and disjunctions of them over the same label)
    into ``{n: {'x', ...}}``.  The embedding engine uses this to restrict
    candidate data nodes via the tag index.  Sound but not complete: atoms
    under Not or mixed Or contribute nothing.
    """
    restrictions: Dict[int, Set[str]] = {}

    def merge(label: int, tags: Set[str]) -> None:
        if label in restrictions:
            restrictions[label] &= tags
        else:
            restrictions[label] = set(tags)

    def visit(node: Condition) -> None:
        if isinstance(node, And):
            for operand in node.operands:
                visit(operand)
            return
        if isinstance(node, Comparison) and node.op == "=":
            pair = _tag_equality(node)
            if pair is not None:
                merge(pair[0], {pair[1]})
            return
        if isinstance(node, Or):
            per_label: Dict[int, Set[str]] = {}
            for operand in node.operands:
                if not isinstance(operand, Comparison) or operand.op != "=":
                    return  # a non-tag disjunct defeats the restriction
                pair = _tag_equality(operand)
                if pair is None:
                    return
                per_label.setdefault(pair[0], set()).add(pair[1])
            if len(per_label) == 1:
                label, tags = next(iter(per_label.items()))
                merge(label, tags)

    visit(condition)
    return restrictions


def _tag_equality(atom: Comparison) -> "Optional[tuple]":
    left, right = atom.left, atom.right
    if isinstance(left, NodeTag) and isinstance(right, Constant):
        return (left.label, right.value)
    if isinstance(right, NodeTag) and isinstance(left, Constant):
        return (right.label, left.value)
    return None
