"""One-time compilation of condition trees into evaluation closures.

``Condition.evaluate`` walks the AST for every candidate binding: one
dynamic-dispatch call per node, one ``isinstance``-laden ``resolve`` per
term, re-done for every document the verifier probes.  On the fig-16
workloads that interpretation is a top-three cost.  This module converts
a condition tree *once* (per cached query plan) into a tree of plain
Python closures — after compilation, evaluating a binding is just
nested function calls over dict lookups, with no AST in sight.

Semantics are bit-for-bit those of the interpreter:

* term resolution errors (``no binding for pattern node N``) carry the
  same :class:`~repro.errors.ConditionError` message,
* comparison/semantic-hook calls go through the *same* bound context
  methods, so side effects (``SeoConditionContext.ontology_accesses``)
  and error behaviour are identical,
* ``And``/``Or`` short-circuit in operand order exactly like
  ``all``/``any`` over the interpreted generators.

Extension atoms (the TOSS semantic operators in
:mod:`repro.core.conditions`) register themselves through
:func:`register_condition_compiler`.  A condition class nobody has
registered still works: it compiles to a closure that calls its own
``evaluate`` — per-node interpreted fallback, never a hard failure.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type

from ..errors import ConditionError
from .conditions import (
    And,
    Binding,
    Comparison,
    Condition,
    ConditionContext,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Not,
    Or,
    Term,
    TrueCondition,
)

#: A compiled condition: binding -> truth, closed over the context.
ConditionEvaluator = Callable[[Binding], bool]

#: A compiled term: binding -> string value.
TermResolver = Callable[[Binding], str]

#: Class-keyed extension compilers.  A compiler may return ``None`` to
#: decline, which falls back to per-node interpretation.
_Compiler = Callable[
    [Condition, ConditionContext, "Callable[[Condition, ConditionContext], ConditionEvaluator]"],
    Optional[ConditionEvaluator],
]
_COMPILERS: Dict[Type[Condition], _Compiler] = {}

#: Sentinel distinguishing "not a constant" from a constant empty string.
_NOT_CONSTANT = object()


def register_condition_compiler(cls: Type[Condition], compiler: _Compiler) -> None:
    """Register a closure compiler for an extension condition class.

    Dispatch is on the *exact* class — a subclass that overrides
    ``evaluate`` is never silently compiled with its parent's semantics;
    it takes the interpreted fallback until registered itself.
    """
    _COMPILERS[cls] = compiler


def compile_term(term: Term) -> TermResolver:
    """A resolver closure for ``term`` (exact interpreter semantics)."""
    resolver, _ = _compile_term(term)
    return resolver


def _compile_term(term: Term):
    """(resolver, constant-value-or-sentinel) for a term."""
    kind = type(term)
    if kind is Constant:
        value = term.value

        def constant(binding: Binding, _value=value) -> str:
            return _value

        return constant, value
    if kind is NodeTag:
        label = term.label

        def tag_of(binding: Binding, _label=label) -> str:
            try:
                return binding[_label].tag
            except KeyError:
                raise ConditionError(
                    f"no binding for pattern node {_label}"
                ) from None

        return tag_of, _NOT_CONSTANT
    if kind is NodeContent:
        label = term.label

        def content_of(binding: Binding, _label=label) -> str:
            try:
                return binding[_label].content
            except KeyError:
                raise ConditionError(
                    f"no binding for pattern node {_label}"
                ) from None

        return content_of, _NOT_CONSTANT
    # Unknown Term subclass: defer to its own resolve (interpreted).
    return term.resolve, _NOT_CONSTANT


def _uses_base_compare(context: ConditionContext) -> bool:
    """True when ``context`` has not overridden ``compare``.

    Only then may ``=``/``!=`` collapse to native ``==``/``!=`` and
    or-chains to set membership; an overriding context keeps its own
    ``compare`` in the loop.
    """
    return type(context).compare is ConditionContext.compare


def _membership_or(condition: Or, context: ConditionContext) -> Optional[ConditionEvaluator]:
    """``Or(x = c1, x = c2, ...)`` as one resolve + a set probe.

    This is exactly the shape :func:`repro.core.conditions.rewrite_condition`
    emits for SEO expansions — the hottest Or in the system.  Applicable
    only under the base ``compare`` (pure string equality) with every
    disjunct an ``=`` over the *same* non-constant term and a constant.
    """
    if not _uses_base_compare(context):
        return None
    shared_term: Optional[Term] = None
    values = set()
    for operand in condition.operands:
        if type(operand) is not Comparison or operand.op != "=":
            return None
        left, right = operand.left, operand.right
        if type(right) is Constant and type(left) is not Constant:
            term, value = left, right.value
        elif type(left) is Constant and type(right) is not Constant:
            term, value = right, left.value
        else:
            return None
        if shared_term is None:
            shared_term = term
        elif term != shared_term:
            return None
        values.add(value)
    if shared_term is None:
        return None
    resolve = compile_term(shared_term)
    members = frozenset(values)

    def membership(binding: Binding, _resolve=resolve, _members=members) -> bool:
        return _resolve(binding) in _members

    return membership


def _compile_comparison(condition: Comparison, context: ConditionContext) -> ConditionEvaluator:
    left, left_const = _compile_term(condition.left)
    right, right_const = _compile_term(condition.right)
    op = condition.op
    if _uses_base_compare(context) and op in ("=", "!="):
        # Pure string (in)equality: skip the context call entirely.
        if op == "=":
            if right_const is not _NOT_CONSTANT:
                def eq_const(binding: Binding, _l=left, _v=right_const) -> bool:
                    return _l(binding) == _v

                return eq_const
            if left_const is not _NOT_CONSTANT:
                def const_eq(binding: Binding, _r=right, _v=left_const) -> bool:
                    return _v == _r(binding)

                return const_eq

            def eq(binding: Binding, _l=left, _r=right) -> bool:
                return _l(binding) == _r(binding)

            return eq
        if right_const is not _NOT_CONSTANT:
            def ne_const(binding: Binding, _l=left, _v=right_const) -> bool:
                return _l(binding) != _v

            return ne_const

        def ne(binding: Binding, _l=left, _r=right) -> bool:
            return _l(binding) != _r(binding)

        return ne
    compare = context.compare

    def ordered(binding: Binding, _c=compare, _op=op, _l=left, _r=right) -> bool:
        return _c(_op, _l(binding), _r(binding))

    return ordered


def compile_condition(
    condition: Condition, context: ConditionContext
) -> ConditionEvaluator:
    """Compile ``condition`` into a closure over ``context``.

    Never raises for unsupported shapes: anything unknown degrades to a
    closure around its own (interpreted) ``evaluate``, so a compiled
    plan is always safe to run.
    """
    kind = type(condition)
    if kind is TrueCondition:
        return _always_true
    if kind is Comparison:
        return _compile_comparison(condition, context)
    if kind is Contains:
        left = compile_term(condition.left)
        right = compile_term(condition.right)

        def contains(binding: Binding, _l=left, _r=right) -> bool:
            return _r(binding).lower() in _l(binding).lower()

        return contains
    if kind is And:
        parts = tuple(
            compile_condition(operand, context) for operand in condition.operands
        )
        if len(parts) == 2:
            first, second = parts

            def both(binding: Binding, _a=first, _b=second) -> bool:
                return _a(binding) and _b(binding)

            return both

        def conjunction(binding: Binding, _parts=parts) -> bool:
            for part in _parts:
                if not part(binding):
                    return False
            return True

        return conjunction
    if kind is Or:
        membership = _membership_or(condition, context)
        if membership is not None:
            return membership
        parts = tuple(
            compile_condition(operand, context) for operand in condition.operands
        )

        def disjunction(binding: Binding, _parts=parts) -> bool:
            for part in _parts:
                if part(binding):
                    return True
            return False

        return disjunction
    if kind is Not:
        inner = compile_condition(condition.operand, context)

        def negation(binding: Binding, _inner=inner) -> bool:
            return not _inner(binding)

        return negation
    extension = _COMPILERS.get(kind)
    if extension is not None:
        compiled = extension(condition, context, compile_condition)
        if compiled is not None:
            return compiled
    # Unregistered condition class: per-node interpreted fallback.

    def interpreted(binding: Binding, _c=condition, _ctx=context) -> bool:
        return _c.evaluate(binding, _ctx)

    return interpreted


def _always_true(binding: Binding) -> bool:
    return True


# ---------------------------------------------------------------------------
# Pattern lowering for set-oriented (columnar) verification
# ---------------------------------------------------------------------------

#: One step of a columnar verification program:
#: ``(label, parent_label_or_None, edge, tags_tuple, tags_set)`` —
#: ``tags_tuple`` preserves the restriction set's iteration order (the
#: embedder enumerates per-tag pools in that order) and ``tags_set`` is
#: kept for membership filtering; both are None when unrestricted.
BatchStep = tuple


def compile_batch_steps(pattern, restrictions) -> "list[BatchStep]":
    """Lower a (validated) pattern + tag restrictions to a step program.

    The batched verifier (:mod:`repro.tax.batch`) interprets this flat
    program over a document's :class:`~repro.xmldb.columnar.DocumentColumns`
    instead of re-deriving edges and restriction sets per candidate tree.
    Steps follow the pattern's preorder — the same enumeration order
    :func:`repro.tax.embedding.find_embeddings` backtracks in, which is
    what keeps evaluator call sequences (and therefore ontology-access
    counts) bit-identical between the two paths.
    """
    steps = []
    for pattern_node in pattern.preorder():
        tags = restrictions.get(pattern_node.label)
        steps.append(
            (
                pattern_node.label,
                pattern_node.parent,
                pattern_node.edge,
                None if tags is None else tuple(tags),
                tags,
            )
        )
    return steps
