"""The TAX algebra operators (Section 2.1.2 and Section 5.1.2's base forms).

All operators take and return *collections*: lists of data-tree roots.
They are pure — outputs are freshly copied trees — and evaluate
conditions through a :class:`~repro.tax.conditions.ConditionContext`, so
the same code runs plain TAX (default context) and TOSS (SEO context).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..xmldb.model import XmlNode
from .conditions import Binding, ConditionContext, DEFAULT_CONTEXT
from .embedding import assemble_forest, find_embeddings, find_matches, witness_tree
from .pattern import PatternTree
from .tree import Collection, dedupe

#: A compiled pattern condition (see :mod:`repro.tax.compile`) and the
#: tag restrictions derived from it — both optional accelerations that
#: must be exactly equivalent to interpreting ``pattern.condition``.
ConditionEvaluator = Callable[[Binding], bool]
TagRestrictions = Mapping[int, Set[str]]

#: The synthetic root tag used by the product operator (Figure 7).
PRODUCT_ROOT_TAG = "tax_prod_root"

#: A projection-list entry: a label, or (label, keep_subtree).
ProjectionEntry = Union[int, Tuple[int, bool]]


def selection(
    collection: Collection,
    pattern: PatternTree,
    sl_labels: Iterable[int] = (),
    context: ConditionContext = DEFAULT_CONTEXT,
    evaluator: Optional[ConditionEvaluator] = None,
    restrictions: Optional[TagRestrictions] = None,
) -> List[XmlNode]:
    """``sigma_{P, SL}``: all witness trees of ``pattern`` over the collection.

    ``sl_labels`` lists the pattern nodes whose images are inflated to
    their full subtrees in each witness (Example 3).  Results use set
    semantics: structurally duplicate witnesses are collapsed.
    """
    sl = list(sl_labels)
    pattern.validate()
    order = list(pattern.preorder())
    if pattern.root in sl:
        # Root-inflating selections (the paper's Figure 16 shape): every
        # image lies inside the root image's subtree and the root is
        # inflated, so each witness is exactly a copy of that subtree.
        # Build one witness per distinct root image instead of one per
        # embedding — equivalent under set semantics, since embeddings
        # sharing a root image produce structurally equal witnesses.
        root_label = pattern.root
        tops: Dict[int, XmlNode] = {}
        for tree in collection:
            for binding in find_matches(
                pattern,
                tree,
                context,
                evaluator=evaluator,
                restrictions=restrictions,
                order=order,
            ):
                top = binding[root_label]
                tops.setdefault(top.object_id, top)
        # Dedupe on the sources before copying: a copy's canonical key
        # equals its source subtree's, so skipping duplicate sources
        # yields exactly ``dedupe([copy per top])`` without paying for
        # the duplicate copies.
        seen: Set[Tuple] = set()
        out: List[XmlNode] = []
        for top in tops.values():
            key = top.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            out.append(top.copy_numbered(itertools.count(), itertools.count()))
        return out
    witnesses: List[XmlNode] = []
    for tree in collection:
        for embedding in find_embeddings(
            pattern,
            tree,
            context,
            evaluator=evaluator,
            restrictions=restrictions,
            order=order,
        ):
            witnesses.append(witness_tree(embedding, sl))
    return dedupe(witnesses)


def projection(
    collection: Collection,
    pattern: PatternTree,
    pl: Sequence[ProjectionEntry],
    context: ConditionContext = DEFAULT_CONTEXT,
    evaluator: Optional[ConditionEvaluator] = None,
    restrictions: Optional[TagRestrictions] = None,
) -> List[XmlNode]:
    """``pi_{P, PL}``: keep nodes matched by the PL labels, per input tree.

    For every input tree, the data nodes bound to a PL label in *some*
    satisfying embedding are retained (with their full subtree when the
    entry is ``(label, True)``), re-assembled under their hierarchical
    relationships; unmatched trees contribute nothing.  Disconnected
    matches become separate output trees (Example 5 returns a collection
    of author subtrees).
    """
    entries: List[Tuple[int, bool]] = [
        entry if isinstance(entry, tuple) else (entry, False) for entry in pl
    ]
    pattern.validate()
    order = list(pattern.preorder())
    results: List[XmlNode] = []
    for tree in collection:
        matched: Set[XmlNode] = set()
        for binding in find_matches(
            pattern,
            tree,
            context,
            evaluator=evaluator,
            restrictions=restrictions,
            order=order,
        ):
            for label, keep_subtree in entries:
                image = binding.get(label)
                if image is None:
                    continue
                matched.add(image)
                if keep_subtree:
                    matched.update(image.descendants())
        if matched:
            results.extend(assemble_forest(matched))
    return dedupe(results)


def _paired_copy(first: XmlNode, second: XmlNode) -> XmlNode:
    """Copy both trees under a fresh product root, numbering as it copies.

    Single-pass equivalent of ``copy()`` + ``renumber()`` on the product
    root — the inner loops of ``product`` dominate the naive join
    strategy, so the second traversal is worth fusing away.
    """
    pre = itertools.count()
    post = itertools.count()
    root = XmlNode(PRODUCT_ROOT_TAG)
    root.pre = next(pre)
    for tree in (first, second):
        sub = tree.copy_numbered(pre, post, 1)
        sub.parent = root
        root.children.append(sub)
    root.post = next(post)
    return root


def product(left: Collection, right: Collection) -> List[XmlNode]:
    """``SDB1 x SDB2``: pair every tree of each side under a new root.

    "The product ... contains for each pair of trees T1, T2 a tree, whose
    root is a new node (called tax_prod_root), left child is the root of
    T1 and right child is the root of T2."
    """
    pairs: List[XmlNode] = []
    for first in left:
        for second in right:
            pairs.append(_paired_copy(first, second))
    return pairs


def join(
    left: Collection,
    right: Collection,
    pattern: PatternTree,
    sl_labels: Iterable[int] = (),
    context: ConditionContext = DEFAULT_CONTEXT,
    evaluator: Optional[ConditionEvaluator] = None,
    restrictions: Optional[TagRestrictions] = None,
) -> List[XmlNode]:
    """Condition join: product followed by selection (Example 6)."""
    return selection(
        product(left, right),
        pattern,
        sl_labels,
        context,
        evaluator=evaluator,
        restrictions=restrictions,
    )


def union(left: Collection, right: Collection) -> List[XmlNode]:
    """Set union under the paper's tree equality."""
    return dedupe([tree.copy().renumber() for tree in list(left) + list(right)])


def intersection(left: Collection, right: Collection) -> List[XmlNode]:
    """Set intersection under tree equality."""
    right_keys = {tree.canonical_key() for tree in right}
    kept = [tree for tree in dedupe(left) if tree.canonical_key() in right_keys]
    return [tree.copy().renumber() for tree in kept]


def difference(left: Collection, right: Collection) -> List[XmlNode]:
    """Set difference (left minus right) under tree equality."""
    right_keys = {tree.canonical_key() for tree in right}
    kept = [tree for tree in dedupe(left) if tree.canonical_key() not in right_keys]
    return [tree.copy().renumber() for tree in kept]
