"""Grouping and aggregation — the rest of the original TAX algebra.

The TAX paper (Jagadish et al., the paper's reference [8]) includes a
grouping operator alongside selection/projection/join: witness trees are
partitioned by the values of a *grouping basis* (a list of pattern-node
attributes), and each group becomes one output tree whose root carries the
basis values and the group's members.  TOSS inherits these operators
unchanged (its conditions only refine *satisfaction*), so they evaluate
under any :class:`~repro.tax.conditions.ConditionContext`.

Output shape for one group::

    tax_group_root
      tax_grouping_basis
        key[value of basis term 1]
        key[value of basis term 2] ...
      tax_group_subroot
        <witness tree 1>
        <witness tree 2> ...

:func:`aggregation` then folds each group to a single value (count, sum,
min, max, avg over the member trees' contents selected by a tag).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import TaxError
from ..xmldb.model import XmlNode
from .conditions import ConditionContext, DEFAULT_CONTEXT, Term
from .embedding import find_embeddings, witness_tree
from .pattern import PatternTree
from .tree import Collection, dedupe

GROUP_ROOT_TAG = "tax_group_root"
GROUP_BASIS_TAG = "tax_grouping_basis"
GROUP_SUBROOT_TAG = "tax_group_subroot"
AGGREGATE_TAG = "tax_aggregate"


def grouping(
    collection: Collection,
    pattern: PatternTree,
    grouping_basis: Sequence[Term],
    sl_labels: Iterable[int] = (),
    context: ConditionContext = DEFAULT_CONTEXT,
) -> List[XmlNode]:
    """Group the pattern's witness trees by the basis terms' values.

    Groups are emitted in order of first appearance; members keep document
    order and deduplicate structurally (set semantics, like selection).
    """
    if not grouping_basis:
        raise TaxError("grouping requires at least one basis term")
    sl = list(sl_labels)
    members: Dict[Tuple[str, ...], List[XmlNode]] = {}
    order: List[Tuple[str, ...]] = []
    for tree in collection:
        for embedding in find_embeddings(pattern, tree, context):
            key = tuple(term.resolve(embedding.binding) for term in grouping_basis)
            if key not in members:
                members[key] = []
                order.append(key)
            members[key].append(witness_tree(embedding, sl))

    groups: List[XmlNode] = []
    for key in order:
        root = XmlNode(GROUP_ROOT_TAG)
        basis = root.element(GROUP_BASIS_TAG)
        for value in key:
            basis.element("key", value)
        subroot = root.element(GROUP_SUBROOT_TAG)
        for witness in dedupe(members[key]):
            subroot.append(witness)
        groups.append(root.renumber())
    return groups


#: Aggregate name -> fold over a list of floats.
_NUMERIC_AGGREGATES: Dict[str, Callable[[List[float]], float]] = {
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values),
}


def aggregation(
    groups: Collection,
    function: str = "count",
    value_tag: Optional[str] = None,
) -> List[XmlNode]:
    """Fold each group tree into a ``tax_aggregate`` result tree.

    ``count`` counts the group's member trees; the numeric aggregates
    (``sum``/``min``/``max``/``avg``) fold the float contents of member
    descendants tagged ``value_tag``.  Output per group::

        tax_aggregate
          tax_grouping_basis (copied)
          value[rendered aggregate]
    """
    if function != "count" and function not in _NUMERIC_AGGREGATES:
        known = ", ".join(sorted(_NUMERIC_AGGREGATES) + ["count"])
        raise TaxError(f"unknown aggregate {function!r}; known: {known}")
    if function != "count" and value_tag is None:
        raise TaxError(f"aggregate {function!r} requires value_tag=")

    results: List[XmlNode] = []
    for group in groups:
        if group.tag != GROUP_ROOT_TAG:
            raise TaxError(
                f"aggregation expects {GROUP_ROOT_TAG} trees, got {group.tag!r}"
            )
        basis = group.child_by_tag(GROUP_BASIS_TAG)
        subroot = group.child_by_tag(GROUP_SUBROOT_TAG)
        if function == "count":
            value = float(len(subroot.children) if subroot else 0)
        else:
            numbers: List[float] = []
            if subroot is not None:
                for member in subroot.children:
                    for node in member.iter():
                        if node.tag == value_tag and node.text:
                            try:
                                numbers.append(float(node.text))
                            except ValueError:
                                raise TaxError(
                                    f"non-numeric content {node.text!r} under "
                                    f"{value_tag!r} in {function} aggregate"
                                ) from None
            if not numbers:
                continue
            value = _NUMERIC_AGGREGATES[function](numbers)
        result = XmlNode(AGGREGATE_TAG)
        if basis is not None:
            result.append(basis.copy())
        rendered = f"{int(value)}" if value == int(value) else f"{value:g}"
        result.element("value", rendered)
        results.append(result.renumber())
    return results
