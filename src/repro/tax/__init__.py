"""The TAX tree algebra (Jagadish et al. [8]) — the paper's substrate.

TAX queries a semistructured database (a collection of ordered labelled
trees) with *pattern trees*: node-labelled, pc/ad-edge-labelled trees plus
a selection condition over the pattern nodes' tags and contents.  An
*embedding* maps pattern nodes to data nodes preserving structure and
satisfying the condition; each embedding induces a *witness tree*.

This package implements the data trees (shared with :mod:`repro.xmldb`),
pattern trees, the condition language, embedding enumeration with index
pruning, witness-tree construction, and the algebra operators: selection,
projection, product, join, union, intersection, difference.
"""

from .conditions import (
    And,
    Comparison,
    Condition,
    ConditionContext,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Not,
    Or,
    Term,
)
from .embedding import Embedding, find_embeddings, witness_tree
from .pattern import EdgeKind, PatternNode, PatternTree
from .algebra import (
    difference,
    intersection,
    join,
    product,
    projection,
    selection,
    union,
)
from .grouping import aggregation, grouping

__all__ = [
    "And",
    "Comparison",
    "Condition",
    "ConditionContext",
    "Constant",
    "Contains",
    "EdgeKind",
    "Embedding",
    "NodeContent",
    "NodeTag",
    "Not",
    "Or",
    "PatternNode",
    "PatternTree",
    "Term",
    "aggregation",
    "difference",
    "find_embeddings",
    "grouping",
    "intersection",
    "join",
    "product",
    "projection",
    "selection",
    "union",
    "witness_tree",
]
