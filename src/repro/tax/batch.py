"""Set-oriented (batched) verification over columnar document arrays.

The per-candidate verify path re-enumerates pattern embeddings with
:func:`repro.tax.embedding.find_embeddings`, which walks
:class:`~repro.xmldb.model.XmlNode` trees and rebuilds per-tree tag
buckets for every candidate.  This module runs the *same* backtracking
search over a collection's cached
:class:`~repro.xmldb.columnar.DocumentColumns` instead: candidate pools
become interval lookups on prebuilt per-tag row lists, set-semantics
dedupe runs on cached subtree keys *before* any output tree exists, and
join verification decides candidate pairs over the two sides' columns —
``copy_numbered``-style product materialisation happens only for pairs
that produced a witness (late materialisation).

Equivalence contract (the property suite pins it): for every entry, the
batched enumeration visits candidate rows in exactly the order
``find_embeddings`` visits the corresponding nodes and calls the
condition evaluator at exactly the same points — so verdicts, result
sequences, ontology-access counts and guard behaviour are bit-identical
to the per-candidate path.  Entries whose document has no columns
(``columns is None``) fall back to ``find_embeddings`` per entry, the
same way :func:`repro.xmldb.columnar.compile_columnar` falls back.

An entry is ``(columns, row)`` for a columnar candidate or
``(None, node)`` for a fallback candidate; ``columns.nodes[row]`` is the
candidate node itself, so evaluators see the *original* document nodes
either way.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..xmldb.columnar import DocumentColumns
from ..xmldb.model import XmlNode
from .algebra import PRODUCT_ROOT_TAG, ConditionEvaluator, TagRestrictions
from .compile import BatchStep, compile_batch_steps
from .conditions import Binding, ConditionContext, DEFAULT_CONTEXT, required_tags
from .embedding import Embedding, find_embeddings, find_matches, witness_tree
from .pattern import PC, PatternTree
from .tree import dedupe

#: A batched-verify candidate: ``(columns, row)``, or ``(None, node)``
#: when the candidate's document has no columnar arrays.
Entry = Tuple[Optional[DocumentColumns], Union[int, XmlNode]]

#: The shared stand-in for a product root during virtual-product
#: enumeration.  Conditions only ever read ``tag``/``content`` of bound
#: nodes, and a freshly built product root always has tag
#: ``tax_prod_root`` and empty content — one instance serves every pair.
_VIRTUAL_ROOT = XmlNode(PRODUCT_ROOT_TAG)


def prepare(
    pattern: PatternTree,
    context: ConditionContext = DEFAULT_CONTEXT,
    evaluator: Optional[ConditionEvaluator] = None,
    restrictions: Optional[TagRestrictions] = None,
    order: Optional[List] = None,
    steps: Optional[List[BatchStep]] = None,
) -> Tuple[ConditionEvaluator, TagRestrictions, List, List[BatchStep]]:
    """(evaluator, restrictions, preorder, steps) for a validated pattern.

    Fills whichever accelerations the caller did not supply, exactly the
    way ``find_embeddings`` does — an interpreted-closure evaluator over
    ``pattern.condition`` and freshly derived ``required_tags`` — and
    lowers the pattern to the flat step program the batched scans
    interpret.  Callers looping over many entries should call this once
    and pass the results through.
    """
    if restrictions is None:
        restrictions = required_tags(pattern.condition)
    if order is None:
        pattern.validate()
        order = list(pattern.preorder())
    if steps is None:
        steps = compile_batch_steps(pattern, restrictions)
    if evaluator is None:
        condition, ctx = pattern.condition, context

        def evaluator(b: Binding, _c=condition, _ctx=ctx) -> bool:
            return _c.evaluate(b, _ctx)

    return evaluator, restrictions, order, steps


# ---------------------------------------------------------------------------
# Columnar embedding enumeration (single document subtree)
# ---------------------------------------------------------------------------


def _root_prune(steps: Sequence[BatchStep]) -> Tuple:
    """Structural constraints an *unrestricted* root candidate must meet.

    Every pc child step of the root with a tag restriction demands that
    a complete match's root image has at least one child carrying one of
    those tags.  A candidate without one contributes zero complete
    matches — the evaluator never fires on it — so dropping it from the
    root pool is observably identical to scanning it.  Returns ``()``
    when the root is tag-restricted (the per-tag pool is already
    narrow) or no child step constrains it.
    """
    root_label = steps[0][0]
    if steps[0][3] is not None:
        return ()
    return tuple(
        (tags_tuple, tags_set)
        for _label, parent, edge, tags_tuple, tags_set in steps[1:]
        if parent == root_label and edge == PC and tags_tuple is not None
    )


def _pruned_rows(
    cols: DocumentColumns, lo: int, hi: int, constraints: Tuple
) -> List[int]:
    """Rows of ``[lo, hi)`` satisfying every child-tag constraint, ascending."""
    first_tuple, _first_set = constraints[0]
    if len(first_tuple) == 1:
        rows = cols.rows_with_child_tag(first_tuple[0], lo, hi)
    else:
        merged: List[int] = []
        for tag in first_tuple:
            merged.extend(cols.rows_with_child_tag(tag, lo, hi))
        rows = sorted(set(merged))
    rest = constraints[1:]
    if not rest:
        return rows
    children = cols.children
    tags_col = cols.tags
    out: List[int] = []
    for row in rows:
        child_rows = children[row]
        satisfied = True
        for _tags_tuple, tags_set in rest:
            for child in child_rows:
                if tags_col[child] in tags_set:
                    break
            else:
                satisfied = False
                break
        if satisfied:
            out.append(row)
    return out


def _scan(
    steps: Sequence[BatchStep],
    idx: int,
    cols: DocumentColumns,
    lo: int,
    hi: int,
    binding: Dict[int, XmlNode],
    rows: Dict[int, int],
    evaluator: ConditionEvaluator,
    emit: Callable[[], None],
    root_prune: Tuple = (),
) -> None:
    """Backtrack over the subtree rows ``[lo, hi)`` of one document.

    Mirrors ``find_embeddings``'s candidate pools step for step: root
    pools are per-tag row lists concatenated in restriction-set
    iteration order (or the full preorder interval when unrestricted,
    structurally pruned through ``root_prune`` — see
    :func:`_root_prune`), pc pools are the anchor's child rows, ad
    pools are the anchor's descendant interval — all in the same
    sequence the tree walk produces, so the evaluator fires at
    identical points.
    """
    if idx == len(steps):
        if evaluator(binding):
            emit()
        return
    label, parent, edge, tags_tuple, tags_set = steps[idx]
    pool: Iterable[int]
    if parent is None:
        if tags_tuple is None:
            pool = (
                _pruned_rows(cols, lo, hi, root_prune)
                if root_prune
                else range(lo, hi)
            )
        elif len(tags_tuple) == 1:
            pool = cols.tag_rows_in(tags_tuple[0], lo, hi)
        else:
            pool = []
            for tag in tags_tuple:
                pool.extend(cols.tag_rows_in(tag, lo, hi))
    else:
        anchor = rows[parent]
        if edge == PC:
            child_rows = cols.children[anchor]
            if tags_set is None:
                pool = child_rows
            else:
                tags_col = cols.tags
                pool = [c for c in child_rows if tags_col[c] in tags_set]
        else:
            end_anchor = cols.end[anchor]
            if tags_tuple is None:
                pool = range(anchor + 1, end_anchor)
            elif len(tags_tuple) == 1:
                pool = cols.tag_rows_in(tags_tuple[0], anchor + 1, end_anchor)
            else:
                tags_col = cols.tags
                pool = [
                    x
                    for x in range(anchor + 1, end_anchor)
                    if tags_col[x] in tags_set
                ]
    # No trailing unbind: every label is rebound before the evaluator or
    # emit can observe the binding (a complete match binds all labels),
    # so stale entries between iterations and entries are unobservable.
    nodes = cols.nodes
    next_idx = idx + 1
    for row in pool:
        rows[label] = row
        binding[label] = nodes[row]
        _scan(steps, next_idx, cols, lo, hi, binding, rows, evaluator, emit)


def _is_star(steps: Sequence[BatchStep]) -> bool:
    """True when every non-root step is a pc child of the root."""
    root_label = steps[0][0]
    return all(
        parent == root_label and edge == PC
        for _label, parent, edge, _tt, _ts in steps[1:]
    )


def _scan_star(
    steps: Sequence[BatchStep],
    cols: DocumentColumns,
    lo: int,
    hi: int,
    binding: Dict[int, XmlNode],
    rows: Dict[int, int],
    evaluator: ConditionEvaluator,
    emit: Callable[[], None],
    root_prune: Tuple = (),
) -> None:
    """:func:`_scan` specialised for star patterns (root + pc children).

    Every child pool depends only on the bound root, so the pools are
    built once per root candidate and crossed with ``itertools.product``
    — which enumerates combinations in exactly the nested order the
    generic backtracker produces, firing the evaluator at the same
    points.  Saves the per-level recursion and the re-derivation of
    later siblings' pools for every earlier sibling candidate.
    """
    _root_label, _p, _e, tags_tuple, _ts = steps[0]
    root_pool: Iterable[int]
    if tags_tuple is None:
        root_pool = (
            _pruned_rows(cols, lo, hi, root_prune)
            if root_prune
            else range(lo, hi)
        )
    elif len(tags_tuple) == 1:
        root_pool = cols.tag_rows_in(tags_tuple[0], lo, hi)
    else:
        root_pool = []
        for tag in tags_tuple:
            root_pool.extend(cols.tag_rows_in(tag, lo, hi))
    child_steps = steps[1:]
    child_labels = [step[0] for step in child_steps]
    nodes = cols.nodes
    tags_col = cols.tags
    children = cols.children
    iproduct = itertools.product
    for root_row in root_pool:
        child_rows = children[root_row]
        pools: Optional[List[List[int]]] = []
        for _label, _parent, _edge, _tt, tags_set in child_steps:
            pool = (
                child_rows
                if tags_set is None
                else [c for c in child_rows if tags_col[c] in tags_set]
            )
            if not pool:
                pools = None
                break
            pools.append(pool)
        if pools is None:
            continue
        rows[_root_label] = root_row
        binding[_root_label] = nodes[root_row]
        for combo in iproduct(*pools):
            for label, row in zip(child_labels, combo):
                rows[label] = row
                binding[label] = nodes[row]
            if evaluator(binding):
                emit()


def _scan_entry(
    steps: Sequence[BatchStep],
    cols: DocumentColumns,
    lo: int,
    hi: int,
    binding: Dict[int, XmlNode],
    rows: Dict[int, int],
    evaluator: ConditionEvaluator,
    emit: Callable[[], None],
    root_prune: Tuple = (),
) -> None:
    """:func:`_scan` with :func:`_scan_star`'s entry-level signature."""
    _scan(steps, 0, cols, lo, hi, binding, rows, evaluator, emit, root_prune)


# ---------------------------------------------------------------------------
# Batched selection / projection
# ---------------------------------------------------------------------------


def selection_batched(
    entries: Sequence[Entry],
    pattern: PatternTree,
    sl_labels: Iterable[int],
    context: ConditionContext = DEFAULT_CONTEXT,
    evaluator: Optional[ConditionEvaluator] = None,
    restrictions: Optional[TagRestrictions] = None,
    order: Optional[List] = None,
    steps: Optional[List[BatchStep]] = None,
) -> List[XmlNode]:
    """``tax.algebra.selection`` over batched-verify entries.

    Produces the identical result sequence ``selection([nodes...])``
    would, but enumerates embeddings over columns where available and —
    on the root-inflating fast path — dedupes on cached subtree keys
    before materialising any witness.
    """
    sl = list(sl_labels)
    evaluator, restrictions, order, steps = prepare(
        pattern, context, evaluator, restrictions, order, steps
    )
    root_label = pattern.root
    root_prune = _root_prune(steps)
    scan = _scan_star if _is_star(steps) else _scan_entry
    if root_label in sl:
        # Root-inflating fast path (the paper's Figure 16 shape): one
        # witness per distinct root image, deduped by subtree key before
        # the copy is ever made (a copy's canonical key equals its
        # source's, so pre-copy dedupe is exact).  The binding/row dicts
        # and the emit closure are shared across entries — every label
        # is rebound before an emit can observe them, and ``holder``
        # carries the entry's columns to the closure.
        tops: Dict[int, Tuple[Optional[DocumentColumns], Union[int, XmlNode]]] = {}
        rows: Dict[int, int] = {}
        binding: Dict[int, XmlNode] = {}
        holder: List[Optional[DocumentColumns]] = [None]

        def emit() -> None:
            cols = holder[0]
            top_row = rows[root_label]
            tops.setdefault(cols.nodes[top_row].object_id, (cols, top_row))

        for cols, item in entries:
            if cols is None:
                for fallback_binding in find_matches(
                    pattern,
                    item,  # type: ignore[arg-type]
                    context,
                    evaluator=evaluator,
                    restrictions=restrictions,
                    order=order,
                ):
                    top = fallback_binding[root_label]
                    tops.setdefault(top.object_id, (None, top))
            else:
                holder[0] = cols
                scan(
                    steps, cols, item, cols.end[item], binding, rows,
                    evaluator, emit, root_prune,
                )
        seen: Set[Tuple] = set()
        out: List[XmlNode] = []
        for cols, item in tops.values():
            if cols is None:
                key = item.canonical_key()  # type: ignore[union-attr]
            else:
                key = cols.subtree_key(item)  # type: ignore[arg-type]
            if key in seen:
                continue
            seen.add(key)
            if cols is None:
                out.append(
                    item.copy_numbered(  # type: ignore[union-attr]
                        itertools.count(), itertools.count()
                    )
                )
            else:
                out.append(cols.materialize(item))  # type: ignore[arg-type]
        return out
    witnesses: List[XmlNode] = []
    general_rows: Dict[int, int] = {}
    general_binding: Dict[int, XmlNode] = {}

    def emit_witness() -> None:
        witnesses.append(
            witness_tree(Embedding(pattern, dict(general_binding)), sl)
        )

    for cols, item in entries:
        if cols is None:
            for embedding in find_embeddings(
                pattern,
                item,  # type: ignore[arg-type]
                context,
                evaluator=evaluator,
                restrictions=restrictions,
                order=order,
            ):
                witnesses.append(witness_tree(embedding, sl))
        else:
            scan(
                steps, cols, item, cols.end[item], general_binding,
                general_rows, evaluator, emit_witness, root_prune,
            )
    return dedupe(witnesses)


def projection_batched(
    entries: Sequence[Entry],
    pattern: PatternTree,
    pl: Sequence,
    context: ConditionContext = DEFAULT_CONTEXT,
    evaluator: Optional[ConditionEvaluator] = None,
    restrictions: Optional[TagRestrictions] = None,
    order: Optional[List] = None,
    steps: Optional[List[BatchStep]] = None,
) -> List[XmlNode]:
    """``tax.algebra.projection`` over batched-verify entries."""
    from .embedding import assemble_forest

    pl_entries: List[Tuple[int, bool]] = [
        entry if isinstance(entry, tuple) else (entry, False) for entry in pl
    ]
    evaluator, restrictions, order, steps = prepare(
        pattern, context, evaluator, restrictions, order, steps
    )
    root_prune = _root_prune(steps)
    scan = _scan_star if _is_star(steps) else _scan_entry
    results: List[XmlNode] = []
    rows: Dict[int, int] = {}
    scan_binding: Dict[int, XmlNode] = {}
    matched_holder: List[Set[XmlNode]] = [set()]

    def emit() -> None:
        matched = matched_holder[0]
        for label, keep_subtree in pl_entries:
            image = scan_binding.get(label)
            if image is None:
                continue
            matched.add(image)
            if keep_subtree:
                matched.update(image.descendants())

    for cols, item in entries:
        matched: Set[XmlNode] = set()
        if cols is None:
            bindings = find_matches(
                pattern,
                item,  # type: ignore[arg-type]
                context,
                evaluator=evaluator,
                restrictions=restrictions,
                order=order,
            )
            for binding in bindings:
                for label, keep_subtree in pl_entries:
                    image = binding.get(label)
                    if image is None:
                        continue
                    matched.add(image)
                    if keep_subtree:
                        matched.update(image.descendants())
        else:
            matched_holder[0] = matched
            scan(
                steps, cols, item, cols.end[item], scan_binding, rows,
                evaluator, emit, root_prune,
            )
        if matched:
            results.extend(assemble_forest(matched))
    return dedupe(results)


# ---------------------------------------------------------------------------
# Late-materialised join verification (virtual products)
# ---------------------------------------------------------------------------


def _product_scan(
    steps: Sequence[BatchStep],
    idx: int,
    lcols: DocumentColumns,
    l_lo: int,
    l_hi: int,
    rcols: DocumentColumns,
    r_lo: int,
    r_hi: int,
    binding: Dict[int, XmlNode],
    positions: Dict[int, Tuple[int, int]],
    evaluator: ConditionEvaluator,
    emit: Callable[[], None],
    root_prune: Tuple = (),
    memo: Optional[Dict] = None,
) -> None:
    """Backtrack over the *virtual* product of two candidate subtrees.

    A product tree's preorder is: synthetic root, then the left subtree,
    then the right subtree.  Positions are ``(rank, row)`` pairs — rank
    0 is the synthetic root (bound to the shared stand-in node), rank 1
    a left-side row, rank 2 a right-side row — and every candidate pool
    below reproduces, in order, exactly the node sequence
    ``find_embeddings`` would walk on a materialised product tree.  No
    tree is built; the evaluator reads the two sides' original nodes.

    ``memo`` (shared across a join's pairs) caches side-local pools:
    a pool anchored at a side row depends only on that side's columns
    and the anchor, so entries repeated across many pairs build each
    pool once.  Pools are read-only; sharing the lists is safe.
    """
    if idx == len(steps):
        if evaluator(binding):
            emit()
        return
    label, parent, edge, tags_tuple, tags_set = steps[idx]
    pool: Iterable[Tuple[int, int]]
    if parent is None:
        if tags_tuple is None:
            if root_prune:
                # Structurally pruned root pool: the product root's
                # children are exactly the two side roots, side rows
                # prune through their per-tag parent lists.  Same
                # subset-preserving order as the unpruned chain.
                pruned: List[Tuple[int, int]] = []
                left_tag = lcols.tags[l_lo]
                right_tag = rcols.tags[r_lo]
                if all(
                    left_tag in tags_set or right_tag in tags_set
                    for _tt, tags_set in root_prune
                ):
                    pruned.append((0, 0))
                left_key = ("prune", 1, l_lo, id(lcols))
                left_part = None if memo is None else memo.get(left_key)
                if left_part is None:
                    left_part = [
                        (1, x)
                        for x in _pruned_rows(lcols, l_lo, l_hi, root_prune)
                    ]
                    if memo is not None:
                        memo[left_key] = left_part
                right_key = ("prune", 2, r_lo, id(rcols))
                right_part = None if memo is None else memo.get(right_key)
                if right_part is None:
                    right_part = [
                        (2, y)
                        for y in _pruned_rows(rcols, r_lo, r_hi, root_prune)
                    ]
                    if memo is not None:
                        memo[right_key] = right_part
                pruned.extend(left_part)
                pruned.extend(right_part)
                pool = pruned
            else:
                pool = itertools.chain(
                    ((0, 0),),
                    ((1, x) for x in range(l_lo, l_hi)),
                    ((2, y) for y in range(r_lo, r_hi)),
                )
        else:
            pool = []
            for tag in tags_tuple:
                if tag == PRODUCT_ROOT_TAG:
                    pool.append((0, 0))
                pool.extend(
                    (1, x) for x in lcols.tag_rows_in(tag, l_lo, l_hi)
                )
                pool.extend(
                    (2, y) for y in rcols.tag_rows_in(tag, r_lo, r_hi)
                )
    else:
        rank, anchor = positions[parent]
        if edge == PC:
            if rank == 0:
                pool = []
                if tags_set is None or lcols.tags[l_lo] in tags_set:
                    pool.append((1, l_lo))
                if tags_set is None or rcols.tags[r_lo] in tags_set:
                    pool.append((2, r_lo))
            else:
                side_cols = lcols if rank == 1 else rcols
                key = (idx, rank, anchor, id(side_cols))
                cached = None if memo is None else memo.get(key)
                if cached is not None:
                    pool = cached
                else:
                    child_rows = side_cols.children[anchor]
                    if tags_set is None:
                        pool = [(rank, c) for c in child_rows]
                    else:
                        tags_col = side_cols.tags
                        pool = [
                            (rank, c)
                            for c in child_rows
                            if tags_col[c] in tags_set
                        ]
                    if memo is not None:
                        memo[key] = pool
        elif rank == 0:
            # Anchor is the product root: its descendants are both whole
            # sides, left first (document order of the product tree).
            if tags_tuple is None:
                pool = itertools.chain(
                    ((1, x) for x in range(l_lo, l_hi)),
                    ((2, y) for y in range(r_lo, r_hi)),
                )
            else:
                left_key = (idx, 1, l_lo, id(lcols))
                left_part = None if memo is None else memo.get(left_key)
                if left_part is None:
                    if len(tags_tuple) == 1:
                        left_part = [
                            (1, x)
                            for x in lcols.tag_rows_in(
                                tags_tuple[0], l_lo, l_hi
                            )
                        ]
                    else:
                        left_part = [
                            (1, x)
                            for x in range(l_lo, l_hi)
                            if lcols.tags[x] in tags_set
                        ]
                    if memo is not None:
                        memo[left_key] = left_part
                right_key = (idx, 2, r_lo, id(rcols))
                right_part = None if memo is None else memo.get(right_key)
                if right_part is None:
                    if len(tags_tuple) == 1:
                        right_part = [
                            (2, y)
                            for y in rcols.tag_rows_in(
                                tags_tuple[0], r_lo, r_hi
                            )
                        ]
                    else:
                        right_part = [
                            (2, y)
                            for y in range(r_lo, r_hi)
                            if rcols.tags[y] in tags_set
                        ]
                    if memo is not None:
                        memo[right_key] = right_part
                if not right_part:
                    pool = left_part
                elif not left_part:
                    pool = right_part
                else:
                    pool = left_part + right_part
        else:
            side_cols = lcols if rank == 1 else rcols
            key = (idx, rank, anchor, id(side_cols))
            cached = None if memo is None else memo.get(key)
            if cached is not None:
                pool = cached
            else:
                end_anchor = side_cols.end[anchor]
                if tags_tuple is None:
                    pool = [
                        (rank, x) for x in range(anchor + 1, end_anchor)
                    ]
                elif len(tags_tuple) == 1:
                    pool = [
                        (rank, x)
                        for x in side_cols.tag_rows_in(
                            tags_tuple[0], anchor + 1, end_anchor
                        )
                    ]
                else:
                    tags_col = side_cols.tags
                    pool = [
                        (rank, x)
                        for x in range(anchor + 1, end_anchor)
                        if tags_col[x] in tags_set
                    ]
                if memo is not None:
                    memo[key] = pool
    next_idx = idx + 1
    for position in pool:
        positions[label] = position
        rank, row = position
        if rank == 0:
            binding[label] = _VIRTUAL_ROOT
        elif rank == 1:
            binding[label] = lcols.nodes[row]
        else:
            binding[label] = rcols.nodes[row]
        _product_scan(
            steps, next_idx, lcols, l_lo, l_hi, rcols, r_lo, r_hi,
            binding, positions, evaluator, emit, root_prune, memo,
        )


def _materialize_product(
    lcols: DocumentColumns, l_row: int, rcols: DocumentColumns, r_row: int
) -> XmlNode:
    """The full product tree of a passing pair, numbered like
    ``_paired_copy``'s output renumbered from zero (root pre 0, left
    subtree pre 1..L, right subtree pre L+1..L+R)."""
    left_size = lcols.end[l_row] - l_row
    right_size = rcols.end[r_row] - r_row
    root = XmlNode(PRODUCT_ROOT_TAG)
    root.pre = 0
    root.post = left_size + right_size
    root.depth = 0
    lcols.materialize(l_row, pre_base=1, post_base=0, depth_base=1, parent=root)
    rcols.materialize(
        r_row,
        pre_base=1 + left_size,
        post_base=left_size,
        depth_base=1,
        parent=root,
    )
    return root


def _product_top_key(
    lcols: DocumentColumns,
    l_row: int,
    rcols: DocumentColumns,
    r_row: int,
    rank: int,
    row: int,
) -> Tuple:
    """Canonical key of the witness a top position would materialise."""
    if rank == 1:
        return lcols.subtree_key(row)
    if rank == 2:
        return rcols.subtree_key(row)
    return (
        PRODUCT_ROOT_TAG,
        "",
        (),
        (lcols.subtree_key(l_row), rcols.subtree_key(r_row)),
    )


def _materialize_top(
    lcols: DocumentColumns,
    l_row: int,
    rcols: DocumentColumns,
    r_row: int,
    rank: int,
    row: int,
) -> XmlNode:
    if rank == 1:
        return lcols.materialize(row)
    if rank == 2:
        return rcols.materialize(row)
    return _materialize_product(lcols, l_row, rcols, r_row)


def _assemble_product_witness(
    lcols: DocumentColumns,
    l_row: int,
    rcols: DocumentColumns,
    r_row: int,
    positions: Dict[int, Tuple[int, int]],
    sl: Sequence[int],
) -> XmlNode:
    """The witness tree of one virtual-product embedding.

    Replays :func:`~repro.tax.embedding.assemble_forest` over ``(rank,
    row)`` positions instead of product-tree nodes: sorting positions
    rank-major *is* product document order (root, left subtree, right
    subtree), and strict ancestry is the root over everything plus the
    same-side interval test — so the assembled tree is node-for-node the
    one ``witness_tree`` builds from a materialised product.
    """
    selected: Set[Tuple[int, int]] = set(positions.values())
    for label in sl:
        position = positions.get(label)
        if position is None:
            continue
        rank, row = position
        if rank == 0:
            selected.update((1, x) for x in range(l_row, lcols.end[l_row]))
            selected.update((2, y) for y in range(r_row, rcols.end[r_row]))
        else:
            side = lcols if rank == 1 else rcols
            selected.update((rank, x) for x in range(row + 1, side.end[row]))

    def is_ancestor(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        a_rank, a_row = a
        if a_rank == 0:
            return b != a
        b_rank, b_row = b
        if a_rank != b_rank:
            return False
        side = lcols if a_rank == 1 else rcols
        return a_row < b_row < side.end[a_row]

    roots: List[XmlNode] = []
    stack: List[Tuple[int, int]] = []
    clones: Dict[Tuple[int, int], XmlNode] = {}
    for position in sorted(selected):
        while stack and not is_ancestor(stack[-1], position):
            stack.pop()
        rank, row = position
        if rank == 0:
            clone = XmlNode(PRODUCT_ROOT_TAG)
        else:
            node = (lcols if rank == 1 else rcols).nodes[row]
            clone = XmlNode(node.tag, node.text, node.attributes)
        clones[position] = clone
        if stack:
            clones[stack[-1]].append(clone)
        else:
            roots.append(clone)
        stack.append(position)
    assert len(roots) == 1, "witness assembly produced a forest"
    return roots[0].renumber()


def join_pairs_batched(
    left: Sequence[Tuple[DocumentColumns, int]],
    right: Sequence[Tuple[DocumentColumns, int]],
    pairs: Iterable[Tuple[int, int]],
    pattern: PatternTree,
    sl_labels: Iterable[int],
    context: ConditionContext = DEFAULT_CONTEXT,
    evaluator: Optional[ConditionEvaluator] = None,
    restrictions: Optional[TagRestrictions] = None,
    order: Optional[List] = None,
    steps: Optional[List[BatchStep]] = None,
) -> Tuple[List[XmlNode], int]:
    """Late-materialised join over candidate pairs.

    Equivalent to building the product tree of every pair (in the given
    pair order) and running ``selection`` over all of them at once —
    but no product tree is ever built: with the root in SL a product is
    materialised only for pairs whose witness survives dedupe, and
    otherwise each passing embedding's witness is assembled directly
    from its virtual positions.  Returns ``(results,
    pairs_materialized)``.
    """
    sl = list(sl_labels)
    root_label = pattern.root
    evaluator, restrictions, order, steps = prepare(
        pattern, context, evaluator, restrictions, order, steps
    )
    root_prune = _root_prune(steps)
    # The binding/position dicts, the pool memo and the emit closure are
    # shared across pairs — every label is rebound before an emit can
    # observe the dicts, and ``current`` carries the pair's sides and
    # indices to the closure.
    binding: Dict[int, XmlNode] = {}
    positions: Dict[int, Tuple[int, int]] = {}
    memo: Dict = {}
    current: List = [None, 0, None, 0, 0, 0]
    if root_label not in sl:
        # General witnesses (e.g. the paper's Figure 16(b) join keeps
        # only the two title subtrees): one witness per embedding,
        # assembled from positions, deduped at the end like
        # ``selection``'s general path.
        witnesses: List[XmlNode] = []
        contributing: Set[Tuple[int, int]] = set()

        def emit_witness() -> None:
            lcols, l_row, rcols, r_row, i, j = current
            witnesses.append(
                _assemble_product_witness(
                    lcols, l_row, rcols, r_row, positions, sl
                )
            )
            contributing.add((i, j))

        for i, j in pairs:
            lcols, l_row = left[i]
            rcols, r_row = right[j]
            current[0] = lcols
            current[1] = l_row
            current[2] = rcols
            current[3] = r_row
            current[4] = i
            current[5] = j
            _product_scan(
                steps, 0, lcols, l_row, lcols.end[l_row],
                rcols, r_row, rcols.end[r_row],
                binding, positions, evaluator, emit_witness, root_prune,
                memo,
            )
        return dedupe(witnesses), len(contributing)
    # One entry per distinct top position, in discovery order — the same
    # sequence the per-product ``tops`` dict would hold, with pair
    # indices standing in for the distinct object identities fresh
    # product copies would have had.
    tops: Dict[Tuple[int, int, int, int], None] = {}

    def emit() -> None:
        rank, row = positions[root_label]
        tops.setdefault((current[4], current[5], rank, row), None)

    for i, j in pairs:
        lcols, l_row = left[i]
        rcols, r_row = right[j]
        current[4] = i
        current[5] = j
        _product_scan(
            steps, 0, lcols, l_row, lcols.end[l_row],
            rcols, r_row, rcols.end[r_row],
            binding, positions, evaluator, emit, root_prune, memo,
        )
    seen: Set[Tuple] = set()
    out: List[XmlNode] = []
    materialized_pairs: Set[Tuple[int, int]] = set()
    for i, j, rank, row in tops:
        lcols, l_row = left[i]
        rcols, r_row = right[j]
        key = _product_top_key(lcols, l_row, rcols, r_row, rank, row)
        if key in seen:
            continue
        seen.add(key)
        materialized_pairs.add((i, j))
        out.append(_materialize_top(lcols, l_row, rcols, r_row, rank, row))
    return out, len(materialized_pairs)


__all__ = [
    "Entry",
    "prepare",
    "selection_batched",
    "projection_batched",
    "join_pairs_batched",
]
