"""Embeddings and witness trees (Section 2.1.1).

An embedding of a pattern tree P into a data tree is a total mapping from
pattern nodes to data nodes that preserves pc/ad structure and satisfies
the selection condition.  Enumeration is by backtracking in pattern
preorder, with candidate sets pruned through the tag restrictions the
condition implies (via :func:`repro.tax.conditions.required_tags`) and the
per-document tag index.

Each embedding induces a witness tree: the images of the pattern nodes,
re-assembled under the closest-ancestor relation, preserving document
order (Definition in Section 2.1.1); selection additionally inflates the
images of SL-listed pattern nodes to their full subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set

from ..xmldb.indexes import DocumentIndex
from ..xmldb.model import XmlNode, ancestor_of
from .conditions import Binding, ConditionContext, DEFAULT_CONTEXT, required_tags
from .pattern import AD, PC, PatternNode, PatternTree


@dataclass(slots=True)
class Embedding:
    """A satisfying total mapping from pattern labels to data nodes."""

    pattern: PatternTree
    binding: Dict[int, XmlNode]

    def image(self, label: int) -> XmlNode:
        return self.binding[label]

    def __repr__(self) -> str:
        body = ", ".join(f"#{label}->{node.tag}" for label, node in self.binding.items())
        return f"Embedding({body})"


def _tag_buckets(tree: XmlNode) -> Dict[str, List[XmlNode]]:
    """All subtree nodes bucketed by tag, each bucket in document order.

    One preorder pass shared by the root pool and the ad-edge probes —
    the same node sequences the tag-index path produced, without
    materializing a full :class:`DocumentIndex` (whose value index the
    embedder never used).
    """
    buckets: Dict[str, List[XmlNode]] = {}
    for node in tree.iter():
        bucket = buckets.get(node.tag)
        if bucket is None:
            buckets[node.tag] = [node]
        else:
            bucket.append(node)
    return buckets


def find_embeddings(
    pattern: PatternTree,
    tree: XmlNode,
    context: ConditionContext = DEFAULT_CONTEXT,
    index: Optional[DocumentIndex] = None,
    evaluator: Optional[Callable[[Binding], bool]] = None,
    restrictions: Optional[Mapping[int, Set[str]]] = None,
    order: Optional[Sequence[PatternNode]] = None,
) -> Iterator[Embedding]:
    """Enumerate all embeddings of ``pattern`` into ``tree``.

    ``index`` may be a prebuilt :class:`DocumentIndex` for the tree;
    without one, root candidates come from a direct preorder scan.
    ``evaluator`` may be a compiled form of ``pattern.condition`` (see
    :mod:`repro.tax.compile`) closed over ``context``, and
    ``restrictions`` its precomputed :func:`required_tags` — both are
    derived on the fly otherwise.  ``order`` may be the pattern's
    precomputed (validated) preorder; passing it lets a caller looping
    over many trees pay validation once.  The condition is evaluated
    once per complete structural match (candidate tag pruning makes the
    common conjunctive queries cheap before that point).
    """
    for binding in find_matches(
        pattern,
        tree,
        context,
        index=index,
        evaluator=evaluator,
        restrictions=restrictions,
        order=order,
    ):
        yield Embedding(pattern, dict(binding))


def find_matches(
    pattern: PatternTree,
    tree: XmlNode,
    context: ConditionContext = DEFAULT_CONTEXT,
    index: Optional[DocumentIndex] = None,
    evaluator: Optional[Callable[[Binding], bool]] = None,
    restrictions: Optional[Mapping[int, Set[str]]] = None,
    order: Optional[Sequence[PatternNode]] = None,
) -> Iterator[Binding]:
    """Like :func:`find_embeddings`, but yields the *live* binding dict.

    The same dict object is yielded for every match (and mutated between
    yields) — callers that keep a binding past one iteration must copy
    it.  Callers that only inspect one or two labels per match (the
    root-inflating selection fast path, projection's PL probes, the
    batched verifier's fallback entries) skip the per-match
    :class:`Embedding` + dict-copy allocation this way.
    """
    if order is None:
        pattern.validate()
        order = list(pattern.preorder())
    if restrictions is None:
        restrictions = required_tags(pattern.condition)
    binding: Dict[int, XmlNode] = {}
    if evaluator is None:
        condition, ctx = pattern.condition, context

        def evaluator(b: Binding, _c=condition, _ctx=ctx) -> bool:
            return _c.evaluate(b, _ctx)

    buckets: Optional[Dict[str, List[XmlNode]]] = None

    def tag_bucket(tag: str) -> List[XmlNode]:
        nonlocal buckets
        if buckets is None:
            buckets = _tag_buckets(tree)
        return buckets.get(tag, [])

    def candidates(pattern_node: PatternNode) -> Iterable[XmlNode]:
        tags = restrictions.get(pattern_node.label)
        if pattern_node.parent is None:
            if tags is None:
                return tree.iter()
            if index is not None:
                pool: Iterable[XmlNode] = []
                for tag in tags:
                    pool = list(pool) + index.tags.nodes(tag)
                return pool
            pool = []
            for tag in tags:
                pool.extend(tag_bucket(tag))
            return pool
        anchor = binding[pattern_node.parent]
        if pattern_node.edge == PC:
            pool = anchor.children
        else:
            if tags is not None and len(tags) == 1 and anchor is tree:
                # Descendants of the whole tree's root, one tag wanted:
                # the shared bucket pass answers this directly (document
                # order, minus the root itself) — no per-probe rescan.
                (tag,) = tags
                return [node for node in tag_bucket(tag) if node is not anchor]
            pool = anchor.descendants()
        if tags is None:
            return pool
        return (node for node in pool if node.tag in tags)

    def backtrack(position: int) -> Iterator[Binding]:
        if position == len(order):
            if evaluator(binding):
                yield binding
            return
        pattern_node = order[position]
        for candidate in candidates(pattern_node):
            binding[pattern_node.label] = candidate
            yield from backtrack(position + 1)
        binding.pop(pattern_node.label, None)

    yield from backtrack(0)


def find_embeddings_in_collection(
    pattern: PatternTree,
    trees: Sequence[XmlNode],
    context: ConditionContext = DEFAULT_CONTEXT,
) -> Iterator[Embedding]:
    """Embeddings across a collection; each embedding stays within one tree."""
    for tree in trees:
        yield from find_embeddings(pattern, tree, context)


# ---------------------------------------------------------------------------
# Witness-tree assembly
# ---------------------------------------------------------------------------


def assemble_forest(nodes: Iterable[XmlNode]) -> List[XmlNode]:
    """Copy a set of same-tree nodes into new trees under closest ancestors.

    The originals are arranged by document order; each selected node's
    parent in the output is its closest strict ancestor that was also
    selected (the witness-tree edge rule), and nodes with no selected
    ancestor become roots of separate output trees.
    """
    ordered = sorted(set(nodes), key=lambda node: node.pre)
    roots: List[XmlNode] = []
    stack: List[XmlNode] = []  # originals whose clones are open
    clones: Dict[int, XmlNode] = {}
    for node in ordered:
        while stack and not ancestor_of(stack[-1], node):
            stack.pop()
        clone = XmlNode(node.tag, node.text, node.attributes)
        clones[node.object_id] = clone
        if stack:
            clones[stack[-1].object_id].append(clone)
        else:
            roots.append(clone)
        stack.append(node)
    for root in roots:
        root.renumber()
    return roots


def witness_tree(
    embedding: Embedding, sl_labels: Iterable[int] = ()
) -> XmlNode:
    """The witness tree of one embedding.

    ``sl_labels`` is selection's SL list: the full subtree of each listed
    pattern node's image is included ("if a node v in SL appears in a
    witness tree, then all descendants of v will also be added").
    """
    selected: Set[XmlNode] = set(embedding.binding.values())
    for label in sl_labels:
        image = embedding.binding.get(label)
        if image is not None:
            selected.update(image.descendants())
    forest = assemble_forest(selected)
    # The pattern is a tree, so the root's image is an ancestor-or-self of
    # every other image and the forest always has exactly one tree.
    assert len(forest) == 1, "witness assembly produced a forest"
    return forest[0]
