"""Data-tree collection helpers shared by the TAX and TOSS operators.

A TAX "collection" is simply a list of :class:`~repro.xmldb.model.XmlNode`
roots.  These helpers implement the tree-identity notion of Section 5.1.2
("two data trees are equal iff there exists an isomorphism preserving
edges and order under which value atoms agree" — i.e. positional equality
of tag/text/attributes) and the set-semantics plumbing built on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..xmldb.model import XmlNode

Collection = Sequence[XmlNode]


def trees_equal(first: XmlNode, second: XmlNode) -> bool:
    """The paper's tree equality (order-preserving isomorphism + atoms)."""
    return first.structurally_equal(second)


def canonical_keys(collection: Collection) -> List[Tuple]:
    """Canonical key per tree; equal keys == equal trees."""
    return [tree.canonical_key() for tree in collection]


def dedupe(collection: Iterable[XmlNode]) -> List[XmlNode]:
    """Remove structural duplicates, keeping first occurrences in order."""
    seen: Dict[Tuple, XmlNode] = {}
    result: List[XmlNode] = []
    for tree in collection:
        key = tree.canonical_key()
        if key not in seen:
            seen[key] = tree
            result.append(tree)
    return result


def collection_nodes(collection: Collection) -> int:
    """Total node count across a collection."""
    return sum(tree.size() for tree in collection)


def copy_collection(collection: Collection) -> List[XmlNode]:
    """Deep-copy every tree (renumbered)."""
    return [tree.copy().renumber() for tree in collection]
