"""Pattern trees (Definition 2).

A pattern tree is a pair ``P = (T, F)`` where T is a tree whose nodes are
labelled by distinct integers and whose edges are labelled ``pc``
(parent-child) or ``ad`` (ancestor-descendant), and F is a selection
condition over the node labels.

The paper's Figure 3 example — find titles of 1999 inproceedings — builds
as::

    pattern = PatternTree()
    pattern.add_node(1)                      # the inproceedings element
    pattern.add_node(2, parent=1, edge="pc") # its title child
    pattern.add_node(3, parent=1, edge="pc") # its year child
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("year")),
        Comparison("=", NodeContent(3), Constant("1999")),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import PatternTreeError
from .conditions import Condition, TrueCondition

#: Edge kinds.
PC = "pc"
AD = "ad"
EdgeKind = str


@dataclass
class PatternNode:
    """One node of a pattern tree."""

    label: int
    parent: Optional[int] = None
    edge: EdgeKind = PC
    children: List[int] = field(default_factory=list)


class PatternTree:
    """A pattern tree ``(T, F)`` with integer-labelled nodes.

    Nodes must be added parent-first; the first node becomes the root.
    ``condition`` defaults to the always-true condition.
    """

    def __init__(self, condition: Optional[Condition] = None) -> None:
        self._nodes: Dict[int, PatternNode] = {}
        self._root: Optional[int] = None
        self.condition: Condition = condition if condition is not None else TrueCondition()

    # -- construction -----------------------------------------------------------

    def add_node(
        self,
        label: int,
        parent: Optional[int] = None,
        edge: EdgeKind = PC,
    ) -> PatternNode:
        """Add a node; the first added node is the root (no parent)."""
        if label in self._nodes:
            raise PatternTreeError(f"duplicate pattern node label {label}")
        if edge not in (PC, AD):
            raise PatternTreeError(f"edge kind must be 'pc' or 'ad', got {edge!r}")
        if parent is None:
            if self._root is not None:
                raise PatternTreeError(
                    "pattern tree already has a root; give parent= for other nodes"
                )
            self._root = label
        else:
            if parent not in self._nodes:
                raise PatternTreeError(
                    f"parent label {parent} must be added before child {label}"
                )
            self._nodes[parent].children.append(label)
        node = PatternNode(label, parent, edge)
        self._nodes[label] = node
        return node

    # -- access -------------------------------------------------------------------

    @property
    def root(self) -> int:
        if self._root is None:
            raise PatternTreeError("pattern tree is empty")
        return self._root

    def node(self, label: int) -> PatternNode:
        try:
            return self._nodes[label]
        except KeyError:
            raise PatternTreeError(f"no pattern node labelled {label}") from None

    def labels(self) -> List[int]:
        """All node labels in insertion (parent-first) order."""
        return list(self._nodes)

    def children(self, label: int) -> List[PatternNode]:
        return [self._nodes[child] for child in self.node(label).children]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, label: int) -> bool:
        return label in self._nodes

    def preorder(self) -> Iterator[PatternNode]:
        """Preorder walk from the root."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            label = stack.pop()
            node = self._nodes[label]
            yield node
            stack.extend(reversed(node.children))

    def validate(self) -> None:
        """Check the structural invariants of Definition 2."""
        if self._root is None:
            raise PatternTreeError("pattern tree is empty")
        reached = sum(1 for _ in self.preorder())
        if reached != len(self._nodes):
            raise PatternTreeError("pattern tree is not connected")

    def __repr__(self) -> str:
        return f"PatternTree({len(self)} nodes, condition={self.condition!r})"


def pattern_of(
    edges: List[Tuple[int, Optional[int], EdgeKind]],
    condition: Optional[Condition] = None,
) -> PatternTree:
    """Bulk constructor: ``[(label, parent_or_None, edge), ...]``, root first."""
    pattern = PatternTree(condition)
    for label, parent, edge in edges:
        pattern.add_node(label, parent, edge)
    return pattern
