"""A shared, thread-safe bounded LRU cache.

Both query-path caches — the database's compiled-XPath cache and the
executor's compiled-plan cache — used to be ad-hoc ``OrderedDict``
idioms with hand-rolled hit/miss fields.  Neither was safe to consult
from more than one thread, which the serving layer's admission path
does (the :class:`~repro.serving.server.QueryServer` may be driven from
multiple client threads while sharing one parent-side executor for
planning).  :class:`LruCache` is the one lock-protected implementation
both now use.

Hit, miss and eviction counts are published through
:data:`repro.obs.metrics.REGISTRY` under ``<metric_prefix>.hits`` /
``.misses`` / ``.evictions`` at the moment they happen, so the
observability surface sees cache behaviour without every call site
re-implementing the bookkeeping.  The raw counters also stay readable
on the cache itself (:attr:`hits`, :attr:`misses`, :attr:`evictions`)
for callers that need per-instance numbers with metrics disabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator, List, Optional

from .obs.metrics import REGISTRY as METRICS

#: Sentinel distinguishing "key absent" from a stored None.
_MISSING = object()


class LruCache:
    """A bounded least-recently-used cache guarded by one lock.

    Parameters
    ----------
    size:
        Maximum number of entries; 0 (or negative) disables storage —
        every :meth:`get` misses and :meth:`put` is a no-op, which keeps
        the disabled path behaviourally identical to the previous
        ``OrderedDict`` idiom.
    metric_prefix:
        When set, hit/miss/eviction counters are emitted through
        :data:`repro.obs.metrics.REGISTRY` as ``<prefix>.hits``,
        ``<prefix>.misses`` and ``<prefix>.evictions``.
    """

    __slots__ = (
        "size",
        "metric_prefix",
        "_lock",
        "_entries",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, size: int, metric_prefix: Optional[str] = None) -> None:
        self.size = size
        self.metric_prefix = metric_prefix
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (refreshing its recency), or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
        if self.metric_prefix is not None:
            METRICS.counter(
                f"{self.metric_prefix}.{'hits' if hit else 'misses'}"
            ).inc()
        return value if hit else default

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the least recently used past ``size``."""
        if self.size <= 0:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted and self.metric_prefix is not None:
            METRICS.counter(f"{self.metric_prefix}.evictions").inc(evicted)

    def clear(self) -> None:
        """Drop every entry (counters are left intact)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def keys(self) -> List[Hashable]:
        """Current keys, least recently used first (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching recency or the counters."""
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.keys())

    def __repr__(self) -> str:
        return (
            f"LruCache(size={self.size}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
