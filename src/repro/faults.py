"""Deterministic fault injection for the serving layer.

Production worker pools die in ways unit tests rarely exercise: a worker
is OOM-killed mid-query, hangs in native code, starts slowly after a
respawn, or hands back a truncated response.  This module makes every
one of those failures *injectable, deterministic and cheap*, so the
supervised pool's recovery machinery (:mod:`repro.serving.supervisor`)
can be driven through crash/hang/corruption scenarios by ordinary tests
and benchmarks — the chaos suite under ``tests/chaos/`` and
``benchmarks/bench_serving_faults.py`` are built entirely on it.

Determinism is the point.  A :class:`FaultPlan` is a pure value: whether
an injector fires for ``(kind, seq, attempt)`` is a function of the
plan's seed and those coordinates alone (a SHA-256 hash, not a shared
:mod:`random` state), so the *same plan makes the same decisions in
every process* — parent, forked worker, respawned worker — without any
cross-process coordination.  A killed task retried with ``attempt + 1``
re-rolls the dice at new coordinates, which is exactly how transient
faults behave.

Activation crosses the process boundary two ways, both honoured by the
worker main loop:

* **environment** — :func:`inject` publishes the plan under
  :data:`ENV_VAR`; workers forked/spawned while it is set pick it up
  (already-running workers keep their inherited environment);
* **task flags** — the supervised pool stamps each dispatched task with
  the plan spec (``task["faults"]``), which reaches live workers and
  takes precedence over the environment.

Injector kinds:

========================  ==================================================
:data:`KILL`              the worker SIGKILLs itself before executing the
                          task (an OOM kill: no cleanup, no goodbye)
:data:`HANG`              the worker sleeps ``seconds`` before executing
                          (a stuck native call; the parent-side hard
                          timeout must recover)
:data:`CORRUPT`           the task executes but its response is replaced
                          with garbage (a truncated/garbled transport)
:data:`SLOW_START`        worker initialization sleeps ``seconds``
:data:`TRANSPORT`         worker initialization raises
                          :class:`~repro.errors.SnapshotTransportError`
                          (a transient snapshot-shipping failure; the
                          supervisor respawns with backoff and the next
                          spawn re-rolls)
========================  ==================================================

Task-scoped kinds key on ``(task seq, attempt)``; spawn-scoped kinds
(:data:`SLOW_START`, :data:`TRANSPORT`) key on ``(worker id, spawn
count)``, so a respawned worker makes a fresh decision.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from .errors import ServingError, SnapshotTransportError

#: Environment variable carrying a JSON :meth:`FaultPlan.to_spec` payload.
ENV_VAR = "REPRO_FAULTS"

#: Injector kinds (see the module docstring for semantics).
KILL = "kill"
HANG = "hang"
CORRUPT = "corrupt"
SLOW_START = "slow_start"
TRANSPORT = "transport"
KINDS = (KILL, HANG, CORRUPT, SLOW_START, TRANSPORT)

#: Marker key of a deliberately corrupted worker response.
CORRUPT_KEY = "__corrupt__"


def _fraction(seed: int, kind: str, seq: int, attempt: int) -> float:
    """A uniform [0, 1) draw fully determined by its coordinates."""
    digest = hashlib.sha256(
        f"{seed}:{kind}:{seq}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultRule:
    """One injector: when (and how hard) a fault kind fires.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    rate:
        Probability the injector fires for a given ``(seq, attempt)``
        coordinate (deterministic per coordinate — see
        :func:`_fraction`).
    tasks:
        Explicit sequence numbers that always fire (subject to
        ``attempts``); the precise control the chaos tests use.
    attempts:
        Attempt numbers the rule applies to.  The default ``(0,)``
        faults only the first try, so a retry always recovers — the
        transient-fault shape.  ``None`` applies to every attempt (a
        permanent fault: retries exhaust, quarantine/degradation kicks
        in).
    seconds:
        Sleep duration for :data:`HANG` / :data:`SLOW_START`.
    """

    kind: str
    rate: float = 0.0
    tasks: Tuple[int, ...] = ()
    attempts: Optional[Tuple[int, ...]] = (0,)
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServingError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ServingError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.seconds < 0:
            raise ServingError(f"fault seconds must be >= 0, got {self.seconds}")
        object.__setattr__(self, "tasks", tuple(self.tasks))
        if self.attempts is not None:
            object.__setattr__(self, "attempts", tuple(self.attempts))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        seen = set()
        for rule in self.rules:
            if rule.kind in seen:
                raise ServingError(f"duplicate fault rule for kind {rule.kind!r}")
            seen.add(rule.kind)

    def rule(self, kind: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        return None

    def should_fire(self, kind: str, seq: int, attempt: int) -> bool:
        """Whether ``kind`` fires at ``(seq, attempt)`` — a pure function
        of the plan, identical in every process."""
        rule = self.rule(kind)
        if rule is None:
            return False
        if rule.attempts is not None and attempt not in rule.attempts:
            return False
        if seq in rule.tasks:
            return True
        return rule.rate > 0.0 and _fraction(self.seed, kind, seq, attempt) < rule.rate

    # -- serialization ------------------------------------------------------

    def to_spec(self) -> Dict[str, Any]:
        """A JSON-ready dict (the task-flag / env-var transport form)."""
        return {
            "seed": self.seed,
            "rules": [
                {
                    "kind": rule.kind,
                    "rate": rule.rate,
                    "tasks": list(rule.tasks),
                    "attempts": (
                        None if rule.attempts is None else list(rule.attempts)
                    ),
                    "seconds": rule.seconds,
                }
                for rule in self.rules
            ],
        }

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "FaultPlan":
        rules = []
        for entry in spec.get("rules", ()):
            attempts = entry.get("attempts", (0,))
            rules.append(
                FaultRule(
                    kind=entry["kind"],
                    rate=float(entry.get("rate", 0.0)),
                    tasks=tuple(entry.get("tasks", ())),
                    attempts=None if attempts is None else tuple(attempts),
                    seconds=float(entry.get("seconds", 30.0)),
                )
            )
        return cls(seed=int(spec.get("seed", 0)), rules=tuple(rules))


def plan_from_env(environ: Mapping[str, str] = os.environ) -> Optional[FaultPlan]:
    """The plan published in the environment, or None.

    A malformed payload is treated as no plan at all: fault injection is
    a test harness and must never be able to take serving down by
    itself.
    """
    text = environ.get(ENV_VAR)
    if not text:
        return None
    try:
        return FaultPlan.from_spec(json.loads(text))
    except (ValueError, TypeError, KeyError, ServingError):
        return None


def plan_from_task(task: Mapping[str, Any]) -> Optional[FaultPlan]:
    """The plan a dispatched task carries (task flag, else environment)."""
    spec = task.get("faults")
    if spec:
        try:
            return FaultPlan.from_spec(spec)
        except (ValueError, TypeError, KeyError, ServingError):
            return None
    return plan_from_env()


class inject:
    """Context manager publishing a plan to :data:`ENV_VAR`.

    Workers forked while the plan is published inherit it; the
    supervised pool additionally stamps dispatched tasks, which reaches
    workers that forked earlier.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._previous: Optional[str] = None

    def __enter__(self) -> FaultPlan:
        self._previous = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = json.dumps(self.plan.to_spec())
        return self.plan

    def __exit__(self, *exc_info) -> None:
        if self._previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._previous


# -- worker-side application hooks ------------------------------------------


def apply_task_faults(
    plan: Optional[FaultPlan], seq: int, attempt: int
) -> bool:
    """Fire pre-execution injectors for one task; runs in the worker.

    :data:`KILL` SIGKILLs the worker (never returns); :data:`HANG`
    sleeps.  Returns True when the task's *response* should be corrupted
    after execution (:data:`CORRUPT`).
    """
    if plan is None:
        return False
    if plan.should_fire(KILL, seq, attempt):
        os.kill(os.getpid(), signal.SIGKILL)
    if plan.should_fire(HANG, seq, attempt):
        time.sleep(plan.rule(HANG).seconds)
    return plan.should_fire(CORRUPT, seq, attempt)


def apply_spawn_faults(
    plan: Optional[FaultPlan], worker_id: int, spawn: int
) -> None:
    """Fire worker-initialization injectors; runs in the worker.

    :data:`SLOW_START` sleeps; :data:`TRANSPORT` raises
    :class:`~repro.errors.SnapshotTransportError`, which the supervisor
    treats as a transient spawn failure (respawn with backoff; the next
    spawn count re-rolls the decision).
    """
    if plan is None:
        return
    if plan.should_fire(SLOW_START, worker_id, spawn):
        time.sleep(plan.rule(SLOW_START).seconds)
    if plan.should_fire(TRANSPORT, worker_id, spawn):
        raise SnapshotTransportError(
            f"injected snapshot transport corruption "
            f"(worker {worker_id}, spawn {spawn})"
        )


def corrupt_response() -> Dict[str, Any]:
    """The garbage a :data:`CORRUPT` injection returns instead of the
    real outcome — recognizably malformed (no ``report``, no
    ``failure``), the way a truncated pickle presents to the parent."""
    return {CORRUPT_KEY: True}
