"""Opt-in sampling profiler: wall-time by executor phase.

``cProfile``/``sys.setprofile`` instrument every call and distort the
fast paths they are meant to explain; ``SIGPROF`` timers are POSIX-only
and fight any other signal user.  This sampler does neither: a daemon
thread wakes at a configurable rate, reads the *target* thread's frame
stack out of :func:`sys._current_frames`, and increments one counter
per ``(phase, stack)`` pair.  The profiled thread executes zero extra
instructions; total overhead is the GIL time the sampler thread steals,
which at the default ~97 Hz measures under 2% on the fig-16 workloads
(the benchmark suite gates this — see ``benchmarks/check_regression``).

Phase attribution piggybacks on the tracer: ``repro.obs.trace`` keeps
its active-tracer stack in a module global precisely so this thread can
peek at the innermost open span ("verify", "scan.columnar", ...) of
whatever the main thread is doing.  A sample outside any span lands in
``(untraced)``.

The sampling rate defaults to a prime (97 Hz, not 100) so the clock
cannot phase-lock with per-second work and systematically miss or
double-count a stage.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from . import trace as _trace

__all__ = ["SamplingProfiler", "DEFAULT_HZ"]

DEFAULT_HZ = 97.0

IDLE_PHASE = "(untraced)"


def _format_frame(frame: Any) -> str:
    code = frame.f_code
    filename = code.co_filename
    slash = filename.rfind("/")
    if slash >= 0:
        filename = filename[slash + 1 :]
    if filename.endswith(".py"):
        filename = filename[:-3]
    return f"{filename}.{code.co_name}"


def _current_phase() -> str:
    """The innermost open span name on the active tracer, if any.

    Reads shared state without a lock — both stacks are append/pop-only
    lists mutated under the GIL, so the worst case is a one-sample
    misattribution, which sampling already tolerates by design.
    """
    try:
        active = _trace._ACTIVE
        tracer = active[-1] if active else None
        if tracer is None:
            return IDLE_PHASE
        stack = tracer._stack
        return stack[-1].name if stack else IDLE_PHASE
    except (IndexError, AttributeError):
        return IDLE_PHASE


class SamplingProfiler:
    """Samples one thread's stack at ``hz`` until stopped.

    Usage::

        profiler = SamplingProfiler(hz=97)
        with profiler:
            run_workload()
        for row in profiler.aggregate(top=10):
            print(row["phase"], row["stack"], row["fraction"])

    ``target_thread_id`` defaults to the thread that calls
    :meth:`start` — normally the request-serving thread.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_depth: int = 32,
        target_thread_id: Optional[int] = None,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self.max_depth = max_depth
        self._target_thread_id = target_thread_id
        self._samples: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._total = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._elapsed = 0.0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        if self._target_thread_id is None:
            self._target_thread_id = threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the sampler thread ------------------------------------------------

    def _run(self) -> None:
        target = self._target_thread_id
        interval = self.interval
        while not self._stop.wait(interval):
            frame = sys._current_frames().get(target)
            if frame is None:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_format_frame(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()  # flame convention: root first, leaf last
            key = (_current_phase(), tuple(stack))
            with self._lock:
                self._samples[key] = self._samples.get(key, 0) + 1
                self._total += 1

    # -- reads -------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        with self._lock:
            return self._total

    def elapsed_seconds(self) -> float:
        elapsed = self._elapsed
        if self._started_at is not None:
            elapsed += time.perf_counter() - self._started_at
        return elapsed

    def phase_seconds(self) -> Dict[str, float]:
        """Estimated wall seconds per phase: samples × sampling interval."""
        with self._lock:
            totals: Dict[str, int] = {}
            for (phase, _stack), count in self._samples.items():
                totals[phase] = totals.get(phase, 0) + count
        return {
            phase: round(count * self.interval, 6)
            for phase, count in sorted(totals.items(), key=lambda kv: -kv[1])
        }

    def aggregate(self, top: Optional[int] = 20) -> List[Dict[str, Any]]:
        """Flame-style rows sorted by sample count.

        Each row: ``{"phase", "stack" (";"-joined root→leaf),
        "samples", "fraction"}``.
        """
        with self._lock:
            items = sorted(self._samples.items(), key=lambda kv: -kv[1])
            total = self._total
        if top is not None:
            items = items[:top]
        return [
            {
                "phase": phase,
                "stack": ";".join(stack),
                "samples": count,
                "fraction": round(count / total, 4) if total else 0.0,
            }
            for (phase, stack), count in items
        ]

    def take_exemplar(self, top: int = 10) -> Dict[str, Any]:
        """Aggregate-and-drain: the profile accumulated since the last
        exemplar, ready to attach to a slow-request trace.

        Draining keys each exemplar to *its* request's samples rather
        than the whole process history, so successive slow queries do
        not blur into one another.
        """
        with self._lock:
            items = sorted(self._samples.items(), key=lambda kv: -kv[1])
            total = self._total
            self._samples = {}
            self._total = 0
        phases: Dict[str, int] = {}
        for (phase, _stack), count in items:
            phases[phase] = phases.get(phase, 0) + count
        return {
            "hz": self.hz,
            "samples": total,
            "phase_seconds": {
                phase: round(count * self.interval, 6)
                for phase, count in sorted(phases.items(), key=lambda kv: -kv[1])
            },
            "hotspots": [
                {
                    "phase": phase,
                    "stack": ";".join(stack),
                    "samples": count,
                }
                for (phase, stack), count in items[:top]
            ],
        }
