"""Machine-readable telemetry export: Prometheus text and JSON.

Everything the registry and the rolling windows know, in two forms a
fleet can consume:

* :func:`render_prometheus` — Prometheus text exposition (version
  0.0.4): counters get the ``_total`` suffix, histograms expand to
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``, and
  rolling-window statistics become labelled gauges
  (``{namespace}_window_qps{class="selection",window="10s"}``).  Metric
  names are sanitised (``executor.query_seconds`` →
  ``toss_executor_query_seconds``) since Prometheus forbids dots.
* :func:`render_json` — the same payload as one canonical JSON object,
  for anything that is not a Prometheus scraper.

:func:`parse_prometheus` is a minimal exposition-format reader used by
the round-trip tests (render → parse → every sample survives) and by
``db obs export`` consumers that want to check output without a real
scraper.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .window import STANDARD_WINDOWS

__all__ = [
    "DEFAULT_NAMESPACE",
    "metric_name",
    "render_prometheus",
    "render_json",
    "parse_prometheus",
    "format_status_line",
]

DEFAULT_NAMESPACE = "toss"

#: JSON export schema version.
JSON_FORMAT = 1

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_CLEAN = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, namespace: str = DEFAULT_NAMESPACE) -> str:
    """``executor.query_seconds`` → ``toss_executor_query_seconds``."""
    cleaned = _NAME_CLEAN.sub("_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return f"{namespace}_{cleaned}" if namespace else cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(pairs.items())
    )
    return "{" + inner + "}"


def _number(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{float(value):.10g}"


def render_prometheus(
    metrics_snapshot: Mapping[str, Mapping[str, Any]],
    window_stats: Optional[Mapping[str, Mapping[int, Mapping[str, Any]]]] = None,
    namespace: str = DEFAULT_NAMESPACE,
) -> str:
    """Prometheus text exposition of a metrics snapshot (the
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` shape) plus,
    optionally, :meth:`repro.obs.window.WindowRegistry.multi_stats`
    rolling-window statistics."""
    lines: List[str] = []
    for name in sorted(metrics_snapshot):
        entry = metrics_snapshot[name]
        kind = entry.get("type")
        if kind == "counter":
            flat = metric_name(name, namespace) + "_total"
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_number(entry.get('value', 0))}")
        elif kind == "gauge":
            flat = metric_name(name, namespace)
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_number(entry.get('value', 0))}")
        elif kind == "histogram":
            flat = metric_name(name, namespace)
            lines.append(f"# TYPE {flat} histogram")
            bounds = list(entry.get("bounds", ()))
            counts = list(entry.get("counts", ()))
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                lines.append(
                    f'{flat}_bucket{{le="{_number(bound)}"}} {cumulative}'
                )
            cumulative += sum(counts[len(bounds) :])
            lines.append(f'{flat}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{flat}_sum {_number(entry.get('sum', 0.0))}")
            lines.append(f"{flat}_count {_number(entry.get('count', 0))}")
    if window_stats:
        lines.extend(_render_window_gauges(window_stats, namespace))
    return "\n".join(lines) + "\n" if lines else ""


_WINDOW_FIELDS = (
    ("requests", "count"),
    ("errors", "errors"),
    ("qps", "qps"),
    ("error_rate", "error_rate"),
    ("p50_seconds", "p50"),
    ("p95_seconds", "p95"),
    ("p99_seconds", "p99"),
    ("slo_burn", "slo_burn"),
)


def _render_window_gauges(
    window_stats: Mapping[str, Mapping[int, Mapping[str, Any]]],
    namespace: str,
) -> List[str]:
    lines: List[str] = []
    for suffix, field in _WINDOW_FIELDS:
        flat = metric_name(f"window.{suffix}", namespace)
        series: List[str] = []
        for query_class in sorted(window_stats):
            per_window = window_stats[query_class]
            for size in sorted(per_window):
                stats = per_window[size]
                labels = _labels({"class": query_class, "window": f"{size}s"})
                series.append(f"{flat}{labels} {_number(stats.get(field, 0))}")
        if series:
            lines.append(f"# TYPE {flat} gauge")
            lines.extend(series)
    return lines


def render_json(
    metrics_snapshot: Mapping[str, Mapping[str, Any]],
    window_stats: Optional[Mapping[str, Mapping[int, Mapping[str, Any]]]] = None,
    window_snapshot: Optional[Mapping[str, Any]] = None,
) -> str:
    """One canonical JSON document: cumulative metrics, rolling-window
    statistics, and (optionally) the raw window slots for re-merging."""
    payload: Dict[str, Any] = {
        "format": JSON_FORMAT,
        "metrics": dict(metrics_snapshot),
    }
    if window_stats is not None:
        payload["windows"] = {
            query_class: {str(size): dict(stats) for size, stats in per.items()}
            for query_class, per in window_stats.items()
        }
    if window_snapshot is not None:
        payload["window_slots"] = window_snapshot
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into ``{name: {"type": ...,
    "samples": [(labels dict, value), ...]}}``.

    Minimal by design — enough for round-trip tests and smoke checks,
    not a full scraper.  Unparseable lines raise ``ValueError`` so a
    malformed exporter cannot pass silently.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for key, value in _LABEL_PAIR.findall(match.group("labels")):
                labels[key] = (
                    value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        family = families.setdefault(
            name, {"type": types.get(name, "untyped"), "samples": []}
        )
        family["samples"].append((labels, value))
    # bucket/sum/count series belong to their histogram family
    for name, declared in types.items():
        if declared != "histogram":
            continue
        for suffix in ("_bucket", "_sum", "_count"):
            child = name + suffix
            if child in families and families[child]["type"] == "untyped":
                families[child]["type"] = "histogram"
    return families


def format_status_line(
    window_stats: Mapping[str, Mapping[int, Mapping[str, Any]]],
    window: int = 10,
    windows: Iterable[int] = STANDARD_WINDOWS,
) -> str:
    """One terminal status line from :meth:`multi_stats` output.

    Example::

        [10s] selection qps=12.0 p50=3ms p95=11ms p99=14ms err=0.0% burn=0.0 | join qps=0.4 ...
    """

    def _ms(seconds: float) -> str:
        if seconds >= 1.0:
            return f"{seconds:.2f}s"
        return f"{seconds * 1000.0:.0f}ms"

    parts: List[str] = []
    for query_class in sorted(window_stats):
        per_window = window_stats[query_class]
        stats = per_window.get(window)
        if stats is None and per_window:
            stats = per_window[sorted(per_window)[0]]
        if not stats or not stats.get("count"):
            continue
        parts.append(
            f"{query_class} qps={stats['qps']:.1f}"
            f" p50={_ms(stats['p50'])}"
            f" p95={_ms(stats['p95'])}"
            f" p99={_ms(stats['p99'])}"
            f" err={stats['error_rate'] * 100.0:.1f}%"
            f" burn={stats['slo_burn']:.1f}"
        )
    if not parts:
        return f"[{window}s] (no traffic)"
    return f"[{window}s] " + " | ".join(parts)
