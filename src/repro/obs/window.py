"""Rolling per-second telemetry windows.

The cumulative counters in :mod:`repro.obs.metrics` answer "how much
since process start"; a serving tier needs "how fast *right now*".
This module keeps one ring of per-second slots per query class:

* each slot is one wall-clock second (keyed by its integer epoch) and
  holds a request count, an error count, a latency sum, and a
  log-bucketed latency histogram;
* :meth:`RollingWindow.observe` touches exactly one slot — a dict
  lookup, an epoch check, a handful of integer adds under one
  uncontended lock — so the hot path stays cheap enough to run on
  every query;
* :meth:`WindowRegistry.stats` folds the last N slots into streaming
  p50/p95/p99, QPS, error rate, and SLO burn over 1s/10s/60s windows;
* snapshots are plain lists keyed by absolute epoch seconds, so
  :func:`merge_window_snapshots` is associative and order-independent
  — worker and partition snapshots fold into the parent exactly like
  ``METRICS.absorb`` folds counter deltas.

Latency buckets are powers of two from 0.5 ms to ~262 s (upper-bound
semantics, like Prometheus ``le``): coarse enough that a slot is ~20
integers, fine enough that p99 interpolation stays honest at serving
latencies.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "LATENCY_BUCKET_BOUNDS",
    "DEFAULT_HORIZON_SECONDS",
    "STANDARD_WINDOWS",
    "SloPolicy",
    "DEFAULT_SLO",
    "RollingWindow",
    "WindowRegistry",
    "merge_window_snapshots",
    "WINDOWS",
]

#: Log-spaced latency bucket upper bounds (seconds): 0.5 ms × 2^i.
LATENCY_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    0.0005 * (2.0**i) for i in range(20)
)

#: How many whole seconds of history a ring retains.  One extra slot
#: beyond the largest supported window covers the current (partial)
#: second without evicting the oldest full one.
DEFAULT_HORIZON_SECONDS = 60

#: The window sizes ``stats`` reports by default.
STANDARD_WINDOWS: Tuple[int, ...] = (1, 10, 60)

#: Snapshot schema version (bump on layout change).
SNAPSHOT_FORMAT = 1


@dataclass(frozen=True)
class SloPolicy:
    """What "good" means for a query class.

    A request is *bad* when it errors or exceeds ``latency_seconds``;
    ``burn rate`` is the bad fraction divided by ``error_budget`` — the
    Google-SRE convention where 1.0 means burning budget exactly at the
    sustainable rate and anything above is paging territory.
    """

    latency_seconds: float = 0.5
    error_budget: float = 0.01


DEFAULT_SLO = SloPolicy()


class _Slot:
    """One second's worth of observations for one query class."""

    __slots__ = ("epoch", "count", "errors", "total_seconds", "buckets")

    def __init__(self, bucket_count: int) -> None:
        self.epoch = -1
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.buckets = [0] * bucket_count

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.count = 0
        self.errors = 0
        self.total_seconds = 0.0
        buckets = self.buckets
        for index in range(len(buckets)):
            buckets[index] = 0


def _bucket_index(seconds: float, bounds: Tuple[float, ...]) -> int:
    for index, bound in enumerate(bounds):
        if seconds <= bound:
            return index
    return len(bounds)  # overflow (+Inf) bucket


class RollingWindow:
    """A ring of per-second slots for one query class.

    The ring holds ``horizon + 1`` slots addressed by ``epoch %
    capacity``; a slot whose stored epoch differs from the current one
    is stale and is reset in place on first touch.  All methods take an
    optional ``now`` (epoch seconds) so tests are deterministic.
    """

    def __init__(
        self,
        horizon: int = DEFAULT_HORIZON_SECONDS,
        bounds: Tuple[float, ...] = LATENCY_BUCKET_BOUNDS,
    ) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self.bounds = tuple(bounds)
        self._capacity = horizon + 1
        self._bucket_count = len(self.bounds) + 1
        self._slots = [_Slot(self._bucket_count) for _ in range(self._capacity)]
        self._lock = threading.Lock()

    # -- writes ------------------------------------------------------------

    def observe(
        self, seconds: float, error: bool = False, now: Optional[float] = None
    ) -> None:
        epoch = int(now if now is not None else time.time())
        index = _bucket_index(seconds, self.bounds)
        with self._lock:
            slot = self._slots[epoch % self._capacity]
            if slot.epoch != epoch:
                slot.reset(epoch)
            slot.count += 1
            if error:
                slot.errors += 1
            slot.total_seconds += seconds
            slot.buckets[index] += 1

    def reset(self) -> None:
        with self._lock:
            for slot in self._slots:
                slot.epoch = -1

    # -- snapshots ---------------------------------------------------------

    def snapshot(
        self, now: Optional[float] = None, reset: bool = False
    ) -> List[List[Any]]:
        """Live slots as ``[epoch, count, errors, total_seconds,
        [bucket counts]]`` rows, oldest first.

        ``reset=True`` additionally clears the ring — the worker-side
        delta convention (snapshot-and-reset, ship the delta home).
        """
        floor = int(now if now is not None else time.time()) - self._capacity
        rows: List[List[Any]] = []
        with self._lock:
            for slot in self._slots:
                if slot.epoch > floor and slot.count:
                    rows.append(
                        [
                            slot.epoch,
                            slot.count,
                            slot.errors,
                            slot.total_seconds,
                            list(slot.buckets),
                        ]
                    )
                if reset:
                    slot.epoch = -1
        rows.sort(key=lambda row: row[0])
        return rows

    def absorb_rows(
        self, rows: Iterable[Iterable[Any]], now: Optional[float] = None
    ) -> None:
        """Fold snapshot rows into the live ring (additive per epoch).

        Rows older than the horizon are dropped — they fell out of every
        window this ring can answer for.  Bucket lists shorter or longer
        than ours (a snapshot from a differently-configured ring) clip
        into the overflow bucket rather than erroring.
        """
        current = int(now if now is not None else time.time())
        floor = current - self._capacity
        with self._lock:
            for row in rows:
                epoch, count, errors, total_seconds, buckets = (
                    int(row[0]),
                    int(row[1]),
                    int(row[2]),
                    float(row[3]),
                    list(row[4]),
                )
                if epoch <= floor or epoch > current:
                    continue
                slot = self._slots[epoch % self._capacity]
                if slot.epoch != epoch:
                    slot.reset(epoch)
                slot.count += count
                slot.errors += errors
                slot.total_seconds += total_seconds
                mine = slot.buckets
                for index, value in enumerate(buckets):
                    mine[min(index, self._bucket_count - 1)] += int(value)

    # -- reads -------------------------------------------------------------

    def stats(
        self,
        window: int = 10,
        now: Optional[float] = None,
        slo: SloPolicy = DEFAULT_SLO,
    ) -> Dict[str, Any]:
        """Aggregate the last ``window`` seconds (including the current,
        possibly partial, one) into streaming statistics."""
        if not 1 <= window <= self.horizon:
            raise ValueError(
                f"window must be in [1, {self.horizon}], got {window}"
            )
        current = int(now if now is not None else time.time())
        floor = current - window
        count = errors = 0
        total_seconds = 0.0
        buckets = [0] * self._bucket_count
        with self._lock:
            for slot in self._slots:
                if floor < slot.epoch <= current and slot.count:
                    count += slot.count
                    errors += slot.errors
                    total_seconds += slot.total_seconds
                    for index, value in enumerate(slot.buckets):
                        buckets[index] += value
        slow = count - self._count_at_or_under(buckets, slo.latency_seconds)
        bad = min(count, errors + max(0, slow))
        bad_fraction = (bad / count) if count else 0.0
        return {
            "window_seconds": window,
            "count": count,
            "errors": errors,
            "qps": count / window,
            "error_rate": (errors / count) if count else 0.0,
            "mean_seconds": (total_seconds / count) if count else 0.0,
            "p50": self._quantile(buckets, count, 0.50),
            "p95": self._quantile(buckets, count, 0.95),
            "p99": self._quantile(buckets, count, 0.99),
            "slo_burn": bad_fraction / slo.error_budget if slo.error_budget else 0.0,
        }

    def _count_at_or_under(self, buckets: List[int], bound: float) -> int:
        total = 0
        for index, value in enumerate(buckets):
            if index < len(self.bounds) and self.bounds[index] <= bound:
                total += value
        return total

    def _quantile(self, buckets: List[int], count: int, q: float) -> float:
        """Histogram quantile: linear interpolation inside the bucket the
        rank lands in (Prometheus ``histogram_quantile`` convention)."""
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for index, value in enumerate(buckets):
            if value == 0:
                continue
            previous = cumulative
            cumulative += value
            if cumulative >= rank:
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1] * 2.0
                )
                lower = self.bounds[index - 1] if index > 0 else 0.0
                fraction = (rank - previous) / value
                return lower + (upper - lower) * fraction
        return self.bounds[-1] * 2.0


class WindowRegistry:
    """Per-query-class rolling windows with registry-level snapshot/merge.

    Mirrors the :class:`~repro.obs.metrics.MetricsRegistry` shape:
    module-level singleton (:data:`WINDOWS`), ``enabled`` flag making
    the disabled path a cheap early return, ``snapshot``/``absorb`` for
    worker-delta folding, ``reset`` for forked workers.
    """

    def __init__(self, horizon: int = DEFAULT_HORIZON_SECONDS, enabled: bool = True):
        self.horizon = horizon
        self.enabled = enabled
        self._windows: Dict[str, RollingWindow] = {}
        self._slo: Dict[str, SloPolicy] = {}
        self._lock = threading.Lock()

    def window(self, query_class: str) -> RollingWindow:
        with self._lock:
            window = self._windows.get(query_class)
            if window is None:
                window = self._windows[query_class] = RollingWindow(self.horizon)
            return window

    def set_slo(self, query_class: str, policy: SloPolicy) -> None:
        self._slo[query_class] = policy

    def observe(
        self,
        query_class: str,
        seconds: float,
        error: bool = False,
        now: Optional[float] = None,
    ) -> None:
        if not self.enabled:
            return
        self.window(query_class).observe(seconds, error=error, now=now)

    def reset(self) -> None:
        with self._lock:
            self._windows.clear()

    def snapshot(
        self, now: Optional[float] = None, reset: bool = False
    ) -> Dict[str, Any]:
        classes: Dict[str, List[List[Any]]] = {}
        with self._lock:
            windows = dict(self._windows)
        for name, window in sorted(windows.items()):
            rows = window.snapshot(now=now, reset=reset)
            if rows:
                classes[name] = rows
        return {
            "format": SNAPSHOT_FORMAT,
            "horizon": self.horizon,
            "classes": classes,
        }

    def absorb(
        self, snapshot: Optional[Mapping[str, Any]], now: Optional[float] = None
    ) -> None:
        if not self.enabled or not snapshot:
            return
        for name, rows in snapshot.get("classes", {}).items():
            self.window(name).absorb_rows(rows, now=now)

    def stats(
        self,
        window: int = 10,
        now: Optional[float] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """``{query class: stats dict}`` over one window size."""
        with self._lock:
            windows = dict(self._windows)
        return {
            name: ring.stats(
                window=window, now=now, slo=self._slo.get(name, DEFAULT_SLO)
            )
            for name, ring in sorted(windows.items())
        }

    def multi_stats(
        self,
        windows: Iterable[int] = STANDARD_WINDOWS,
        now: Optional[float] = None,
    ) -> Dict[str, Dict[int, Dict[str, Any]]]:
        """``{query class: {window size: stats}}`` — the 1s/10s/60s view."""
        anchored = now if now is not None else time.time()
        result: Dict[str, Dict[int, Dict[str, Any]]] = {}
        for size in windows:
            for name, stats in self.stats(window=size, now=anchored).items():
                result.setdefault(name, {})[size] = stats
        return result


def merge_window_snapshots(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> Dict[str, Any]:
    """Combine two registry snapshots additively.

    Slots are keyed by absolute epoch second, so merging is a per-key
    sum: associative, commutative, and order-independent — the property
    the hypothesis suite pins down.  Inputs are not mutated.
    """
    merged: Dict[str, Dict[int, List[Any]]] = {}
    for snapshot in (left, right):
        for name, rows in snapshot.get("classes", {}).items():
            slots = merged.setdefault(name, {})
            for row in rows:
                epoch = int(row[0])
                existing = slots.get(epoch)
                if existing is None:
                    slots[epoch] = [
                        epoch,
                        int(row[1]),
                        int(row[2]),
                        float(row[3]),
                        list(row[4]),
                    ]
                else:
                    existing[1] += int(row[1])
                    existing[2] += int(row[2])
                    existing[3] += float(row[3])
                    buckets = existing[4]
                    for index, value in enumerate(row[4]):
                        if index < len(buckets):
                            buckets[index] += int(value)
                        else:
                            buckets.append(int(value))
    return {
        "format": SNAPSHOT_FORMAT,
        "horizon": max(
            int(left.get("horizon", DEFAULT_HORIZON_SECONDS)),
            int(right.get("horizon", DEFAULT_HORIZON_SECONDS)),
        ),
        "classes": {
            name: [slots[epoch] for epoch in sorted(slots)]
            for name, slots in sorted(merged.items())
            if slots
        },
    }


#: Process-wide registry, mirroring ``metrics.REGISTRY``.  Forked
#: workers reset it on initialization and ship deltas home.
WINDOWS = WindowRegistry()
