"""Hierarchical trace spans for the TOSS pipeline.

A :class:`Tracer` records one operation (a query, an SEO build) as a tree
of timed :class:`Span` objects.  The design goals, in order:

* **zero cost when disabled** — a disabled tracer's :meth:`Tracer.span`
  returns one shared no-op context manager; no span objects, dicts or
  closures are allocated, so instrumentation can stay in the hot paths
  unconditionally;
* **bounded when enabled** — ``max_depth`` and ``max_spans`` cap the
  tree so tracing can stay on in production against pathological inputs
  (spans past the caps are counted in ``dropped_spans``, never recorded);
* **ambient access** — deep layers (the planner, the XPath engine, SEA,
  the worker-pool merge) call :func:`current_tracer` instead of
  threading a tracer argument through every signature.  Outside an
  active trace that returns the :data:`NULL_TRACER`, which costs one
  list lookup and allocates nothing.

Spans from other processes cannot be recorded live; workers return their
timings as plain dicts and the parent re-attaches them with
:meth:`Tracer.record_span` / :meth:`Tracer.record_child_dict`, which is
how the multiprocessing pool's per-worker spans end up in the build
trace deterministically.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional

#: Default bound on span-tree depth (spans deeper than this are dropped).
DEFAULT_MAX_DEPTH = 16

#: Default bound on total spans per trace (further spans are dropped).
DEFAULT_MAX_SPANS = 2048


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "attributes", "children", "seconds", "_started")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List[Span] = []
        self.seconds: float = 0.0
        self._started: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (used by sinks, reports and the CLI)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 6),
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def render(self, indent: int = 0) -> str:
        """Human-readable span tree (one span per line)."""
        return "\n".join(render_span_dict(self.to_dict()))

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds:.6f}s, {len(self.children)} children)"


def render_span_dict(payload: Dict[str, Any], indent: int = 0) -> List[str]:
    """Render a :meth:`Span.to_dict` payload as indented text lines."""
    attrs = payload.get("attributes") or {}
    rendered_attrs = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    line = f"{'  ' * indent}{payload.get('name', '?')}  {payload.get('seconds', 0.0):.6f}s"
    if rendered_attrs:
        line += f"  [{rendered_attrs}]"
    lines = [line]
    for child in payload.get("children", ()):
        lines.extend(render_span_dict(child, indent + 1))
    return lines


class _NullSpanContext:
    """The shared do-nothing context manager of disabled/overflowed tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: The single instance every no-op ``span()`` call returns.
NULL_SPAN_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        span._started = time.perf_counter()
        self._tracer._open(span)
        return span

    def __exit__(self, *exc_info: object) -> bool:
        span = self._span
        span.seconds = time.perf_counter() - span._started
        self._tracer._close(span)
        return False


class Tracer:
    """Records one operation as a bounded tree of spans.

    A tracer is single-use: open a root with :meth:`trace`, nest spans
    under it, then read :attr:`root` (or call :meth:`finish`).  Disabled
    tracers (``enabled=False``) never allocate — every ``span()`` call
    returns :data:`NULL_SPAN_CONTEXT`.
    """

    __slots__ = ("enabled", "max_depth", "max_spans", "root", "dropped_spans",
                 "_stack", "_span_count", "_registered")

    def __init__(
        self,
        enabled: bool = True,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.enabled = enabled
        self.max_depth = max_depth
        self.max_spans = max_spans
        self.root: Optional[Span] = None
        self.dropped_spans = 0
        self._stack: List[Span] = []
        self._span_count = 0
        self._registered = False

    # -- recording ----------------------------------------------------------

    def trace(self, name: str, **attributes: Any):
        """Open the root span and make this tracer ambient (see
        :func:`current_tracer`) for the duration of the ``with`` block."""
        if not self.enabled:
            return NULL_SPAN_CONTEXT
        self._registered = True
        _ACTIVE.append(self)
        return self.span(name, **attributes)

    def span(self, name: str, **attributes: Any):
        """A context manager recording one child span of the current span."""
        if not self.enabled:
            return NULL_SPAN_CONTEXT
        if self._stack and len(self._stack) >= self.max_depth:
            self.dropped_spans += 1
            return NULL_SPAN_CONTEXT
        if self._span_count >= self.max_spans:
            self.dropped_spans += 1
            return NULL_SPAN_CONTEXT
        self._span_count += 1
        return _SpanContext(self, Span(name, attributes))

    def annotate(self, **attributes: Any) -> None:
        """Merge attributes into the innermost open span (no-op otherwise)."""
        if self.enabled and self._stack:
            self._stack[-1].attributes.update(attributes)

    def record_span(
        self,
        name: str,
        seconds: float,
        attributes: Optional[Dict[str, Any]] = None,
        children: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        """Attach an already-timed span (e.g. from a worker process).

        ``children`` takes :meth:`Span.to_dict`-shaped payloads and
        re-attaches them below the recorded span, which is how traces
        measured in other processes merge into the parent tree.
        """
        if not self.enabled or not self._stack:
            return
        if self._span_count >= self.max_spans:
            self.dropped_spans += 1
            return
        self._span_count += 1
        span = Span(name, attributes)
        span.seconds = seconds
        self._stack[-1].children.append(span)
        for child in children or ():
            self.record_child_dict(child, parent=span)

    def record_child_dict(
        self, payload: Dict[str, Any], parent: Optional[Span] = None
    ) -> None:
        """Attach a :meth:`Span.to_dict` payload below ``parent`` (default:
        the innermost open span)."""
        if not self.enabled:
            return
        if parent is None:
            if not self._stack:
                return
            parent = self._stack[-1]
        if self._span_count >= self.max_spans:
            self.dropped_spans += 1
            return
        self._span_count += 1
        span = Span(payload.get("name", "?"), payload.get("attributes"))
        span.seconds = float(payload.get("seconds", 0.0))
        parent.children.append(span)
        for child in payload.get("children", ()):
            self.record_child_dict(child, parent=span)

    # -- internals ----------------------------------------------------------

    def _open(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if not self._stack and self._registered:
            self._registered = False
            if self in _ACTIVE:
                _ACTIVE.remove(self)
            if self.dropped_spans and self.root is not None:
                self.root.attributes["dropped_spans"] = self.dropped_spans
                # Truncation must be visible fleet-wide, not only to
                # whoever happens to read this one trace: publish the
                # drop count so exporters and the regression dashboards
                # see bounded trees filling up.
                from .metrics import REGISTRY

                REGISTRY.counter("trace.spans_dropped").inc(self.dropped_spans)

    def finish(self) -> Optional[Dict[str, Any]]:
        """The completed trace as a dict tree, or None (disabled/empty)."""
        if self.root is None:
            return None
        return self.root.to_dict()


#: Shared disabled tracer — the no-op recorder ambient code falls back to.
NULL_TRACER = Tracer(enabled=False)

#: Stack of tracers with an open root span (innermost last).
_ACTIVE: List[Tracer] = []


def current_tracer() -> Tracer:
    """The innermost ambient tracer, or :data:`NULL_TRACER`.

    Deep layers use this to attach spans to whatever trace is active
    without taking a tracer parameter; with no active trace every
    operation on the result is a no-op.
    """
    return _ACTIVE[-1] if _ACTIVE else NULL_TRACER


def traced(name: Optional[str] = None) -> Callable:
    """Decorator: record a span around every call of the function.

    The span attaches to the ambient tracer at call time, so decorated
    helpers cost nothing outside an active trace::

        @traced("planner.prune")
        def prune_candidates(...): ...
    """

    def decorate(function: Callable) -> Callable:
        span_name = name if name is not None else function.__qualname__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any):
            with current_tracer().span(span_name):
                return function(*args, **kwargs)

        return wrapper

    return decorate
