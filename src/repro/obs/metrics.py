"""Process-wide metrics registry: counters, gauges and histograms.

Every layer of the pipeline — the executor, the planner, the XPath
engine, SEA/fusion, the worker pool, the storage layer and the LRU
caches — publishes into one module-level :data:`REGISTRY` by fetching
its instrument at the point of use::

    from repro.obs import metrics
    metrics.REGISTRY.counter("xpath.queries").inc()
    metrics.REGISTRY.histogram("executor.seconds").observe(report.total_seconds)

Instruments are fetched, not cached, so flipping the registry off
(``REGISTRY.enabled = False``) takes effect everywhere immediately: a
disabled registry hands back one shared :data:`NULL_INSTRUMENT` whose
methods do nothing and which allocates nothing — the no-op recorder that
makes instrumentation zero-cost when observability is off.

Histograms use **fixed bucket boundaries** with Prometheus ``le``
semantics: a value lands in the first bucket whose upper bound is
``>= value``; values above every bound land in the ``+Inf`` overflow
bucket.  Fixed boundaries keep snapshots mergeable across processes and
CLI invocations (see :func:`repro.obs.sinks.merge_snapshots`).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Default latency buckets, seconds (sub-millisecond to tens of seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default size buckets (counts of documents, results, steps...).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 100000,
)

_INF = "+Inf"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can move both ways (cache sizes, pool widths...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary histogram with ``le`` (value <= bound) semantics."""

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        ordered = tuple(sorted(float(b) for b in bounds))
        if not ordered:
            raise ValueError(f"histogram {name!r} needs bounds")
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"histogram {name!r} has duplicate bucket bounds")
        self.name = name
        self.bounds = ordered
        #: one slot per bound plus the +Inf overflow bucket
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Union[int, float]) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> Dict[str, int]:
        """Bucket label -> count (non-cumulative), including ``+Inf``."""
        labels = [f"{bound:g}" for bound in self.bounds] + [_INF]
        return dict(zip(labels, self.counts))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class _NullInstrument:
    """The shared no-op instrument a disabled registry hands out."""

    __slots__ = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass


#: The single no-op instrument (identity-testable in the overhead tests).
NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name -> instrument map with get-or-create semantics."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Any] = {}
        #: Serialises instrument creation and whole-snapshot absorption.
        #: Re-entrant because ``absorb`` reaches instruments through the
        #: public getters.  Point updates (``inc``/``observe``) stay
        #: lock-free — they are single-bytecode-ish under the GIL and
        #: belong to the single-threaded executor hot path; the
        #: multi-threaded entry points are create and absorb.
        self._lock = threading.RLock()

    def _get(self, name: str, factory, kind: str):
        if not self.enabled:
            return NULL_INSTRUMENT
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = factory()
                    self._instruments[name] = instrument
        if instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {instrument.kind}, not a {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds), "histogram")

    def get(self, name: str) -> Optional[Any]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (used by tests and ``db obs metrics --reset``)."""
        with self._lock:
            self._instruments.clear()

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready name -> instrument-state map (sorted by name)."""
        with self._lock:
            return {
                name: self._instruments[name].to_dict()
                for name in sorted(self._instruments)
            }

    def render_text(self) -> str:
        """Human-readable one-line-per-metric rendering (for the CLI)."""
        return render_snapshot_text(self.snapshot())

    def absorb(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Accumulate a :meth:`snapshot`-shaped payload into the live
        instruments (counters and histograms add, gauges take the
        snapshot's value).

        This is how per-query worker metrics reach the parent process:
        each serving worker snapshots and resets its own registry after
        a query, and the parent absorbs the delta — the merged registry
        then reads as if the work had run in-process.  Entries whose
        type or histogram bounds conflict with an existing instrument
        are skipped (never raised — worker payloads must not be able to
        wedge the parent).

        Thread-safe: the whole fold happens under the registry lock, so
        concurrent absorbs (the supervised pool collecting several
        workers' deltas at once) never interleave mid-instrument and
        never lose increments.
        """
        if not self.enabled:
            return
        with self._lock:
            self._absorb_locked(snapshot)

    def _absorb_locked(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        for name, entry in snapshot.items():
            kind = entry.get("type")
            try:
                if kind == "counter":
                    self.counter(name).inc(entry.get("value", 0))
                elif kind == "gauge":
                    self.gauge(name).set(entry.get("value", 0))
                elif kind == "histogram":
                    bounds = tuple(entry.get("bounds", ()))
                    histogram = self.histogram(name, bounds or DEFAULT_TIME_BUCKETS)
                    if histogram.bounds != tuple(
                        sorted(float(b) for b in bounds)
                    ):
                        continue
                    counts = entry.get("counts", ())
                    if len(counts) != len(histogram.counts):
                        continue
                    for index, count in enumerate(counts):
                        histogram.counts[index] += count
                    histogram.sum += entry.get("sum", 0.0)
                    histogram.count += entry.get("count", 0)
            except (TypeError, ValueError):
                continue


def render_snapshot_text(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` payload as aligned text."""
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "?")
        if kind == "histogram":
            count = entry.get("count", 0)
            total = entry.get("sum", 0.0)
            mean = total / count if count else 0.0
            detail = f"count={count} sum={total:.6g} mean={mean:.6g}"
        else:
            detail = f"value={entry.get('value', 0)}"
        lines.append(f"{name:<{width}}  {kind:<9} {detail}")
    return "\n".join(lines)


def merge_snapshots(
    base: Dict[str, Dict[str, Any]], update: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Accumulate ``update`` into ``base`` (counters/histograms add,
    gauges take the newer value).  Returns a new dict; inputs unchanged.

    Snapshots with mismatched types or histogram bounds under one name
    keep the newer entry — persisted snapshots must never block on a
    metric that changed shape across versions.
    """
    merged: Dict[str, Dict[str, Any]] = {
        name: dict(entry) for name, entry in base.items()
    }
    for name, entry in update.items():
        existing = merged.get(name)
        if existing is None or existing.get("type") != entry.get("type"):
            merged[name] = dict(entry)
            continue
        kind = entry.get("type")
        if kind == "counter":
            merged[name] = {
                "type": "counter",
                "value": existing.get("value", 0) + entry.get("value", 0),
            }
        elif kind == "histogram":
            if existing.get("bounds") != entry.get("bounds"):
                merged[name] = dict(entry)
                continue
            merged[name] = {
                "type": "histogram",
                "bounds": list(entry.get("bounds", ())),
                "counts": [
                    a + b
                    for a, b in zip(
                        existing.get("counts", ()), entry.get("counts", ())
                    )
                ],
                "sum": existing.get("sum", 0.0) + entry.get("sum", 0.0),
                "count": existing.get("count", 0) + entry.get("count", 0),
            }
        else:  # gauge: last writer wins
            merged[name] = dict(entry)
    return merged


#: The process-wide registry every subsystem publishes into.
REGISTRY = MetricsRegistry()


def set_enabled(enabled: bool) -> None:
    """Flip the process-wide registry on or off."""
    REGISTRY.enabled = enabled
