"""Observability sinks: JSON-lines event log, slow-query log, metrics files.

Sinks are deliberately dumb files so they survive crashes and compose
with standard tooling (``jq``, ``grep``):

* :class:`JsonLinesSink` — append-only ``*.jsonl`` with size-based
  rotation (the live file is renamed to ``<name>.1`` and a fresh file is
  started; one backup generation is kept per configured ``backups``).
* :class:`SlowQueryLog` — a :class:`JsonLinesSink` that only records
  payloads whose ``total_seconds`` meets a configurable threshold.
* :func:`write_metrics_snapshot` / :func:`read_metrics_snapshot` — a
  JSON metrics file that *accumulates* across CLI invocations: each
  flush merges the registry's snapshot into what is already on disk
  (counters and histograms add, gauges take the latest value) and
  rewrites the file atomically.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..ioutils import atomic_write_text
from . import metrics as _metrics

#: Default rotation threshold for JSON-lines sinks (bytes).
DEFAULT_MAX_BYTES = 4 * 1024 * 1024


class JsonLinesSink:
    """Append-only structured event log with size-based rotation."""

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = 1,
    ) -> None:
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = max(0, backups)

    def emit(self, payload: Dict[str, Any]) -> None:
        """Append one JSON object as a single line, rotating first if the
        live file has already reached ``max_bytes``."""
        line = json.dumps(payload, sort_keys=True, default=str)
        self._rotate_if_needed(len(line) + 1)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def _rotate_if_needed(self, incoming_bytes: int) -> None:
        if self.max_bytes <= 0:
            return
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size + incoming_bytes <= self.max_bytes:
            return
        if self.backups <= 0:
            try:
                self.path.unlink()
            except OSError:
                pass
            return
        # Shift backup generations: .(n-1) -> .n, ..., live -> .1
        for generation in range(self.backups, 1, -1):
            older = self.path.with_name(f"{self.path.name}.{generation - 1}")
            if older.exists():
                os.replace(older, self.path.with_name(f"{self.path.name}.{generation}"))
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))

    def read(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The last ``limit`` entries (all when None), oldest first.

        Includes the newest backup generation when the live file alone
        cannot satisfy ``limit``.  Corrupt lines are skipped — a sink
        must never make diagnostics unreadable because one write tore.
        """
        entries: List[Dict[str, Any]] = []
        sources = [self.path.with_name(f"{self.path.name}.1"), self.path]
        for source in sources:
            if not source.exists():
                continue
            try:
                text = source.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict):
                    entries.append(entry)
        if limit is not None and limit >= 0:
            entries = entries[-limit:]
        return entries


class SlowQueryLog(JsonLinesSink):
    """JSON-lines sink that keeps only queries at or above a threshold."""

    def __init__(
        self,
        path: Union[str, Path],
        threshold_seconds: float = 0.5,
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = 1,
    ) -> None:
        super().__init__(path, max_bytes=max_bytes, backups=backups)
        self.threshold_seconds = threshold_seconds

    def record(self, payload: Dict[str, Any]) -> bool:
        """Emit ``payload`` iff its ``total_seconds`` meets the threshold.

        Returns True when the entry was written (so callers can count
        slow queries without re-deriving the predicate)."""
        seconds = payload.get("total_seconds")
        if seconds is None or float(seconds) < self.threshold_seconds:
            return False
        self.emit(payload)
        return True


# -- metrics files ----------------------------------------------------------


def read_metrics_snapshot(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """The snapshot persisted at ``path`` ({} when missing/corrupt)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    metrics = payload.get("metrics") if isinstance(payload, dict) else None
    return metrics if isinstance(metrics, dict) else {}


def write_metrics_snapshot(
    path: Union[str, Path],
    registry: Optional[_metrics.MetricsRegistry] = None,
    merge: bool = True,
) -> Dict[str, Dict[str, Any]]:
    """Merge ``registry``'s snapshot into the file at ``path`` atomically.

    With ``merge=True`` (the default) the on-disk snapshot accumulates
    across invocations; ``merge=False`` overwrites.  Returns the
    snapshot that was written.
    """
    registry = registry if registry is not None else _metrics.REGISTRY
    snapshot = registry.snapshot()
    if merge:
        snapshot = _metrics.merge_snapshots(read_metrics_snapshot(path), snapshot)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path,
        json.dumps({"format": 1, "metrics": snapshot}, indent=2, sort_keys=True)
        + "\n",
    )
    return snapshot
