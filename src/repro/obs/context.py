"""Request identity that survives process hops.

Serving turns one user request into work scattered across processes:
the parent plans and dispatches, a supervised worker executes (possibly
several times, across respawns), and the parent verifies and records.
Every one of those steps emits telemetry — spans, events, slow-query
lines, recovery records — and without a shared identity they cannot be
joined back into one story.

:class:`RequestContext` is that identity: a small immutable record
(request id, tenant, query class, deadline) minted once at the edge
(:class:`~repro.serving.server.QueryServer` or the CLI) and threaded
everywhere the work goes.  Two transports cover every hop:

* **ambient activation** — :func:`activate` pushes the context onto a
  module-global stack so code that cannot grow a parameter (the
  executor's ``_finish_query``, metric recording deep in a verify loop)
  can still ask :func:`current_request` "whose work is this?".  The
  stack is intentionally *not* thread-local, matching
  ``repro.obs.trace._ACTIVE``: the sampling profiler's reader thread
  must see the request the main thread is serving.
* **wire form** — :meth:`RequestContext.to_wire` / ``from_wire`` is a
  plain dict that rides the existing task-dict transport into pool
  workers and partition chunks; the worker re-activates it before
  executing, so worker-side spans and reports carry the same id the
  parent minted.

Ids are 16 hex chars of :func:`uuid.uuid4` — unguessable enough to not
collide within a store's lifetime, short enough to read in a log line.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "RequestContext",
    "new_request_id",
    "activate",
    "current_request",
]


def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class RequestContext:
    """One request's identity, as minted at the serving edge.

    Attributes
    ----------
    request_id:
        The join key for every telemetry record the request produces.
    tenant:
        Optional tenant label (multi-tenant budget accounting joins on
        this; ``None`` for single-tenant / CLI use).
    query_class:
        Optional workload class (``"selection"``, ``"join"``, ...) used
        to bucket rolling-window statistics; when absent the executor
        falls back to the query kind it derives itself.
    deadline_seconds:
        Optional *relative* latency budget in seconds, carried for
        observability (the enforcing deadline lives in the guard, which
        is already propagated separately).  Relative, not absolute:
        monotonic clocks do not agree across processes.
    """

    request_id: str
    tenant: Optional[str] = None
    query_class: Optional[str] = None
    deadline_seconds: Optional[float] = None

    @classmethod
    def mint(
        cls,
        tenant: Optional[str] = None,
        query_class: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
    ) -> "RequestContext":
        return cls(
            request_id=new_request_id(),
            tenant=tenant,
            query_class=query_class,
            deadline_seconds=deadline_seconds,
        )

    # -- wire form (task-dict transport) -----------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """A JSON/pickle-safe dict; omits unset fields to stay small."""
        wire: Dict[str, Any] = {"id": self.request_id}
        if self.tenant is not None:
            wire["tenant"] = self.tenant
        if self.query_class is not None:
            wire["class"] = self.query_class
        if self.deadline_seconds is not None:
            wire["deadline"] = self.deadline_seconds
        return wire

    @classmethod
    def from_wire(cls, wire: Optional[Mapping[str, Any]]) -> Optional["RequestContext"]:
        """Rebuild from :meth:`to_wire` output; tolerant of None/garbage
        (a malformed context must never fail a query)."""
        if not isinstance(wire, Mapping):
            return None
        request_id = wire.get("id")
        if not isinstance(request_id, str) or not request_id:
            return None
        deadline = wire.get("deadline")
        return cls(
            request_id=request_id,
            tenant=wire.get("tenant"),
            query_class=wire.get("class"),
            deadline_seconds=float(deadline) if deadline is not None else None,
        )


#: The ambient activation stack.  Deliberately a module global, not
#: thread-local (see module docstring); the executor is single-threaded
#: per process, and readers (sampler thread) only peek.
_ACTIVE: List[RequestContext] = []


def current_request() -> Optional[RequestContext]:
    """The innermost active context, or None outside any request."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate(context: Optional[RequestContext]) -> Iterator[Optional[RequestContext]]:
    """Make ``context`` ambient for the duration of the block.

    ``activate(None)`` is a no-op block, so call sites can thread an
    optional context without branching.
    """
    if context is None:
        yield None
        return
    _ACTIVE.append(context)
    try:
        yield context
    finally:
        # Remove *this* context even if a nested block leaked — ambient
        # state must never outlive its request.
        for index in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[index] is context:
                del _ACTIVE[index]
                break
