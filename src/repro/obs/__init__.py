"""`repro.obs` — dependency-free observability for the TOSS pipeline.

Layers, usable independently:

* :mod:`repro.obs.trace` — hierarchical, bounded trace spans with a
  context-manager + decorator API and ambient access via
  :func:`~repro.obs.trace.current_tracer`;
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket histograms (:data:`~repro.obs.metrics.REGISTRY`);
* :mod:`repro.obs.sinks` — JSON-lines event log, slow-query log and a
  cumulative metrics snapshot file;
* :mod:`repro.obs.context` — per-request identity
  (:class:`~repro.obs.context.RequestContext`) threaded from the
  serving edge through pool workers so all telemetry joins on one id;
* :mod:`repro.obs.window` — rolling per-second windows
  (:data:`~repro.obs.window.WINDOWS`) for streaming QPS / latency
  quantiles / error rate / SLO burn per query class;
* :mod:`repro.obs.profile` — an opt-in sampling profiler attributing
  wall time to executor phases;
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  snapshot writers over the registry and the windows.

:class:`Observability` ties them together for the CLI and the system
facade: it creates per-query tracers, routes finished traces into the
event/slow-query logs, and flushes the metrics registry to disk.  The
shared :data:`NULL_OBSERVABILITY` instance is the zero-cost default —
its tracers are disabled (no span allocation) and its sink hooks return
immediately.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .context import RequestContext, activate, current_request, new_request_id
from .metrics import REGISTRY, MetricsRegistry, render_snapshot_text
from .window import WINDOWS, WindowRegistry, merge_window_snapshots
from .sinks import (
    JsonLinesSink,
    SlowQueryLog,
    read_metrics_snapshot,
    write_metrics_snapshot,
)
from .trace import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_SPANS,
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    render_span_dict,
    traced,
)

#: Subdirectory of a database root that holds all observability state.
OBS_DIRNAME = "obs"

#: File names inside the ``obs/`` directory.
EVENTS_FILENAME = "events.jsonl"
SLOW_QUERIES_FILENAME = "slow_queries.jsonl"
METRICS_FILENAME = "metrics.json"

#: Default slow-query threshold, seconds.
DEFAULT_SLOW_QUERY_SECONDS = 0.5


class Observability:
    """Configuration + sink wiring for one observed component.

    ``directory`` (usually ``<database root>/obs``) anchors the default
    sink files; pass ``directory=None`` for an in-memory-only setup
    (tracing and metrics without any file output).
    """

    def __init__(
        self,
        enabled: bool = True,
        directory: Optional[Union[str, Path]] = None,
        trace_enabled: bool = True,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_spans: int = DEFAULT_MAX_SPANS,
        slow_query_seconds: float = DEFAULT_SLOW_QUERY_SECONDS,
        registry: Optional[MetricsRegistry] = None,
        event_log_max_bytes: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        self.directory = Path(directory) if directory is not None else None
        self.trace_enabled = trace_enabled
        self.max_depth = max_depth
        self.max_spans = max_spans
        self.slow_query_seconds = slow_query_seconds
        self.registry = registry if registry is not None else REGISTRY
        self.event_log: Optional[JsonLinesSink] = None
        self.slow_log: Optional[SlowQueryLog] = None
        self.metrics_path: Optional[Path] = None
        #: When a :class:`repro.obs.profile.SamplingProfiler` is attached
        #: (``db trace --profile``, ``serve --profile-hz``), every
        #: slow-query entry drains it into a flame-style exemplar.
        self.profiler: Optional[Any] = None
        if self.enabled and self.directory is not None:
            sink_kwargs = (
                {"max_bytes": event_log_max_bytes}
                if event_log_max_bytes is not None
                else {}
            )
            self.event_log = JsonLinesSink(
                self.directory / EVENTS_FILENAME, **sink_kwargs
            )
            self.slow_log = SlowQueryLog(
                self.directory / SLOW_QUERIES_FILENAME,
                threshold_seconds=slow_query_seconds,
                **sink_kwargs,
            )
            self.metrics_path = self.directory / METRICS_FILENAME

    # -- tracing ------------------------------------------------------------

    def tracer(self) -> Tracer:
        """A fresh single-use tracer (the shared :data:`NULL_TRACER` when
        tracing is off, so disabled mode allocates nothing per query)."""
        if not (self.enabled and self.trace_enabled):
            return NULL_TRACER
        return Tracer(max_depth=self.max_depth, max_spans=self.max_spans)

    # -- event routing ------------------------------------------------------

    def record_query(
        self,
        kind: str,
        query: Optional[str] = None,
        total_seconds: float = 0.0,
        trace: Optional[Dict[str, Any]] = None,
        plan_lines: Optional[List[str]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Log one finished operation to the event log (and, when slow
        enough, to the slow-query log with its full span tree and probe
        plan).  Returns True when the slow-query log captured it.

        Every entry is stamped with a wall-clock ``ts`` (cross-process
        ordering for ``db trace --request``) and, when a request context
        is ambient, its ``request_id``/``tenant`` — so event-log lines,
        slow-query lines and ``query --json`` reports all join on the
        same id.
        """
        if not self.enabled:
            return False
        event: Dict[str, Any] = {
            "event": kind,
            "ts": round(time.time(), 6),
            "total_seconds": round(float(total_seconds), 6),
        }
        if query is not None:
            event["query"] = query
        context = current_request()
        if context is not None and "request_id" not in (extra or ()):
            event["request_id"] = context.request_id
            if context.tenant is not None:
                event["tenant"] = context.tenant
        if extra:
            event.update(extra)
        if self.event_log is not None:
            self.event_log.emit(event)
        if self.slow_log is None:
            return False
        slow_entry = dict(event)
        if trace is not None:
            slow_entry["trace"] = trace
        if plan_lines:
            slow_entry["plan"] = list(plan_lines)
        if self.profiler is not None:
            exemplar = self.profiler.take_exemplar()
            if exemplar.get("samples"):
                slow_entry["profile"] = exemplar
        return self.slow_log.record(slow_entry)

    def record_event(self, kind: str, **fields: Any) -> None:
        """Log one discrete lifecycle event to the event log.

        For point-in-time facts that are not finished operations —
        worker crashes, respawns, circuit-breaker trips — where
        :meth:`record_query`'s duration/slow-query semantics make no
        sense.  No-op when disabled or file-less.
        """
        if not self.enabled or self.event_log is None:
            return
        event: Dict[str, Any] = {"event": kind, "ts": round(time.time(), 6)}
        context = current_request()
        if context is not None and "request_id" not in fields:
            event["request_id"] = context.request_id
        event.update(fields)
        self.event_log.emit(event)

    # -- metrics ------------------------------------------------------------

    def flush_metrics(self) -> Optional[Dict[str, Dict[str, Any]]]:
        """Merge the registry into the on-disk snapshot (None when this
        setup has no metrics file)."""
        if not self.enabled or self.metrics_path is None:
            return None
        return write_metrics_snapshot(self.metrics_path, self.registry)


#: Shared disabled configuration — the default everywhere.
NULL_OBSERVABILITY = Observability(enabled=False)


def obs_directory(root: Union[str, Path]) -> Path:
    """The observability directory for a database root."""
    return Path(root) / OBS_DIRNAME


def for_root(
    root: Union[str, Path],
    slow_query_seconds: float = DEFAULT_SLOW_QUERY_SECONDS,
    trace_enabled: bool = True,
) -> Observability:
    """An :class:`Observability` anchored at ``<root>/obs``."""
    return Observability(
        directory=obs_directory(root),
        slow_query_seconds=slow_query_seconds,
        trace_enabled=trace_enabled,
    )


__all__ = [
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_SLOW_QUERY_SECONDS",
    "EVENTS_FILENAME",
    "JsonLinesSink",
    "METRICS_FILENAME",
    "MetricsRegistry",
    "NULL_OBSERVABILITY",
    "NULL_TRACER",
    "OBS_DIRNAME",
    "Observability",
    "REGISTRY",
    "RequestContext",
    "SLOW_QUERIES_FILENAME",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "WINDOWS",
    "WindowRegistry",
    "activate",
    "current_request",
    "current_tracer",
    "for_root",
    "merge_window_snapshots",
    "new_request_id",
    "obs_directory",
    "read_metrics_snapshot",
    "render_snapshot_text",
    "render_span_dict",
    "traced",
    "write_metrics_snapshot",
]
