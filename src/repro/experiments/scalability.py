"""Data-size / ontology-size / epsilon sweeps — the engine behind Figure 16.

Each sweep renders progressively larger slices of a seeded corpus,
precomputes the SEO (not timed in the query path, as the paper
precomputes it), and times the executor's three phases for the fixed
workload query.  Sizes are reported in serialized bytes so the series
read like the paper's x-axes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.executor import ExecutionReport
from ..data.dblp import render_dblp
from ..data.ground_truth import Corpus, generate_corpus
from ..data.sigmod import render_sigmod_pages
from ..xmldb.serializer import document_bytes
from .workload import (
    build_epsilon_selection_pattern,
    build_join_pattern,
    build_scalability_pattern,
    build_system,
)


@dataclass
class ScalabilityPoint:
    """One (data size, ontology size) timing measurement."""

    papers: int
    data_bytes: int
    ontology_terms: int
    system_name: str
    seconds: float
    rewrite_seconds: float
    xpath_seconds: float
    convert_seconds: float
    results: int
    ontology_accesses: int = 0


@dataclass
class EpsilonPoint:
    """One epsilon timing measurement (Figure 16(c))."""

    epsilon: float
    operation: str
    seconds: float
    build_seconds: float
    results: int


def _run_reports(
    reports: Sequence[ExecutionReport],
) -> Tuple[float, float, float, float, int]:
    # Aggregate over the canonical serialized form so a timing field added
    # to ExecutionReport without a to_dict entry fails here, not silently.
    payloads = [r.to_dict() for r in reports]
    total = sum(p["total_seconds"] for p in payloads) / len(payloads)
    # Index planning belongs to the paper's "rewrite" phase: both happen
    # before the store is touched, so the three reported components still
    # sum to the total.
    rewrite = (
        sum(p["rewrite_seconds"] + p["planner_seconds"] for p in payloads)
        / len(payloads)
    )
    xpath = sum(p["xpath_seconds"] for p in payloads) / len(payloads)
    convert = sum(p["convert_seconds"] for p in payloads) / len(payloads)
    accesses = payloads[0]["ontology_accesses"]
    return total, rewrite, xpath, convert, accesses


def selection_scalability(
    paper_counts: Sequence[int] = (250, 500, 1000, 2000),
    ontology_caps: Sequence[Optional[int]] = (50, 200, None),
    epsilon: float = 3.0,
    repeats: int = 3,
    seed: int = 0,
) -> List[ScalabilityPoint]:
    """Figure 16(a): TOSS selection time vs data size and ontology size.

    ``ontology_caps`` are Ontology-Maker content-term caps producing the
    family of ontology-size curves (None = uncapped); a TAX baseline is
    measured per data size.
    """
    corpus = generate_corpus(max(paper_counts), seed=seed)
    all_keys = corpus.paper_keys()
    points: List[ScalabilityPoint] = []

    toss_pattern = build_scalability_pattern()
    tax_pattern = build_scalability_pattern(tax_fallback=True)

    for count in paper_counts:
        subset = all_keys[:count]
        dblp = render_dblp(corpus, seed=seed, paper_keys=subset)
        size = document_bytes(dblp)
        for cap in ontology_caps:
            system = build_system(
                corpus, [dblp], epsilon, max_content_terms=cap
            )
            reports = [
                system.select("dblp", toss_pattern, sl_labels=[1])
                for _ in range(repeats)
            ]
            total, rewrite, xpath, convert, accesses = _run_reports(reports)
            points.append(
                ScalabilityPoint(
                    count, size, system.ontology_size(),
                    f"TOSS(ont={system.ontology_size()})",
                    total, rewrite, xpath, convert, len(reports[0].results),
                    accesses,
                )
            )
        tax_executor = system.tax_executor()
        reports = [
            tax_executor.selection("dblp", tax_pattern, sl_labels=[1])
            for _ in range(repeats)
        ]
        total, rewrite, xpath, convert, accesses = _run_reports(reports)
        points.append(
            ScalabilityPoint(
                count, size, 0, "TAX",
                total, rewrite, xpath, convert, len(reports[0].results),
                accesses,
            )
        )
    return points


def join_scalability(
    paper_counts: Sequence[int] = (100, 200, 400, 800),
    ontology_caps: Sequence[Optional[int]] = (50, None),
    epsilon: float = 3.0,
    repeats: int = 2,
    seed: int = 0,
) -> List[ScalabilityPoint]:
    """Figure 16(b): join time vs total (DBLP + SIGMOD) data size."""
    corpus = generate_corpus(max(paper_counts), seed=seed)
    all_keys = corpus.paper_keys()
    points: List[ScalabilityPoint] = []

    toss_pattern = build_join_pattern()
    tax_pattern = build_join_pattern(tax_fallback=True)

    for count in paper_counts:
        subset = all_keys[:count]
        dblp = render_dblp(corpus, seed=seed, paper_keys=subset)
        pages = render_sigmod_pages(corpus, seed=seed, paper_keys=subset)
        size = document_bytes(dblp) + sum(document_bytes(p) for p in pages)
        for cap in ontology_caps:
            system = build_system(
                corpus, [dblp], epsilon,
                sigmod_documents=pages, max_content_terms=cap,
            )
            # Figure 16(b) reproduces the *paper's* execution strategy:
            # product + selection, as the Xindice prototype ran it.  The
            # optimised similarity hash join is measured separately in
            # benchmarks/bench_ablation_hash_join.py.
            assert system.executor is not None
            system.executor.similarity_hash_join = False
            reports = [
                system.join("dblp", "sigmod", toss_pattern, sl_labels=[2, 5])
                for _ in range(repeats)
            ]
            total, rewrite, xpath, convert, accesses = _run_reports(reports)
            points.append(
                ScalabilityPoint(
                    count, size, system.ontology_size(),
                    f"TOSS(ont={system.ontology_size()})",
                    total, rewrite, xpath, convert, len(reports[0].results),
                    accesses,
                )
            )
        tax_executor = system.tax_executor()
        reports = [
            tax_executor.join("dblp", "sigmod", tax_pattern, sl_labels=[2, 5])
            for _ in range(repeats)
        ]
        total, rewrite, xpath, convert, accesses = _run_reports(reports)
        points.append(
            ScalabilityPoint(
                count, size, 0, "TAX",
                total, rewrite, xpath, convert, len(reports[0].results),
                accesses,
            )
        )
    return points


def epsilon_sweep(
    epsilons: Sequence[float] = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0),
    papers: int = 500,
    join_papers: int = 200,
    repeats: int = 2,
    seed: int = 0,
) -> List[EpsilonPoint]:
    """Figure 16(c): TOSS selection and join time against epsilon."""
    corpus = generate_corpus(papers, seed=seed)
    dblp = render_dblp(corpus, seed=seed)
    join_keys = corpus.paper_keys()[:join_papers]
    join_dblp = render_dblp(corpus, seed=seed + 1, paper_keys=join_keys)
    pages = render_sigmod_pages(corpus, seed=seed, paper_keys=join_keys)

    # An author-similarity selection: its SEO expansion (and thus its
    # answer set and output size) grows with epsilon, which is exactly
    # the mechanism the paper credits for Figure 16(c)'s slope.
    selection_pattern = build_epsilon_selection_pattern(corpus)
    join_pattern = build_join_pattern()

    points: List[EpsilonPoint] = []
    for epsilon in epsilons:
        system = build_system(corpus, [dblp], epsilon)
        reports = [
            system.select("dblp", selection_pattern, sl_labels=[1])
            for _ in range(repeats)
        ]
        points.append(
            EpsilonPoint(
                epsilon, "selection",
                sum(r.total_seconds for r in reports) / repeats,
                system.build_seconds, len(reports[0].results),
            )
        )
        join_system = build_system(
            corpus, [join_dblp], epsilon, sigmod_documents=pages
        )
        reports = [
            join_system.join("dblp", "sigmod", join_pattern, sl_labels=[2, 5])
            for _ in range(repeats)
        ]
        points.append(
            EpsilonPoint(
                epsilon, "join",
                sum(r.total_seconds for r in reports) / repeats,
                join_system.build_seconds, len(reports[0].results),
            )
        )
    return points
