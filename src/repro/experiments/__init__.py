"""The experiment harness behind ``benchmarks/``.

One module per concern: :mod:`workload` builds the paper's query
workloads (12 selection queries with 1 isa + 1 similarTo + 3 tag
conditions; conjunctive scalability selections; similarity joins),
:mod:`runner` executes TAX vs TOSS(epsilon) and scores precision/recall/
quality, :mod:`scalability` sweeps data and ontology sizes, and
:mod:`reporting` renders the paper-shaped tables and series.
"""

from .runner import (
    PrecisionRecallResults,
    QueryOutcome,
    run_precision_recall_experiment,
)
from .scalability import (
    EpsilonPoint,
    ScalabilityPoint,
    epsilon_sweep,
    join_scalability,
    selection_scalability,
)
from .workload import (
    SelectionQuery,
    build_join_pattern,
    build_scalability_pattern,
    build_selection_workload,
    build_system,
)

__all__ = [
    "EpsilonPoint",
    "PrecisionRecallResults",
    "QueryOutcome",
    "ScalabilityPoint",
    "SelectionQuery",
    "build_join_pattern",
    "build_scalability_pattern",
    "build_selection_workload",
    "build_system",
    "epsilon_sweep",
    "join_scalability",
    "run_precision_recall_experiment",
    "selection_scalability",
]
