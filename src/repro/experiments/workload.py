"""Query workloads matching the paper's Section 6 experiments.

* **Recall/precision workload** — "12 selection queries on 3 data sets
  (each containing 100 random papers from DBLP).  Each query contains
  1 isa, 1 similarTo and 3 tag matching conditions.  For isa and
  similarTo conditions, 'contains' and exact match are used for TAX
  respectively."  :func:`build_selection_workload` constructs exactly
  that shape: tag conditions pin inproceedings/author/booktitle, the
  similarTo targets an author surface form, the isa targets a venue
  category, and each query carries its TAX degradation and its exact
  ground-truth answer set from the corpus oracle.

* **Scalability selection** — "conjunctive selection queries, each of
  which contains 2 isa and 4 tag matching conditions"
  (:func:`build_scalability_pattern`).

* **Scalability join** — "Each query contains 5 tag matching and 1
  similarTo conditions" over DBLP x SIGMOD (:func:`build_join_pattern`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..core.conditions import Below, SimilarTo
from ..core.system import TossSystem
from ..obs import Observability
from ..data.ground_truth import Corpus
from ..data.lexicon_rules import corpus_lexicon
from ..ontology.maker import DEFAULT_CONTENT_TAGS, OntologyMaker
from ..similarity.measures import StringSimilarityMeasure
from ..tax.conditions import And, Comparison, Constant, Contains, NodeContent, NodeTag
from ..tax.pattern import PatternTree
from ..xmldb.model import XmlNode

#: isa targets the workload rotates through.  "category" entries name a
#: venue category ("conference" is the broad, vacuous one); "venue"
#: entries target the author's own most frequent venue by its short name,
#: which is where TAX's `contains` fallback can actually match and — for
#: single-paper authors — reach recall 1, the way 3 of the paper's 12
#: queries do.
CATEGORY_ROTATION: Tuple[Tuple[str, str], ...] = (
    ("category", "database conference"),
    ("category", "conference"),
    ("category", "data mining conference"),
    ("venue", ""),
    ("category", "information retrieval conference"),
    ("category", "web conference"),
)


def build_system(
    corpus: Corpus,
    documents: Sequence[XmlNode],
    epsilon: float,
    measure: "str | StringSimilarityMeasure" = "levenshtein",
    sigmod_documents: Optional[Sequence[XmlNode]] = None,
    max_content_terms: Optional[int] = None,
    mode: str = "order-safe",
    workers: Optional[int] = None,
    candidate_filter: Optional[bool] = None,
    parallel_threshold: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    observability: Optional[Observability] = None,
) -> TossSystem:
    """A TossSystem over rendered corpus documents, built and ready.

    ``max_content_terms`` caps how many content values the Ontology Maker
    lifts, which is how the scalability experiments control ontology size.
    ``workers`` / ``candidate_filter`` / ``cache_dir`` / ``use_cache``
    pass through to the SEO build pipeline (see
    :meth:`~repro.core.system.TossSystem.build`), which is how the build
    benchmark sweeps its configurations.
    """
    maker = OntologyMaker(
        lexicon=corpus_lexicon(),
        content_tags=DEFAULT_CONTENT_TAGS,
        max_content_terms=max_content_terms,
    )
    system = TossSystem(
        measure=measure,
        epsilon=epsilon,
        maker=maker,
        cache_dir=cache_dir,
        observability=observability,
    )
    system.add_instance("dblp", list(documents))
    if sigmod_documents is not None:
        system.add_instance("sigmod", list(sigmod_documents))
    system.build(
        mode=mode,
        workers=workers,
        candidate_filter=candidate_filter,
        parallel_threshold=parallel_threshold,
        use_cache=use_cache,
    )
    return system


def _base_pattern() -> PatternTree:
    """inproceedings with author and booktitle children (3 tag conditions)."""
    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    pattern.add_node(3, parent=1, edge="pc")
    return pattern


def _tag_conditions():
    return (
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        Comparison("=", NodeTag(3), Constant("booktitle")),
    )


@dataclass
class SelectionQuery:
    """One workload query: TOSS and TAX forms plus its ground truth."""

    query_id: str
    author_surface: str
    category: str
    toss_pattern: PatternTree
    tax_pattern: PatternTree
    relevant: FrozenSet[str]

    @property
    def sl_labels(self) -> Tuple[int, ...]:
        return (1,)


def build_selection_workload(
    corpus: Corpus, n_queries: int = 12, seed: int = 0
) -> List[SelectionQuery]:
    """The 12-query workload over a rendered corpus.

    Queries alternate between frequent author entities (large answer sets
    for similarity matching to recover) and rare ones (the paper's "3
    queries whose semantically correct results contain 3 or fewer
    papers"), and rotate over isa targets per :data:`CATEGORY_ROTATION`.
    The similarTo constant is one of the entity's *rendered* surface
    forms — what a user who saw the name somewhere would type.  Queries
    with an empty semantic answer set are skipped ("a query result
    contains 1 to 38 papers").
    """
    rng = random.Random(seed)
    frequency: dict = {}
    for paper in corpus.papers:
        for author_id in paper.author_ids:
            frequency[author_id] = frequency.get(author_id, 0) + 1
    by_descending = sorted(frequency, key=lambda a: (-frequency[a], a))
    # Interleave: three frequent entities, then one rare entity, ...
    frequent = [a for a in by_descending if frequency[a] >= 3]
    rare = [a for a in reversed(by_descending) if frequency[a] <= 2]
    candidates: List[int] = []
    f_iter, r_iter = iter(frequent), iter(rare)
    while True:
        block = [next(f_iter, None), next(f_iter, None), next(f_iter, None),
                 next(r_iter, None)]
        block = [a for a in block if a is not None]
        if not block:
            break
        candidates.extend(block)

    venue_counts: dict = {}
    for paper in corpus.papers:
        for author_id in paper.author_ids:
            venue_counts.setdefault(author_id, {}).setdefault(paper.venue_key, 0)
            venue_counts[author_id][paper.venue_key] += 1

    queries: List[SelectionQuery] = []
    rotation_index = 0
    for author_id in candidates:
        if len(queries) >= n_queries:
            break
        author = corpus.authors[author_id]
        if not author.surfaces:
            continue
        surface = rng.choice(sorted(author.surfaces))
        kind, target = CATEGORY_ROTATION[rotation_index % len(CATEGORY_ROTATION)]
        rotation_index += 1
        if kind == "venue":
            top_venue = max(
                venue_counts[author_id], key=venue_counts[author_id].get
            )
            target = corpus.venues[top_venue].spec.short
            relevant = corpus.relevant_papers(
                author_surface=surface, venue_key=top_venue
            )
        else:
            relevant = corpus.relevant_papers(
                author_surface=surface,
                venue_category=None if target == "conference" else target,
            )
        if not relevant:
            continue

        toss_pattern = _base_pattern()
        toss_pattern.condition = And(
            *_tag_conditions(),
            SimilarTo(NodeContent(2), Constant(surface)),
            Below(NodeContent(3), Constant(target)),
        )
        tax_pattern = _base_pattern()
        tax_pattern.condition = And(
            *_tag_conditions(),
            Comparison("=", NodeContent(2), Constant(surface)),
            Contains(NodeContent(3), Constant(target)),
        )
        queries.append(
            SelectionQuery(
                query_id=f"Q{len(queries) + 1:02d}",
                author_surface=surface,
                category=target,
                toss_pattern=toss_pattern,
                tax_pattern=tax_pattern,
                relevant=relevant,
            )
        )
    return queries


def build_scalability_pattern(
    narrow_category: str = "database conference",
    broad_category: str = "conference",
    tax_fallback: bool = False,
) -> PatternTree:
    """The Figure 16(a) conjunctive selection: 2 isa + 4 tag conditions.

    Pattern: inproceedings with title, booktitle and year children; the
    booktitle content must be below both a narrow and a broad category.
    ``tax_fallback`` swaps the isa conditions for TAX's exact matches.
    """
    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    pattern.add_node(3, parent=1, edge="pc")
    pattern.add_node(4, parent=1, edge="pc")
    tag_conditions = (
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("booktitle")),
        Comparison("=", NodeTag(4), Constant("year")),
    )
    if tax_fallback:
        semantic = (
            Comparison("=", NodeContent(3), Constant(narrow_category)),
            Comparison("=", NodeContent(3), Constant(broad_category)),
        )
    else:
        semantic = (
            Below(NodeContent(3), Constant(narrow_category)),
            Below(NodeContent(3), Constant(broad_category)),
        )
    pattern.condition = And(*tag_conditions, *semantic)
    return pattern


def build_epsilon_selection_pattern(corpus: Corpus) -> PatternTree:
    """The Figure 16(c) selection: answers must grow with epsilon.

    Targets the corpus's most prolific author by canonical name, so each
    epsilon increment catches more of the rendered surface variants.
    """
    frequency: dict = {}
    for paper in corpus.papers:
        for author_id in paper.author_ids:
            frequency[author_id] = frequency.get(author_id, 0) + 1
    target = corpus.authors[max(frequency, key=lambda a: frequency[a])].canonical
    pattern = _base_pattern()
    pattern.condition = And(
        *_tag_conditions(),
        SimilarTo(NodeContent(2), Constant(target)),
        Below(NodeContent(3), Constant("conference")),
    )
    return pattern


def build_join_pattern(
    title_surface: Optional[str] = None, tax_fallback: bool = False
) -> PatternTree:
    """The Figure 16(b) join: 5 tag conditions + 1 similarTo.

    DBLP inproceedings (title, booktitle) x SIGMOD article (title) with
    the two titles similar.  ``tax_fallback`` degrades ``~`` to ``=``.
    """
    pattern = PatternTree()
    pattern.add_node(0)
    pattern.add_node(1, parent=0, edge="pc")   # dblp inproceedings
    pattern.add_node(2, parent=1, edge="pc")   # dblp title
    pattern.add_node(3, parent=1, edge="pc")   # dblp booktitle
    pattern.add_node(4, parent=0, edge="ad")   # sigmod article
    pattern.add_node(5, parent=4, edge="pc")   # sigmod title
    tag_conditions = (
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("booktitle")),
        Comparison("=", NodeTag(4), Constant("article")),
        Comparison("=", NodeTag(5), Constant("title")),
    )
    if tax_fallback:
        similarity = Comparison("=", NodeContent(2), NodeContent(5))
    else:
        similarity = SimilarTo(NodeContent(2), NodeContent(5))
    pattern.condition = And(*tag_conditions, similarity)
    return pattern
