"""Runs the recall/precision workload — the engine behind Figure 15.

For each of ``n_datasets`` seeded 100-paper DBLP samples, the runner
builds one TOSS system per epsilon, runs every workload query through
TOSS and through the plain-TAX executor (exact match + ``contains``
degradation), extracts the returned paper keys from the witness trees and
scores them against the corpus oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.executor import ExecutionReport
from ..core.quality import QualityReport
from ..data.dblp import render_dblp
from ..data.ground_truth import Corpus, generate_corpus
from ..xmldb.model import XmlNode
from .workload import SelectionQuery, build_selection_workload, build_system


def returned_paper_keys(results: Iterable[XmlNode]) -> FrozenSet[str]:
    """Extract ``key`` attributes from result (witness) trees."""
    keys: Set[str] = set()
    for tree in results:
        key = tree.attributes.get("key")
        if key is not None:
            keys.add(key)
            continue
        for node in tree.iter():
            found = node.attributes.get("key")
            if found is not None:
                keys.add(found)
                break
    return frozenset(keys)


@dataclass
class QueryOutcome:
    """One (dataset, query, system) evaluation."""

    dataset: int
    query_id: str
    system_name: str
    report: QualityReport
    seconds: float

    @property
    def precision(self) -> float:
        return self.report.precision

    @property
    def recall(self) -> float:
        return self.report.recall

    @property
    def quality(self) -> float:
        return self.report.quality


@dataclass
class PrecisionRecallResults:
    """All outcomes of the Figure 15 experiment, with aggregate views."""

    outcomes: List[QueryOutcome] = field(default_factory=list)

    def systems(self) -> List[str]:
        seen: List[str] = []
        for outcome in self.outcomes:
            if outcome.system_name not in seen:
                seen.append(outcome.system_name)
        return seen

    def for_system(self, system_name: str) -> List[QueryOutcome]:
        return [o for o in self.outcomes if o.system_name == system_name]

    def averages(self, system_name: str) -> Tuple[float, float, float]:
        """(mean precision, mean recall, mean quality) for one system."""
        rows = self.for_system(system_name)
        if not rows:
            return (0.0, 0.0, 0.0)
        n = len(rows)
        return (
            sum(r.precision for r in rows) / n,
            sum(r.recall for r in rows) / n,
            sum(r.quality for r in rows) / n,
        )

    def paired(self, system_name: str) -> List[Tuple[QueryOutcome, QueryOutcome]]:
        """(TAX outcome, system outcome) pairs per (dataset, query)."""
        tax_index = {
            (o.dataset, o.query_id): o for o in self.for_system("TAX")
        }
        pairs = []
        for outcome in self.for_system(system_name):
            tax = tax_index.get((outcome.dataset, outcome.query_id))
            if tax is not None:
                pairs.append((tax, outcome))
        return pairs

    def fraction_tax_recall_below(self, threshold: float) -> float:
        """Fraction of TAX outcomes with recall below ``threshold``."""
        rows = self.for_system("TAX")
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.recall < threshold) / len(rows)


def run_precision_recall_experiment(
    n_datasets: int = 3,
    papers_per_dataset: int = 100,
    n_queries: int = 12,
    epsilons: Sequence[float] = (2.0, 3.0),
    measure: str = "levenshtein",
    seed: int = 0,
) -> PrecisionRecallResults:
    """The full Figure 15 protocol.

    Returns one :class:`QueryOutcome` per (dataset, query) for TAX and for
    each TOSS(epsilon).  Note the paper evaluates 12 queries total across
    3 datasets; we evaluate the full workload on each dataset, which only
    tightens the averages.
    """
    results = PrecisionRecallResults()
    for dataset in range(n_datasets):
        corpus = generate_corpus(papers_per_dataset, seed=seed + dataset * 101)
        dblp = render_dblp(corpus, seed=seed + dataset * 101)
        queries = build_selection_workload(corpus, n_queries, seed=seed + dataset)

        systems = {}
        for epsilon in epsilons:
            systems[f"TOSS(e={epsilon:g})"] = build_system(
                corpus, [dblp], epsilon, measure=measure
            )
        # TAX runs on any of the systems' databases with a context-free
        # executor; reuse the first.
        any_system = next(iter(systems.values()))
        tax_executor = any_system.tax_executor()

        for query in queries:
            started = time.perf_counter()
            tax_report = tax_executor.selection("dblp", query.tax_pattern, query.sl_labels)
            tax_seconds = time.perf_counter() - started
            results.outcomes.append(
                QueryOutcome(
                    dataset,
                    query.query_id,
                    "TAX",
                    QualityReport.evaluate(
                        returned_paper_keys(tax_report.results), query.relevant
                    ),
                    tax_seconds,
                )
            )
            for name, system in systems.items():
                started = time.perf_counter()
                report = system.select("dblp", query.toss_pattern, query.sl_labels)
                seconds = time.perf_counter() - started
                results.outcomes.append(
                    QueryOutcome(
                        dataset,
                        query.query_id,
                        name,
                        QualityReport.evaluate(
                            returned_paper_keys(report.results), query.relevant
                        ),
                        seconds,
                    )
                )
    return results
