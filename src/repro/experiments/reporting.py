"""Table/series rendering for the benchmark harness.

Every benchmark prints the same rows/series the paper's figures plot;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from .runner import PrecisionRecallResults
from .scalability import EpsilonPoint, ScalabilityPoint


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)


def fig15a_table(results: PrecisionRecallResults) -> str:
    """Figure 15(a): per-query precision and recall per system."""
    systems = results.systems()
    headers = ["dataset", "query"] + [
        f"{name} {metric}" for name in systems for metric in ("P", "R")
    ]
    index = {
        (o.dataset, o.query_id, o.system_name): o for o in results.outcomes
    }
    keys = sorted({(o.dataset, o.query_id) for o in results.outcomes})
    rows: List[List[object]] = []
    for dataset, query_id in keys:
        row: List[object] = [dataset, query_id]
        for name in systems:
            outcome = index.get((dataset, query_id, name))
            if outcome is None:
                row.extend(["-", "-"])
            else:
                row.extend([outcome.precision, outcome.recall])
        rows.append(row)
    return format_table(headers, rows)


def fig15a_summary(results: PrecisionRecallResults) -> str:
    """The Section 6 prose numbers: averages and TAX's low-recall share."""
    lines = []
    for name in results.systems():
        precision, recall, qual = results.averages(name)
        lines.append(
            f"{name:>12}: avg precision={precision:.3f} "
            f"avg recall={recall:.3f} avg quality={qual:.3f}"
        )
    share = results.fraction_tax_recall_below(0.5)
    lines.append(f"TAX recall < 0.5 for {share:.0%} of queries")
    return "\n".join(lines)


def fig15b_series(results: PrecisionRecallResults) -> str:
    """Figure 15(b): quality vs sqrt(TAX recall) per query and system."""
    headers = ["sqrt(TAX recall)", "dataset", "query"] + [
        f"{name} quality" for name in results.systems()
    ]
    index = {
        (o.dataset, o.query_id, o.system_name): o for o in results.outcomes
    }
    keys = sorted(
        {(o.dataset, o.query_id) for o in results.outcomes},
        key=lambda key: index[(key[0], key[1], "TAX")].recall,
    )
    rows: List[List[object]] = []
    for dataset, query_id in keys:
        tax = index[(dataset, query_id, "TAX")]
        row: List[object] = [math.sqrt(tax.recall), dataset, query_id]
        for name in results.systems():
            outcome = index.get((dataset, query_id, name))
            row.append(outcome.quality if outcome else "-")
        rows.append(row)
    return format_table(headers, rows)


def fig15c_series(results: PrecisionRecallResults) -> str:
    """Figure 15(c): recall improvement over TAX, normalised by precision.

    For each query we report (R_toss * P_toss) / max(R_tax, tiny) — how
    many times the recall improved, discounted by any precision loss.
    """
    systems = [name for name in results.systems() if name != "TAX"]
    headers = ["dataset", "query", "TAX recall"] + [
        f"{name} norm. recall gain" for name in systems
    ]
    rows: List[List[object]] = []
    index = {
        (o.dataset, o.query_id, o.system_name): o for o in results.outcomes
    }
    for dataset, query_id in sorted({(o.dataset, o.query_id) for o in results.outcomes}):
        tax = index[(dataset, query_id, "TAX")]
        row: List[object] = [dataset, query_id, tax.recall]
        for name in systems:
            outcome = index.get((dataset, query_id, name))
            if outcome is None:
                row.append("-")
                continue
            if tax.recall == 0.0:
                # TAX found nothing: any recall is an infinite improvement.
                row.append("inf" if outcome.recall > 0 else 0.0)
            else:
                row.append(outcome.recall * outcome.precision / tax.recall)
        rows.append(row)
    return format_table(headers, rows)


def scalability_table(points: Sequence[ScalabilityPoint], title: str) -> str:
    """Figure 16(a)/(b): seconds per (data size, system) point."""
    headers = [
        "papers", "bytes", "system", "ontology", "seconds",
        "rewrite", "xpath", "convert", "results", "ont.accesses",
    ]
    rows = [
        [
            p.papers, p.data_bytes, p.system_name, p.ontology_terms,
            p.seconds, p.rewrite_seconds, p.xpath_seconds,
            p.convert_seconds, p.results, p.ontology_accesses,
        ]
        for p in points
    ]
    return f"{title}\n" + format_table(headers, rows)


def epsilon_table(points: Sequence[EpsilonPoint]) -> str:
    """Figure 16(c): seconds vs epsilon for selection and join."""
    headers = ["epsilon", "operation", "query seconds", "SEO build seconds", "results"]
    rows = [
        [p.epsilon, p.operation, p.seconds, p.build_seconds, p.results]
        for p in points
    ]
    return "Figure 16(c): TOSS time vs epsilon\n" + format_table(headers, rows)
