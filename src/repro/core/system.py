"""The TOSS system facade — Figure 8's three components wired together.

:class:`TossSystem` owns a :class:`~repro.xmldb.Database` (the Xindice
substitute), runs the **Ontology Maker** on every registered instance,
auto-derives cross-source interoperation constraints (shared terms and
lexicon synonyms — the paper's "WordNet ... lead[s] to a set of
interoperation constraints"), lets the DBA add explicit constraints, runs
the **Similarity Enhancer** (canonical fusion + SEA) at :meth:`build`
time, and exposes the **Query Executor** plus the in-memory
:class:`~repro.core.algebra.TossAlgebra`.

Typical session::

    system = TossSystem(measure="levenshtein", epsilon=3.0)
    system.add_instance("dblp", dblp_xml)
    system.add_instance("sigmod", sigmod_xml)
    system.add_constraint("booktitle:dblp = conference:sigmod")
    system.build()
    report = system.select("dblp", pattern, sl_labels=[1])
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..errors import ReproError, TossError
from ..guard import ResourceGuard
from ..obs import NULL_OBSERVABILITY, Observability
from ..obs.metrics import REGISTRY as METRICS
from ..ontology.constraints import (
    EqualityConstraint,
    InteroperationConstraint,
    ScopedTerm,
    parse_constraint,
)
from ..ontology.fusion import extend_fusion
from ..ontology.hierarchy import Hierarchy, Ontology
from ..ontology.lexicon import Lexicon
from ..ontology.maker import CombinedExtraction, OntologyMaker, RelationDelta
from ..parallel import BuildOptions
from ..similarity.cache import SimilarityGraphCache
from ..similarity.incremental import EpsilonGraphCache
from ..similarity.measures import StringSimilarityMeasure, get_measure
from ..similarity.seo import SeoBuildStats, SimilarityEnhancedOntology
from .build_report import BuildReport, RelationBuild
from ..tax import algebra as tax_algebra
from ..tax.pattern import PatternTree
from ..xmldb.database import Database
from ..xmldb.model import XmlNode
from .algebra import TossAlgebra
from .conditions import SeoConditionContext, TypingFunction, default_typing
from .executor import ExecutionReport, QueryExecutor
from .instance import OntologyExtendedInstance
from .types import TypeSystem, default_type_system

DocumentInput = Union[str, XmlNode]

#: Relations the extraction/build pipeline maintains incrementally.
_RELATIONS = (Ontology.ISA, Ontology.PART_OF)


@dataclass(frozen=True)
class MutationReceipt:
    """What one write did to the system — the observable mutation contract.

    Every mutating call (:meth:`TossSystem.add_instance`,
    :meth:`~TossSystem.add_documents`, :meth:`~TossSystem.replace_documents`,
    :meth:`~TossSystem.remove_documents`) returns one of these instead of
    silently invalidating the built SEO: the caller sees which collection
    generations the write spans, which ontology terms it introduced or
    retired, and whether the next :meth:`~TossSystem.build` can run
    incrementally.  The same facts are emitted as a ``system.mutation``
    observability event.
    """

    source: str
    operation: str
    generation_before: int
    generation_after: int
    documents_added: Tuple[str, ...] = ()
    documents_removed: Tuple[str, ...] = ()
    terms_added: FrozenSet[str] = frozenset()
    terms_removed: FrozenSet[str] = frozenset()
    #: Whether the next build can consume this write as a delta (False
    #: forces a full re-fuse for the affected relations; the similarity
    #: graph still replays its cached verdicts either way).
    incremental: bool = True
    #: The updated instance (new object; previous snapshots are unchanged).
    instance: "OntologyExtendedInstance" = None  # type: ignore[assignment]

    @property
    def generations_advanced(self) -> int:
        return self.generation_after - self.generation_before


@dataclass
class _RelationState:
    """Last successful build of one relation, kept for delta maintenance."""

    epsilon: float
    mode: str
    constraints: List[InteroperationConstraint]
    seo: SimilarityEnhancedOntology
    graph_cache: EpsilonGraphCache
    chain_depth: int = 0


class TossSystem:
    """End-to-end TOSS: database + ontologies + SEO + query execution."""

    def __init__(
        self,
        measure: "str | StringSimilarityMeasure" = "levenshtein",
        epsilon: float = 3.0,
        maker: Optional[OntologyMaker] = None,
        type_system: Optional[TypeSystem] = None,
        typing: TypingFunction = default_typing,
        max_document_bytes: Optional[int] = None,
        guard: Optional[ResourceGuard] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_index: bool = True,
        observability: Optional[Observability] = None,
    ) -> None:
        self.measure = get_measure(measure) if isinstance(measure, str) else measure
        self.epsilon = epsilon
        self.maker = maker if maker is not None else OntologyMaker()
        self.type_system = type_system if type_system is not None else default_type_system()
        self.typing = typing
        if max_document_bytes is None:
            self.database = Database()
        else:
            self.database = Database(max_document_bytes)
        self.instances: Dict[str, OntologyExtendedInstance] = {}
        self._constraints: Dict[str, List[InteroperationConstraint]] = {}
        self.context: Optional[SeoConditionContext] = None
        self.executor: Optional[QueryExecutor] = None
        self.build_seconds: float = 0.0
        #: Default resource guard for builds and queries (None = unbounded).
        self.guard = guard
        #: True when the last build failed and queries run in exact-match
        #: fallback mode (see :meth:`build` with ``on_failure="degrade"``).
        self.degraded: bool = False
        #: The exception that forced degradation, for diagnostics.
        self.build_error: Optional[ReproError] = None
        #: Default worker count for the similarity-graph phase (None = 1).
        self.workers = workers if workers is not None else 1
        #: Persistent similarity-graph cache (None = caching disabled).
        self.seo_cache: Optional[SimilarityGraphCache] = (
            SimilarityGraphCache(cache_dir) if cache_dir else None
        )
        #: :class:`~repro.core.build_report.BuildReport` of the last build.
        self.build_report: Optional[BuildReport] = None
        #: Prune query scans through the collection search indexes
        #: (ablatable; threaded into every executor this system creates).
        self.use_index = use_index
        #: Tracing + sink configuration, threaded into every executor this
        #: system creates and into :meth:`build`'s trace.  The shared
        #: no-op instance by default.
        self.observability = (
            observability if observability is not None else NULL_OBSERVABILITY
        )
        #: Replayable extraction state per source (absent for sources with
        #: externally supplied ontologies or rule-bearing makers).
        self._sources: Dict[str, CombinedExtraction] = {}
        #: Next document auto-key suffix per source; survives removals so
        #: keys are never reissued.
        self._doc_counters: Dict[str, int] = {}
        #: Per-source, per-relation deltas accumulated since the last
        #: successful build — what :meth:`build` turns into fusion/SEA
        #: deltas instead of a rebuild.
        self._pending: Dict[str, Dict[str, RelationDelta]] = {}
        #: Relations whose pending state cannot be expressed as a delta
        #: (a removal/replacement happened, or an instance arrived with an
        #: external ontology): the next build re-fuses them from scratch.
        self._poisoned: Set[str] = set()
        #: Per-relation state of the last successful build.
        self._relation_state: Dict[str, _RelationState] = {}

    # -- administration ---------------------------------------------------------

    def set_observability(self, observability: Observability) -> None:
        """Swap the tracing/sink configuration, including on a loaded system.

        :func:`~repro.core.persistence.load_system` constructs the
        executor before the caller can pass ``observability=``, so the
        CLI (``db trace``, ``query --load``) attaches it afterwards.
        """
        self.observability = observability
        if self.executor is not None:
            self.executor.observability = observability

    @staticmethod
    def _ontology_terms(ontology: Ontology) -> FrozenSet[str]:
        terms: Set[str] = set()
        for relation in _RELATIONS:
            terms.update(str(term) for term in ontology[relation].terms)
        return frozenset(terms)

    def _record_pending(self, name: str, deltas: Dict[str, RelationDelta]) -> None:
        per_source = self._pending.setdefault(name, {})
        for relation, delta in deltas.items():
            slot = per_source.get(relation)
            if slot is None:
                per_source[relation] = delta
            else:
                slot.added_edges.extend(delta.added_edges)
                slot.added_nodes.extend(delta.added_nodes)
                slot.added_terms.update(delta.added_terms)
                slot.leaf_only = slot.leaf_only and delta.leaf_only

    def _poison(self) -> None:
        """Mark every relation as needing a from-scratch fuse next build."""
        self._poisoned.update(_RELATIONS)
        self._pending.clear()

    def _emit_mutation(self, receipt: MutationReceipt) -> MutationReceipt:
        METRICS.counter("system.mutations").inc()
        self.observability.record_event(
            "system.mutation",
            source=receipt.source,
            operation=receipt.operation,
            generation_before=receipt.generation_before,
            generation_after=receipt.generation_after,
            documents_added=len(receipt.documents_added),
            documents_removed=len(receipt.documents_removed),
            terms_added=len(receipt.terms_added),
            terms_removed=len(receipt.terms_removed),
            incremental=receipt.incremental,
        )
        self.context = None  # queries must rebuild (incrementally) first
        return receipt

    def _next_keys(self, name: str, count: int) -> List[str]:
        """Fresh document keys; the counter never reissues a removed key."""
        collection = self.database.get_collection(name)
        counter = self._doc_counters.get(name, len(collection))
        keys: List[str] = []
        for _ in range(count):
            while f"{name}-{counter}" in collection:
                counter += 1
            keys.append(f"{name}-{counter}")
            counter += 1
        self._doc_counters[name] = counter
        return keys

    def add_instance(
        self,
        name: str,
        documents: "DocumentInput | Sequence[DocumentInput]",
        ontology: Optional[Ontology] = None,
    ) -> MutationReceipt:
        """Register a source: store its documents, build (or take) its ontology.

        Returns a :class:`MutationReceipt`; the new instance is
        ``receipt.instance``.
        """
        if name in self.instances:
            raise TossError(f"instance {name!r} is already registered")
        if isinstance(documents, (str, XmlNode)):
            documents = [documents]
        collection = self.database.create_collection(name)
        generation_before = collection.generation
        roots: List[XmlNode] = []
        keys: List[str] = []
        for index, document in enumerate(documents):
            key = f"{name}-{index}"
            roots.append(collection.add_document(key, document))
            keys.append(key)
        self._doc_counters[name] = len(roots)
        incremental = False
        terms_added: FrozenSet[str]
        if ontology is None:
            state = CombinedExtraction(self.maker)
            if state.supported:
                deltas = state.extend(roots)
                ontology = state.ontology
                self._sources[name] = state
                self._record_pending(name, deltas)
                incremental = True
                terms_added = frozenset(
                    term for delta in deltas.values() for term in delta.added_terms
                )
            else:  # rule-bearing maker: not replayable
                ontology = self.maker.make_combined(roots)
                terms_added = self._ontology_terms(ontology)
                self._poison()
        else:
            terms_added = self._ontology_terms(ontology)
            self._poison()
        instance = OntologyExtendedInstance(name, roots, ontology, self.typing)
        self.instances[name] = instance
        return self._emit_mutation(
            MutationReceipt(
                source=name,
                operation="add_instance",
                generation_before=generation_before,
                generation_after=collection.generation,
                documents_added=tuple(keys),
                terms_added=terms_added,
                incremental=incremental,
                instance=instance,
            )
        )

    def _source_state(self, name: str) -> Optional[CombinedExtraction]:
        """The replayable extraction state for ``name``, rebuilding if lost.

        A rebuilt state (e.g. after :func:`~repro.core.persistence.load_system`,
        which restores instances without extraction state) replays the
        instance's current documents; if the result disagrees with the
        instance's ontology — it carried an external one — the pending
        deltas are poisoned so the next build re-fuses, and the source
        converts to extracted ontologies from here on (the behaviour
        appends always had).
        """
        state = self._sources.get(name)
        if state is not None:
            return state
        candidate = CombinedExtraction(self.maker)
        if not candidate.supported:
            return None
        instance = self.instances[name]
        candidate.extend(list(instance.trees))
        self._sources[name] = candidate
        if candidate.ontology != instance.ontology:
            self._poison()
        return candidate

    def add_documents(
        self,
        name: str,
        documents: "DocumentInput | Sequence[DocumentInput]",
    ) -> MutationReceipt:
        """Append documents to an existing instance.

        The instance's combined ontology is extended by replaying the
        extraction over just the new documents (identical to re-extracting
        everything, see
        :class:`~repro.ontology.maker.CombinedExtraction`), the built SEO
        is invalidated, and the delta is queued for the next
        :meth:`build` — which consumes it incrementally instead of
        starting over.  Returns a :class:`MutationReceipt`; the updated
        instance is ``receipt.instance``.
        """
        try:
            instance = self.instances[name]
        except KeyError:
            raise TossError(f"no instance named {name!r}; use add_instance") from None
        if isinstance(documents, (str, XmlNode)):
            documents = [documents]
        collection = self.database.get_collection(name)
        generation_before = collection.generation
        state = self._source_state(name)
        keys = self._next_keys(name, len(documents))
        roots = list(instance.trees)
        added: List[XmlNode] = []
        for key, document in zip(keys, documents):
            root = collection.add_document(key, document)
            roots.append(root)
            added.append(root)
        incremental = False
        if state is not None:
            deltas = state.extend(added)
            ontology = state.ontology
            self._record_pending(name, deltas)
            incremental = True
            terms_added = frozenset(
                term for delta in deltas.values() for term in delta.added_terms
            )
        else:
            before_terms = self._ontology_terms(instance.ontology)
            ontology = self.maker.make_combined(roots)
            terms_added = self._ontology_terms(ontology) - before_terms
            self._poison()
        updated = OntologyExtendedInstance(name, roots, ontology, self.typing)
        self.instances[name] = updated
        return self._emit_mutation(
            MutationReceipt(
                source=name,
                operation="add_documents",
                generation_before=generation_before,
                generation_after=collection.generation,
                documents_added=tuple(keys),
                terms_added=terms_added,
                incremental=incremental,
                instance=updated,
            )
        )

    def _reextract(
        self,
        name: str,
        operation: str,
        generation_before: int,
        documents_added: Tuple[str, ...],
        documents_removed: Tuple[str, ...],
    ) -> MutationReceipt:
        """Rebuild a source's ontology from its surviving documents.

        The shared tail of :meth:`replace_documents` and
        :meth:`remove_documents`: the greedy extraction state is not
        reversible, so shrinking mutations re-extract and poison the
        pending deltas (the next build re-fuses — the similarity graph
        still replays every cached verdict, so even this path stays far
        below a cold build).
        """
        instance = self.instances[name]
        collection = self.database.get_collection(name)
        before_terms = self._ontology_terms(instance.ontology)
        roots = [root for _key, root in collection.documents()]
        state = CombinedExtraction(self.maker)
        if state.supported:
            state.extend(roots)
            ontology = state.ontology
            self._sources[name] = state
        else:
            ontology = self.maker.make_combined(roots)
            self._sources.pop(name, None)
        self._poison()
        after_terms = self._ontology_terms(ontology)
        updated = OntologyExtendedInstance(name, roots, ontology, self.typing)
        self.instances[name] = updated
        return self._emit_mutation(
            MutationReceipt(
                source=name,
                operation=operation,
                generation_before=generation_before,
                generation_after=collection.generation,
                documents_added=documents_added,
                documents_removed=documents_removed,
                terms_added=after_terms - before_terms,
                terms_removed=before_terms - after_terms,
                incremental=False,
                instance=updated,
            )
        )

    def replace_documents(
        self,
        name: str,
        documents: Mapping[str, DocumentInput],
    ) -> MutationReceipt:
        """Overwrite documents of an existing instance by key.

        Unknown keys are created.  Replaced documents move to the end of
        the collection's scan order (the storage semantics of
        :meth:`~repro.xmldb.collection.Collection.replace_document`).
        """
        if name not in self.instances:
            raise TossError(f"no instance named {name!r}; use add_instance") from None
        collection = self.database.get_collection(name)
        generation_before = collection.generation
        replaced: List[str] = []
        created: List[str] = []
        for key, document in documents.items():
            (replaced if key in collection else created).append(key)
            collection.replace_document(key, document)
        return self._reextract(
            name,
            "replace_documents",
            generation_before,
            documents_added=tuple(created),
            documents_removed=tuple(replaced),
        )

    def remove_documents(
        self,
        name: str,
        keys: Iterable[str],
    ) -> MutationReceipt:
        """Remove documents of an existing instance by key."""
        if name not in self.instances:
            raise TossError(f"no instance named {name!r}; use add_instance") from None
        collection = self.database.get_collection(name)
        generation_before = collection.generation
        removed = tuple(keys)
        for key in removed:
            collection.remove_document(key)
        return self._reextract(
            name,
            "remove_documents",
            generation_before,
            documents_added=(),
            documents_removed=removed,
        )

    def add_constraint(
        self,
        constraint: "str | InteroperationConstraint",
        relation: str = Ontology.ISA,
    ) -> InteroperationConstraint:
        """Add a DBA interoperation constraint for one relation."""
        if isinstance(constraint, str):
            constraint = parse_constraint(constraint)
        self._constraints.setdefault(relation, []).append(constraint)
        self.context = None
        return constraint

    # -- the Similarity Enhancer --------------------------------------------------

    def _auto_constraints(
        self, relation: str, hierarchies: Mapping[str, Hierarchy]
    ) -> List[InteroperationConstraint]:
        """Cross-source equalities from shared terms and lexicon synonyms."""
        constraints: List[InteroperationConstraint] = []
        lexicon: Lexicon = self.maker.lexicon
        names = list(hierarchies)
        for first, second in itertools.combinations(names, 2):
            terms_first = hierarchies[first].terms
            terms_second = hierarchies[second].terms
            for term in terms_first:
                if term in terms_second:
                    constraints.append(
                        EqualityConstraint(
                            ScopedTerm(term, first), ScopedTerm(term, second)
                        )
                    )
                for synonym in lexicon.synonyms(str(term)):
                    if synonym != term and synonym in terms_second:
                        constraints.append(
                            EqualityConstraint(
                                ScopedTerm(term, first), ScopedTerm(synonym, second)
                            )
                        )
        return constraints

    def build(
        self,
        epsilon: Optional[float] = None,
        relations: Iterable[str] = (Ontology.ISA, Ontology.PART_OF),
        mode: str = "order-safe",
        guard: Optional[ResourceGuard] = None,
        on_failure: str = "raise",
        workers: Optional[int] = None,
        candidate_filter: Optional[bool] = None,
        parallel_threshold: Optional[int] = None,
        use_cache: bool = True,
    ) -> Optional[SeoConditionContext]:
        """Fuse all instance ontologies and similarity-enhance them.

        This is the precomputation step of Section 6 ("we precompute an
        SEO during integration"); its wall-clock cost is recorded in
        :attr:`build_seconds`.  Must be re-run after adding instances or
        constraints; queries before :meth:`build` raise.

        ``mode`` defaults to SEA's always-consistent ``"order-safe"``
        policy (similar terms merge only when they play the same
        structural role); pass ``"strict"`` for Figure-12-verbatim
        behaviour, which may raise
        :class:`~repro.errors.SimilarityInconsistencyError` (Definition 9).

        ``guard`` (default: the system's guard) bounds the SEO
        precomputation with a deadline / step budget.  ``on_failure``
        selects what happens when the build raises a
        :class:`~repro.errors.ReproError` (inconsistency, bad constraint,
        guard timeout...): ``"raise"`` propagates it; ``"degrade"``
        records it in :attr:`build_error`, flips :attr:`degraded` and
        wires an exact-match fallback executor — similarity queries keep
        working with plain TAX semantics and their
        :class:`~repro.core.executor.ExecutionReport` carries
        ``degraded=True``.  Returns None when degraded.

        ``workers`` / ``candidate_filter`` override the system defaults
        for the similarity-graph phase (see
        :class:`~repro.parallel.BuildOptions`); ``use_cache=False``
        bypasses the persistent similarity-graph cache for this build
        only.  The full outcome lands in :attr:`build_report`.

        **Incremental maintenance.**  After mutations whose receipts say
        ``incremental=True``, each relation consumes its accumulated
        deltas instead of starting over: the previous build's fusion is
        extended (:func:`~repro.ontology.fusion.extend_fusion`), SEA
        replays the rep-level verdict cache and verifies only pairs
        involving new representatives, and — when nothing changed at all
        for a relation — the previous SEO object is reused outright.  The
        result is **identical** (same cliques, closures, serialised
        bytes) to a from-scratch build; the property suite asserts it.  A
        changed epsilon/mode/constraint set, a removal/replacement, or an
        externally supplied ontology falls back to the full path for the
        affected relations.  :class:`~repro.core.build_report.RelationBuild`
        records which path ran (``incremental``/``chain_depth``).
        """
        if on_failure not in ("raise", "degrade"):
            raise ValueError(
                f"on_failure must be 'raise' or 'degrade', got {on_failure!r}"
            )
        if not self.instances:
            raise TossError("register at least one instance before build()")
        if epsilon is not None:
            self.epsilon = epsilon
        guard = guard if guard is not None else self.guard
        options = BuildOptions(workers=self.workers).with_overrides(
            workers=workers,
            candidate_filter=candidate_filter,
            parallel_threshold=parallel_threshold,
        )
        cache = self.seo_cache if use_cache else None
        report = BuildReport(
            measure=self.measure.name or type(self.measure).__name__,
            epsilon=self.epsilon,
            mode=mode,
            workers=options.workers,
            candidate_filter=options.candidate_filter,
            cache_used=cache is not None,
        )
        self.build_report = report
        tracer = self.observability.tracer()
        started = time.perf_counter()
        seos: Dict[str, SimilarityEnhancedOntology] = {}
        previous_seos: Dict[str, SimilarityEnhancedOntology] = {}
        try:
            with tracer.trace("build", mode=mode, workers=options.workers):
                if guard is not None:
                    guard.start()
                for relation in relations:
                    with tracer.span(f"relation.{relation}"):
                        hierarchies = {
                            name: instance.ontology[relation]
                            for name, instance in self.instances.items()
                        }
                        constraints = self._auto_constraints(relation, hierarchies)
                        constraints.extend(self._constraints.get(relation, ()))
                        previous = self._relation_state.get(relation)
                        if previous is not None:
                            previous_seos[relation] = previous.seo
                        built, graph_cache, chain_depth = self._build_relation(
                            relation,
                            hierarchies,
                            constraints,
                            mode,
                            guard,
                            options,
                            cache,
                            report,
                            tracer,
                        )
                        seos[relation] = built
                        self._relation_state[relation] = _RelationState(
                            epsilon=self.epsilon,
                            mode=mode,
                            constraints=constraints,
                            seo=built,
                            graph_cache=graph_cache,
                            chain_depth=chain_depth,
                        )
                        # This relation is now current: drain its deltas so a
                        # later failure in another relation doesn't replay them.
                        for per_source in self._pending.values():
                            per_source.pop(relation, None)
                        self._poisoned.discard(relation)
        except ReproError as exc:
            self.build_seconds = time.perf_counter() - started
            report.build_seconds = self.build_seconds
            report.degraded = True
            report.error = str(exc)
            self._finish_build(report, tracer, guard)
            if on_failure == "raise":
                raise
            self.context = None
            self.degraded = True
            self.build_error = exc
            self.executor = QueryExecutor(
                self.database,
                None,
                guard=self.guard,
                exact_fallback=True,
                use_index=self.use_index,
                observability=self.observability,
            )
            return None
        self.build_seconds = time.perf_counter() - started
        report.build_seconds = self.build_seconds
        self._finish_build(report, tracer, guard)
        self.degraded = False
        self.build_error = None
        seo_changed = any(
            previous_seos.get(relation) is not seo for relation, seo in seos.items()
        )
        if self.context is not None and not seo_changed:
            # Every relation reused its previous SEO object: the existing
            # context's memos (probe caches, subtype memo) stay warm.
            context = self.context
        else:
            context = SeoConditionContext(
                seos[Ontology.ISA],
                seos=seos,
                type_system=self.type_system,
                typing=self.typing,
            )
        self.context = context
        if self.executor is not None and not self.executor.exact_fallback:
            # Copy-on-write executor reuse: compiled plans, probe memos and
            # the cross-probe cache invalidate per context epoch instead of
            # being discarded wholesale with the executor.
            self.executor.set_context(context, seo_changed=seo_changed)
        else:
            self.executor = QueryExecutor(
                self.database,
                context,
                guard=self.guard,
                use_index=self.use_index,
                observability=self.observability,
            )
        return self.context

    def _build_relation(
        self,
        relation: str,
        hierarchies: Mapping[str, Hierarchy],
        constraints: List[InteroperationConstraint],
        mode: str,
        guard: Optional[ResourceGuard],
        options: BuildOptions,
        cache: Optional[SimilarityGraphCache],
        report: BuildReport,
        tracer,
    ) -> Tuple[SimilarityEnhancedOntology, EpsilonGraphCache, int]:
        """Build one relation's SEO, incrementally when the deltas allow.

        Three paths, cheapest first:

        1. **No-op reuse** — not poisoned, same epsilon/mode/constraints,
           and every pending delta for this relation is empty: the
           previous SEO *is* the from-scratch result; return it.
        2. **Delta build** — all pending deltas are leaf-only and the
           previous fusion extends cleanly: skip the condensation, let
           SEA replay the rep-level verdict cache, bump the chain depth.
           The persistent on-disk cache is bypassed (content keys would
           miss anyway, and storing every generation would bloat it).
        3. **Full build** — everything else.  The rep-level verdict cache
           still rides along (seeded, or replayed if epsilon held), so
           even "full" rebuilds after a removal skip re-verification.
        """
        prev = self._relation_state.get(relation)
        incremental_ok = (
            prev is not None
            and relation not in self._poisoned
            and prev.epsilon == self.epsilon
            and prev.mode == mode
            and prev.constraints == constraints
        )
        if incremental_ok:
            pending = {
                name: per_source[relation]
                for name, per_source in self._pending.items()
                if relation in per_source and not per_source[relation].empty
            }
            if not pending:
                report.relations.append(
                    RelationBuild(
                        relation=relation,
                        incremental=True,
                        fusion_incremental=True,
                        chain_depth=prev.chain_depth,
                    )
                )
                tracer.annotate(reused=True)
                return prev.seo, prev.graph_cache, prev.chain_depth
            if all(delta.leaf_only for delta in pending.values()):
                extended = extend_fusion(
                    prev.seo.fusion,
                    {name: delta.added_edges for name, delta in pending.items()},
                    {name: delta.added_nodes for name, delta in pending.items()},
                )
                if extended is not None:
                    chain_depth = prev.chain_depth + 1
                    built = SimilarityEnhancedOntology.build(
                        hierarchies,
                        self.measure,
                        self.epsilon,
                        constraints,
                        mode=mode,
                        guard=guard,
                        options=options,
                        cache=None,
                        fusion=extended,
                        graph_cache=prev.graph_cache,
                        previous=prev.seo,
                    )
                    stats = built.build_stats
                    if stats is not None:
                        stats.chain_depth = chain_depth
                        report.relations.append(
                            RelationBuild.from_stats(relation, stats)
                        )
                        tracer.annotate(incremental=True)
                    return built, prev.graph_cache, chain_depth
        graph_cache = (
            prev.graph_cache
            if prev is not None and prev.epsilon == self.epsilon
            else EpsilonGraphCache()
        )
        built = SimilarityEnhancedOntology.build(
            hierarchies,
            self.measure,
            self.epsilon,
            constraints,
            mode=mode,
            guard=guard,
            options=options,
            cache=cache,
            graph_cache=graph_cache,
        )
        stats = built.build_stats
        if stats is not None:
            report.relations.append(RelationBuild.from_stats(relation, stats))
            tracer.annotate(cache_hit=stats.cache_hit)
        return built, graph_cache, 0

    def _finish_build(
        self,
        report: BuildReport,
        tracer,
        guard: Optional[ResourceGuard],
    ) -> None:
        """Attach the build trace to the report; publish metrics + events."""
        if tracer.root is not None:
            if guard is not None:
                tracer.root.attributes["guard_steps"] = guard.steps
                tracer.root.attributes["guard_stages"] = guard.stage_steps
            tracer.root.attributes["degraded"] = report.degraded
        report.trace = tracer.finish()
        METRICS.counter("build.runs").inc()
        if report.degraded:
            METRICS.counter("build.degraded").inc()
        METRICS.histogram("build.seconds").observe(report.build_seconds)
        self.observability.record_query(
            "build",
            total_seconds=report.build_seconds,
            trace=report.trace,
            extra={
                "measure": report.measure,
                "epsilon": report.epsilon,
                "mode": report.mode,
                "degraded": report.degraded,
                "cache_hits": report.cache_hits,
            },
        )

    @property
    def seo(self) -> SimilarityEnhancedOntology:
        """The built isa SEO (raises if :meth:`build` has not run)."""
        return self._require_context().seo

    def _require_context(self) -> SeoConditionContext:
        if self.context is None:
            if self.degraded:
                raise TossError(
                    "the SEO build failed and the system is degraded to exact "
                    f"matching; similarity features are unavailable "
                    f"(cause: {self.build_error})"
                )
            raise TossError("call build() before querying")
        return self.context

    def _query_executor(self) -> Tuple[QueryExecutor, bool]:
        """The executor to run a query with, plus the degraded flag.

        In degraded mode (the SEO build failed with ``on_failure=
        "degrade"``) queries run through the exact-match fallback executor
        instead of raising; reports are stamped ``degraded=True``.
        """
        if self.executor is not None and (self.context is not None or self.degraded):
            return self.executor, self.degraded
        raise TossError("call build() before querying")

    def ontology_size(self) -> int:
        """Distinct term count of the built isa SEO (the paper's metric)."""
        return self.seo.term_count()

    @property
    def seo_chain_depths(self) -> Dict[str, int]:
        """Per-relation incremental chain depth (0 = last build was full)."""
        return {
            relation: state.chain_depth
            for relation, state in self._relation_state.items()
        }

    def collection_generations(self) -> Dict[str, int]:
        """Per-collection write generation (monotone mutation counter)."""
        return {
            name: self.database.get_collection(name).generation
            for name in self.instances
        }

    # -- the Query Executor ------------------------------------------------------------

    def select(
        self,
        collection: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """TOSS selection through the XPath-rewriting executor.

        ``document_keys`` restricts the scan to a document subset (the
        serving layer's intra-query partitions); results are the serial
        results filtered to those documents, in the same order.
        """
        executor, degraded = self._query_executor()
        report = executor.selection(
            collection, pattern, sl_labels, document_keys=document_keys
        )
        report.degraded = degraded
        return report

    def project(
        self,
        collection: str,
        pattern: PatternTree,
        pl: Sequence[tax_algebra.ProjectionEntry],
    ) -> ExecutionReport:
        """TOSS projection through the executor."""
        executor, degraded = self._query_executor()
        report = executor.projection(collection, pattern, pl)
        report.degraded = degraded
        return report

    def join(
        self,
        left_collection: str,
        right_collection: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """TOSS join through the executor.

        ``document_keys`` restricts the left collection's documents
        (see :meth:`QueryExecutor.join`).
        """
        executor, degraded = self._query_executor()
        report = executor.join(
            left_collection,
            right_collection,
            pattern,
            sl_labels,
            document_keys=document_keys,
        )
        report.degraded = degraded
        return report

    def query(
        self,
        collection: str,
        text: str,
        sl_variables: Iterable[str] = (),
        right_collection: Optional[str] = None,
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """Run a query written in the textual query language.

        Single-element queries run as selections (the element's full
        subtree is returned); two-element queries run as joins and need
        ``right_collection``.  ``sl_variables`` names additional
        ``$variables`` whose subtrees should be inflated.
        ``document_keys`` restricts the (left) collection's scan — the
        serving layer's partition parameter.

        >>> system.query("dblp", 'inproceedings(author ~ "J. Ullman")')
        ... # doctest: +SKIP
        """
        from .parser import parse_query

        parsed = parse_query(text)
        sl_labels = list(parsed.roots) + [
            parsed.label(variable) for variable in sl_variables
        ]
        if len(parsed.roots) == 1:
            return self.select(
                collection, parsed.pattern, sl_labels, document_keys=document_keys
            )
        if len(parsed.roots) == 2:
            if right_collection is None:
                raise TossError(
                    "a two-element query is a join; pass right_collection="
                )
            return self.join(
                collection,
                right_collection,
                parsed.pattern,
                sl_labels,
                document_keys=document_keys,
            )
        raise TossError("queries must have one or two top-level elements")

    def tax_executor(self) -> QueryExecutor:
        """A plain-TAX executor over the same database (the baseline)."""
        return QueryExecutor(self.database, context=None)

    def algebra(self) -> TossAlgebra:
        """The in-memory TOSS algebra bound to the built context."""
        return TossAlgebra(self._require_context())

    def __repr__(self) -> str:
        built = "built" if self.context is not None else "not built"
        return (
            f"TossSystem({len(self.instances)} instances, "
            f"measure={self.measure.name or type(self.measure).__name__}, "
            f"epsilon={self.epsilon}, {built})"
        )
