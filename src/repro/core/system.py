"""The TOSS system facade — Figure 8's three components wired together.

:class:`TossSystem` owns a :class:`~repro.xmldb.Database` (the Xindice
substitute), runs the **Ontology Maker** on every registered instance,
auto-derives cross-source interoperation constraints (shared terms and
lexicon synonyms — the paper's "WordNet ... lead[s] to a set of
interoperation constraints"), lets the DBA add explicit constraints, runs
the **Similarity Enhancer** (canonical fusion + SEA) at :meth:`build`
time, and exposes the **Query Executor** plus the in-memory
:class:`~repro.core.algebra.TossAlgebra`.

Typical session::

    system = TossSystem(measure="levenshtein", epsilon=3.0)
    system.add_instance("dblp", dblp_xml)
    system.add_instance("sigmod", sigmod_xml)
    system.add_constraint("booktitle:dblp = conference:sigmod")
    system.build()
    report = system.select("dblp", pattern, sl_labels=[1])
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ReproError, TossError
from ..guard import ResourceGuard
from ..obs import NULL_OBSERVABILITY, Observability
from ..obs.metrics import REGISTRY as METRICS
from ..ontology.constraints import (
    EqualityConstraint,
    InteroperationConstraint,
    ScopedTerm,
    parse_constraint,
)
from ..ontology.hierarchy import Hierarchy, Ontology
from ..ontology.lexicon import Lexicon
from ..ontology.maker import OntologyMaker
from ..parallel import BuildOptions
from ..similarity.cache import SimilarityGraphCache
from ..similarity.measures import StringSimilarityMeasure, get_measure
from ..similarity.seo import SimilarityEnhancedOntology
from .build_report import BuildReport, RelationBuild
from ..tax import algebra as tax_algebra
from ..tax.pattern import PatternTree
from ..xmldb.database import Database
from ..xmldb.model import XmlNode
from .algebra import TossAlgebra
from .conditions import SeoConditionContext, TypingFunction, default_typing
from .executor import ExecutionReport, QueryExecutor
from .instance import OntologyExtendedInstance
from .types import TypeSystem, default_type_system

DocumentInput = Union[str, XmlNode]


class TossSystem:
    """End-to-end TOSS: database + ontologies + SEO + query execution."""

    def __init__(
        self,
        measure: "str | StringSimilarityMeasure" = "levenshtein",
        epsilon: float = 3.0,
        maker: Optional[OntologyMaker] = None,
        type_system: Optional[TypeSystem] = None,
        typing: TypingFunction = default_typing,
        max_document_bytes: Optional[int] = None,
        guard: Optional[ResourceGuard] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_index: bool = True,
        observability: Optional[Observability] = None,
    ) -> None:
        self.measure = get_measure(measure) if isinstance(measure, str) else measure
        self.epsilon = epsilon
        self.maker = maker if maker is not None else OntologyMaker()
        self.type_system = type_system if type_system is not None else default_type_system()
        self.typing = typing
        if max_document_bytes is None:
            self.database = Database()
        else:
            self.database = Database(max_document_bytes)
        self.instances: Dict[str, OntologyExtendedInstance] = {}
        self._constraints: Dict[str, List[InteroperationConstraint]] = {}
        self.context: Optional[SeoConditionContext] = None
        self.executor: Optional[QueryExecutor] = None
        self.build_seconds: float = 0.0
        #: Default resource guard for builds and queries (None = unbounded).
        self.guard = guard
        #: True when the last build failed and queries run in exact-match
        #: fallback mode (see :meth:`build` with ``on_failure="degrade"``).
        self.degraded: bool = False
        #: The exception that forced degradation, for diagnostics.
        self.build_error: Optional[ReproError] = None
        #: Default worker count for the similarity-graph phase (None = 1).
        self.workers = workers if workers is not None else 1
        #: Persistent similarity-graph cache (None = caching disabled).
        self.seo_cache: Optional[SimilarityGraphCache] = (
            SimilarityGraphCache(cache_dir) if cache_dir else None
        )
        #: :class:`~repro.core.build_report.BuildReport` of the last build.
        self.build_report: Optional[BuildReport] = None
        #: Prune query scans through the collection search indexes
        #: (ablatable; threaded into every executor this system creates).
        self.use_index = use_index
        #: Tracing + sink configuration, threaded into every executor this
        #: system creates and into :meth:`build`'s trace.  The shared
        #: no-op instance by default.
        self.observability = (
            observability if observability is not None else NULL_OBSERVABILITY
        )

    # -- administration ---------------------------------------------------------

    def set_observability(self, observability: Observability) -> None:
        """Swap the tracing/sink configuration, including on a loaded system.

        :func:`~repro.core.persistence.load_system` constructs the
        executor before the caller can pass ``observability=``, so the
        CLI (``db trace``, ``query --load``) attaches it afterwards.
        """
        self.observability = observability
        if self.executor is not None:
            self.executor.observability = observability

    def add_instance(
        self,
        name: str,
        documents: "DocumentInput | Sequence[DocumentInput]",
        ontology: Optional[Ontology] = None,
    ) -> OntologyExtendedInstance:
        """Register a source: store its documents, build (or take) its ontology."""
        if name in self.instances:
            raise TossError(f"instance {name!r} is already registered")
        if isinstance(documents, (str, XmlNode)):
            documents = [documents]
        collection = self.database.create_collection(name)
        roots: List[XmlNode] = []
        for index, document in enumerate(documents):
            roots.append(collection.add_document(f"{name}-{index}", document))
        if ontology is None:
            ontology = self.maker.make_combined(roots)
        instance = OntologyExtendedInstance(name, roots, ontology, self.typing)
        self.instances[name] = instance
        self.context = None  # a new instance invalidates any built SEO
        return instance

    def add_documents(
        self,
        name: str,
        documents: "DocumentInput | Sequence[DocumentInput]",
    ) -> OntologyExtendedInstance:
        """Append documents to an existing instance.

        The instance's ontology is re-extracted over all of its documents
        and the built SEO (if any) is invalidated — the next query needs a
        :meth:`build`.  This mirrors real operation: data loads are
        incremental, the SEO precomputation is batched.
        """
        try:
            instance = self.instances[name]
        except KeyError:
            raise TossError(f"no instance named {name!r}; use add_instance") from None
        if isinstance(documents, (str, XmlNode)):
            documents = [documents]
        collection = self.database.get_collection(name)
        start = len(collection)
        roots = list(instance.trees)
        for offset, document in enumerate(documents):
            roots.append(
                collection.add_document(f"{name}-{start + offset}", document)
            )
        ontology = self.maker.make_combined(roots)
        updated = OntologyExtendedInstance(name, roots, ontology, self.typing)
        self.instances[name] = updated
        self.context = None
        return updated

    def add_constraint(
        self,
        constraint: "str | InteroperationConstraint",
        relation: str = Ontology.ISA,
    ) -> InteroperationConstraint:
        """Add a DBA interoperation constraint for one relation."""
        if isinstance(constraint, str):
            constraint = parse_constraint(constraint)
        self._constraints.setdefault(relation, []).append(constraint)
        self.context = None
        return constraint

    # -- the Similarity Enhancer --------------------------------------------------

    def _auto_constraints(
        self, relation: str, hierarchies: Mapping[str, Hierarchy]
    ) -> List[InteroperationConstraint]:
        """Cross-source equalities from shared terms and lexicon synonyms."""
        constraints: List[InteroperationConstraint] = []
        lexicon: Lexicon = self.maker.lexicon
        names = list(hierarchies)
        for first, second in itertools.combinations(names, 2):
            terms_first = hierarchies[first].terms
            terms_second = hierarchies[second].terms
            for term in terms_first:
                if term in terms_second:
                    constraints.append(
                        EqualityConstraint(
                            ScopedTerm(term, first), ScopedTerm(term, second)
                        )
                    )
                for synonym in lexicon.synonyms(str(term)):
                    if synonym != term and synonym in terms_second:
                        constraints.append(
                            EqualityConstraint(
                                ScopedTerm(term, first), ScopedTerm(synonym, second)
                            )
                        )
        return constraints

    def build(
        self,
        epsilon: Optional[float] = None,
        relations: Iterable[str] = (Ontology.ISA, Ontology.PART_OF),
        mode: str = "order-safe",
        guard: Optional[ResourceGuard] = None,
        on_failure: str = "raise",
        workers: Optional[int] = None,
        candidate_filter: Optional[bool] = None,
        parallel_threshold: Optional[int] = None,
        use_cache: bool = True,
    ) -> Optional[SeoConditionContext]:
        """Fuse all instance ontologies and similarity-enhance them.

        This is the precomputation step of Section 6 ("we precompute an
        SEO during integration"); its wall-clock cost is recorded in
        :attr:`build_seconds`.  Must be re-run after adding instances or
        constraints; queries before :meth:`build` raise.

        ``mode`` defaults to SEA's always-consistent ``"order-safe"``
        policy (similar terms merge only when they play the same
        structural role); pass ``"strict"`` for Figure-12-verbatim
        behaviour, which may raise
        :class:`~repro.errors.SimilarityInconsistencyError` (Definition 9).

        ``guard`` (default: the system's guard) bounds the SEO
        precomputation with a deadline / step budget.  ``on_failure``
        selects what happens when the build raises a
        :class:`~repro.errors.ReproError` (inconsistency, bad constraint,
        guard timeout...): ``"raise"`` propagates it; ``"degrade"``
        records it in :attr:`build_error`, flips :attr:`degraded` and
        wires an exact-match fallback executor — similarity queries keep
        working with plain TAX semantics and their
        :class:`~repro.core.executor.ExecutionReport` carries
        ``degraded=True``.  Returns None when degraded.

        ``workers`` / ``candidate_filter`` override the system defaults
        for the similarity-graph phase (see
        :class:`~repro.parallel.BuildOptions`); ``use_cache=False``
        bypasses the persistent similarity-graph cache for this build
        only.  The full outcome lands in :attr:`build_report`.
        """
        if on_failure not in ("raise", "degrade"):
            raise ValueError(
                f"on_failure must be 'raise' or 'degrade', got {on_failure!r}"
            )
        if not self.instances:
            raise TossError("register at least one instance before build()")
        if epsilon is not None:
            self.epsilon = epsilon
        guard = guard if guard is not None else self.guard
        options = BuildOptions(workers=self.workers).with_overrides(
            workers=workers,
            candidate_filter=candidate_filter,
            parallel_threshold=parallel_threshold,
        )
        cache = self.seo_cache if use_cache else None
        report = BuildReport(
            measure=self.measure.name or type(self.measure).__name__,
            epsilon=self.epsilon,
            mode=mode,
            workers=options.workers,
            candidate_filter=options.candidate_filter,
            cache_used=cache is not None,
        )
        self.build_report = report
        tracer = self.observability.tracer()
        started = time.perf_counter()
        seos: Dict[str, SimilarityEnhancedOntology] = {}
        try:
            with tracer.trace("build", mode=mode, workers=options.workers):
                if guard is not None:
                    guard.start()
                for relation in relations:
                    with tracer.span(f"relation.{relation}"):
                        hierarchies = {
                            name: instance.ontology[relation]
                            for name, instance in self.instances.items()
                        }
                        constraints = self._auto_constraints(relation, hierarchies)
                        constraints.extend(self._constraints.get(relation, ()))
                        seos[relation] = SimilarityEnhancedOntology.build(
                            hierarchies,
                            self.measure,
                            self.epsilon,
                            constraints,
                            mode=mode,
                            guard=guard,
                            options=options,
                            cache=cache,
                        )
                        stats = seos[relation].build_stats
                        if stats is not None:
                            report.relations.append(
                                RelationBuild.from_stats(relation, stats)
                            )
                            tracer.annotate(cache_hit=stats.cache_hit)
        except ReproError as exc:
            self.build_seconds = time.perf_counter() - started
            report.build_seconds = self.build_seconds
            report.degraded = True
            report.error = str(exc)
            self._finish_build(report, tracer, guard)
            if on_failure == "raise":
                raise
            self.context = None
            self.degraded = True
            self.build_error = exc
            self.executor = QueryExecutor(
                self.database,
                None,
                guard=self.guard,
                exact_fallback=True,
                use_index=self.use_index,
                observability=self.observability,
            )
            return None
        self.build_seconds = time.perf_counter() - started
        report.build_seconds = self.build_seconds
        self._finish_build(report, tracer, guard)
        self.degraded = False
        self.build_error = None
        self.context = SeoConditionContext(
            seos[Ontology.ISA],
            seos=seos,
            type_system=self.type_system,
            typing=self.typing,
        )
        self.executor = QueryExecutor(
            self.database,
            self.context,
            guard=self.guard,
            use_index=self.use_index,
            observability=self.observability,
        )
        return self.context

    def _finish_build(
        self,
        report: BuildReport,
        tracer,
        guard: Optional[ResourceGuard],
    ) -> None:
        """Attach the build trace to the report; publish metrics + events."""
        if tracer.root is not None:
            if guard is not None:
                tracer.root.attributes["guard_steps"] = guard.steps
                tracer.root.attributes["guard_stages"] = guard.stage_steps
            tracer.root.attributes["degraded"] = report.degraded
        report.trace = tracer.finish()
        METRICS.counter("build.runs").inc()
        if report.degraded:
            METRICS.counter("build.degraded").inc()
        METRICS.histogram("build.seconds").observe(report.build_seconds)
        self.observability.record_query(
            "build",
            total_seconds=report.build_seconds,
            trace=report.trace,
            extra={
                "measure": report.measure,
                "epsilon": report.epsilon,
                "mode": report.mode,
                "degraded": report.degraded,
                "cache_hits": report.cache_hits,
            },
        )

    @property
    def seo(self) -> SimilarityEnhancedOntology:
        """The built isa SEO (raises if :meth:`build` has not run)."""
        return self._require_context().seo

    def _require_context(self) -> SeoConditionContext:
        if self.context is None:
            if self.degraded:
                raise TossError(
                    "the SEO build failed and the system is degraded to exact "
                    f"matching; similarity features are unavailable "
                    f"(cause: {self.build_error})"
                )
            raise TossError("call build() before querying")
        return self.context

    def _query_executor(self) -> Tuple[QueryExecutor, bool]:
        """The executor to run a query with, plus the degraded flag.

        In degraded mode (the SEO build failed with ``on_failure=
        "degrade"``) queries run through the exact-match fallback executor
        instead of raising; reports are stamped ``degraded=True``.
        """
        if self.executor is not None and (self.context is not None or self.degraded):
            return self.executor, self.degraded
        raise TossError("call build() before querying")

    def ontology_size(self) -> int:
        """Distinct term count of the built isa SEO (the paper's metric)."""
        return self.seo.term_count()

    # -- the Query Executor ------------------------------------------------------------

    def select(
        self,
        collection: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """TOSS selection through the XPath-rewriting executor.

        ``document_keys`` restricts the scan to a document subset (the
        serving layer's intra-query partitions); results are the serial
        results filtered to those documents, in the same order.
        """
        executor, degraded = self._query_executor()
        report = executor.selection(
            collection, pattern, sl_labels, document_keys=document_keys
        )
        report.degraded = degraded
        return report

    def project(
        self,
        collection: str,
        pattern: PatternTree,
        pl: Sequence[tax_algebra.ProjectionEntry],
    ) -> ExecutionReport:
        """TOSS projection through the executor."""
        executor, degraded = self._query_executor()
        report = executor.projection(collection, pattern, pl)
        report.degraded = degraded
        return report

    def join(
        self,
        left_collection: str,
        right_collection: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """TOSS join through the executor.

        ``document_keys`` restricts the left collection's documents
        (see :meth:`QueryExecutor.join`).
        """
        executor, degraded = self._query_executor()
        report = executor.join(
            left_collection,
            right_collection,
            pattern,
            sl_labels,
            document_keys=document_keys,
        )
        report.degraded = degraded
        return report

    def query(
        self,
        collection: str,
        text: str,
        sl_variables: Iterable[str] = (),
        right_collection: Optional[str] = None,
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """Run a query written in the textual query language.

        Single-element queries run as selections (the element's full
        subtree is returned); two-element queries run as joins and need
        ``right_collection``.  ``sl_variables`` names additional
        ``$variables`` whose subtrees should be inflated.
        ``document_keys`` restricts the (left) collection's scan — the
        serving layer's partition parameter.

        >>> system.query("dblp", 'inproceedings(author ~ "J. Ullman")')
        ... # doctest: +SKIP
        """
        from .parser import parse_query

        parsed = parse_query(text)
        sl_labels = list(parsed.roots) + [
            parsed.label(variable) for variable in sl_variables
        ]
        if len(parsed.roots) == 1:
            return self.select(
                collection, parsed.pattern, sl_labels, document_keys=document_keys
            )
        if len(parsed.roots) == 2:
            if right_collection is None:
                raise TossError(
                    "a two-element query is a join; pass right_collection="
                )
            return self.join(
                collection,
                right_collection,
                parsed.pattern,
                sl_labels,
                document_keys=document_keys,
            )
        raise TossError("queries must have one or two top-level elements")

    def tax_executor(self) -> QueryExecutor:
        """A plain-TAX executor over the same database (the baseline)."""
        return QueryExecutor(self.database, context=None)

    def algebra(self) -> TossAlgebra:
        """The in-memory TOSS algebra bound to the built context."""
        return TossAlgebra(self._require_context())

    def __repr__(self) -> str:
        built = "built" if self.context is not None else "not built"
        return (
            f"TossSystem({len(self.instances)} instances, "
            f"measure={self.measure.name or type(self.measure).__name__}, "
            f"epsilon={self.epsilon}, {built})"
        )
