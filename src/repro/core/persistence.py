"""Whole-system persistence: save a built TossSystem, reload it for queries.

Combines the two lower-level persistence layers — the XML database
(:mod:`repro.xmldb.storage`) and the similarity enhanced ontologies
(:mod:`repro.similarity.persistence`) — plus the system configuration into
one directory:

    root/
      system.json          measure, epsilon, DBA constraints
      database/            collections as plain XML files + manifest
      seo/<relation>.json  one persisted SEO per relation

A loaded system is immediately queryable (its SEOs are restored verbatim,
not rebuilt); calling :meth:`~repro.core.system.TossSystem.build` on it
recomputes everything from the restored documents, which is also how
constraint edits are applied after loading.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..errors import ReproError, SimilarityError, TossError
from ..ioutils import atomic_write_text
from ..ontology.constraints import parse_constraint
from ..ontology.hierarchy import Ontology
from ..similarity.persistence import read_seo, save_seo
from ..xmldb.storage import load_database, save_database
from .build_report import BuildReport
from .conditions import SeoConditionContext
from .executor import QueryExecutor
from .instance import OntologyExtendedInstance
from .system import TossSystem

_SYSTEM_FILE = "system.json"
_DATABASE_DIR = "database"
_SEO_DIR = "seo"
_BUILD_REPORT_FILE = "build_report.json"


def save_system(system: TossSystem, root_dir: str) -> None:
    """Persist a *built* system (database, SEOs, configuration)."""
    if system.context is None:
        raise TossError("build() the system before saving it")
    if not system.measure.name:
        raise TossError(
            "only registry measures can be persisted; register the custom "
            "measure with repro.similarity.register_measure first"
        )
    os.makedirs(root_dir, exist_ok=True)
    save_database(system.database, os.path.join(root_dir, _DATABASE_DIR))
    seo_dir = os.path.join(root_dir, _SEO_DIR)
    os.makedirs(seo_dir, exist_ok=True)
    for relation, seo in system.context.seos.items():
        save_seo(seo, os.path.join(seo_dir, f"{relation}.json"))
    if system.build_report is not None:
        atomic_write_text(
            os.path.join(root_dir, _BUILD_REPORT_FILE),
            json.dumps(system.build_report.to_dict(), indent=2, sort_keys=True),
        )

    constraints: Dict[str, List[str]] = {
        relation: [repr(c) for c in items]
        for relation, items in system._constraints.items()
    }
    payload = {
        "format": 1,
        "measure": system.measure.name,
        "epsilon": system.epsilon,
        "instances": sorted(system.instances),
        "constraints": constraints,
        "relations": sorted(system.context.seos),
    }
    # The system file is written last and atomically: a crash anywhere in
    # save_system leaves either the previous complete system or the new one.
    atomic_write_text(
        os.path.join(root_dir, _SYSTEM_FILE),
        json.dumps(payload, indent=2, sort_keys=True),
    )


def load_build_report(root_dir: str) -> "BuildReport | None":
    """The persisted build report of a saved system, or None.

    Best-effort: the report is diagnostics, so a missing or damaged file
    never blocks loading the system itself.
    """
    path = os.path.join(root_dir, _BUILD_REPORT_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return BuildReport.from_dict(json.load(handle))
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


def load_system(root_dir: str, on_corruption: str = "raise") -> TossSystem:
    """Restore a system saved with :func:`save_system`, ready to query.

    ``on_corruption`` is forwarded to
    :func:`~repro.xmldb.storage.load_database`; in ``"quarantine"`` mode
    damaged document files are moved aside instead of aborting the load
    (see ``system.database.recovery_report``), and unreadable SEO files
    are recomputed from the restored documents via
    :meth:`~repro.core.system.TossSystem.build` rather than raised.
    """
    path = os.path.join(root_dir, _SYSTEM_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise TossError(f"no saved system at {root_dir}") from None
    except json.JSONDecodeError as exc:
        raise TossError(f"corrupt system file at {path}: {exc}") from exc
    if payload.get("format") != 1:
        raise TossError(f"unsupported system format {payload.get('format')!r}")

    system = TossSystem(
        measure=payload["measure"], epsilon=float(payload["epsilon"])
    )
    system.database = load_database(
        os.path.join(root_dir, _DATABASE_DIR), on_corruption=on_corruption
    )
    system.build_report = load_build_report(root_dir)

    # Restore instances with freshly extracted ontologies (deterministic,
    # cheap, and only consulted by a future rebuild — the restored SEOs
    # below carry the queried state).
    for name in payload.get("instances", ()):
        if on_corruption == "quarantine" and name not in system.database:
            continue  # the whole collection was lost to quarantine
        collection = system.database.get_collection(name)
        roots = collection.roots()
        ontology = system.maker.make_combined(roots)
        system.instances[name] = OntologyExtendedInstance(
            name, roots, ontology, system.typing
        )

    for relation, texts in payload.get("constraints", {}).items():
        for text in texts:
            system._constraints.setdefault(relation, []).append(
                parse_constraint(text)
            )

    seos = {}
    damaged: List[str] = []
    for relation in payload.get("relations", ()):
        seo_path = os.path.join(root_dir, _SEO_DIR, f"{relation}.json")
        try:
            seos[relation] = read_seo(seo_path)
        except (OSError, SimilarityError, KeyError, TypeError, ValueError) as exc:
            if on_corruption != "quarantine":
                raise TossError(
                    f"corrupt or missing SEO file {seo_path}: {exc}"
                ) from exc
            damaged.append(relation)
    if damaged and system.instances:
        # The SEO cache is expensive but recomputable: rebuild all
        # relations from the restored documents instead of failing.
        system.build(
            relations=tuple(payload.get("relations", ())), on_failure="degrade"
        )
        return system
    isa_seo = seos.get(Ontology.ISA)
    if isa_seo is None:
        if on_corruption == "quarantine":
            # nothing left to rebuild from (documents were quarantined
            # too): hand back an exact-match system rather than nothing
            system.degraded = True
            system.executor = QueryExecutor(
                system.database, None, guard=system.guard, exact_fallback=True
            )
            return system
        raise TossError("saved system lacks an isa SEO")
    system.context = SeoConditionContext(
        isa_seo, seos=seos, type_system=system.type_system, typing=system.typing
    )
    system.executor = QueryExecutor(system.database, system.context)
    return system
