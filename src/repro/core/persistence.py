"""Whole-system persistence: save a built TossSystem, reload it for queries.

Combines the two lower-level persistence layers — the XML database
(:mod:`repro.xmldb.storage`) and the similarity enhanced ontologies
(:mod:`repro.similarity.persistence`) — plus the system configuration into
one directory:

    root/
      system.json          measure, epsilon, DBA constraints
      database/            collections as plain XML files + manifest
      seo/<relation>.json  one persisted SEO per relation

A loaded system is immediately queryable (its SEOs are restored verbatim,
not rebuilt); calling :meth:`~repro.core.system.TossSystem.build` on it
recomputes everything from the restored documents, which is also how
constraint edits are applied after loading.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..errors import TossError
from ..ontology.constraints import parse_constraint
from ..ontology.hierarchy import Ontology
from ..similarity.persistence import read_seo, save_seo
from ..xmldb.storage import load_database, save_database
from .conditions import SeoConditionContext
from .executor import QueryExecutor
from .instance import OntologyExtendedInstance
from .system import TossSystem

_SYSTEM_FILE = "system.json"
_DATABASE_DIR = "database"
_SEO_DIR = "seo"


def save_system(system: TossSystem, root_dir: str) -> None:
    """Persist a *built* system (database, SEOs, configuration)."""
    if system.context is None:
        raise TossError("build() the system before saving it")
    if not system.measure.name:
        raise TossError(
            "only registry measures can be persisted; register the custom "
            "measure with repro.similarity.register_measure first"
        )
    os.makedirs(root_dir, exist_ok=True)
    save_database(system.database, os.path.join(root_dir, _DATABASE_DIR))
    seo_dir = os.path.join(root_dir, _SEO_DIR)
    os.makedirs(seo_dir, exist_ok=True)
    for relation, seo in system.context.seos.items():
        save_seo(seo, os.path.join(seo_dir, f"{relation}.json"))

    constraints: Dict[str, List[str]] = {
        relation: [repr(c) for c in items]
        for relation, items in system._constraints.items()
    }
    payload = {
        "format": 1,
        "measure": system.measure.name,
        "epsilon": system.epsilon,
        "instances": sorted(system.instances),
        "constraints": constraints,
        "relations": sorted(system.context.seos),
    }
    with open(os.path.join(root_dir, _SYSTEM_FILE), "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2, sort_keys=True)


def load_system(root_dir: str) -> TossSystem:
    """Restore a system saved with :func:`save_system`, ready to query."""
    path = os.path.join(root_dir, _SYSTEM_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise TossError(f"no saved system at {root_dir}") from None
    if payload.get("format") != 1:
        raise TossError(f"unsupported system format {payload.get('format')!r}")

    system = TossSystem(
        measure=payload["measure"], epsilon=float(payload["epsilon"])
    )
    system.database = load_database(os.path.join(root_dir, _DATABASE_DIR))

    # Restore instances with freshly extracted ontologies (deterministic,
    # cheap, and only consulted by a future rebuild — the restored SEOs
    # below carry the queried state).
    for name in payload.get("instances", ()):
        collection = system.database.get_collection(name)
        roots = collection.roots()
        ontology = system.maker.make_combined(roots)
        system.instances[name] = OntologyExtendedInstance(
            name, roots, ontology, system.typing
        )

    for relation, texts in payload.get("constraints", {}).items():
        for text in texts:
            system._constraints.setdefault(relation, []).append(
                parse_constraint(text)
            )

    seos = {
        relation: read_seo(os.path.join(root_dir, _SEO_DIR, f"{relation}.json"))
        for relation in payload.get("relations", ())
    }
    isa_seo = seos.get(Ontology.ISA)
    if isa_seo is None:
        raise TossError("saved system lacks an isa SEO")
    system.context = SeoConditionContext(
        isa_seo, seos=seos, type_system=system.type_system, typing=system.typing
    )
    system.executor = QueryExecutor(system.database, system.context)
    return system
