"""The Query Executor — component (3) of the TOSS architecture.

Section 6 describes the prototype's execution pipeline, whose three timed
phases all experiments report:

(i)   parse the pattern tree and **rewrite** it into XPath queries, with
      semantic conditions expanded through the precomputed SEO;
(ii)  **execute** the XPath queries on the Xindice system (here:
      :class:`repro.xmldb.Database`);
(iii) **parse the results** returned and convert them to the form defined
      by TAX (witness trees), verifying the full condition.

Phase (ii) is a sound prefilter: it finds candidate subtree roots whose
tag/content constraints can be pushed into XPath.  Phase (iii) then runs
the real TAX/TOSS embedding machinery over just those candidates, so
conditions that XPath cannot express (cross-node similarity, typed
comparisons, negation) are still answered exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import QueryExecutionError
from ..guard import ResourceGuard
from ..tax import algebra as tax_algebra
from ..tax.tree import dedupe
from ..tax.conditions import (
    And,
    Comparison,
    Condition,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Or,
    TrueCondition,
    required_tags,
)
from ..tax.pattern import AD, PC, PatternTree
from ..xmldb.database import Database
from ..xmldb.model import XmlNode
from .conditions import SeoConditionContext, rewrite_condition


@dataclass
class QueryPlan:
    """:meth:`QueryExecutor.explain` output: the plan, not the answers."""

    original: str
    rewritten: str
    xpath_queries: List[str]
    rewrite_seconds: float

    def __str__(self) -> str:
        lines = [
            f"original : {self.original}",
            f"rewritten: {self.rewritten}",
        ]
        for index, xpath in enumerate(self.xpath_queries):
            lines.append(f"xpath[{index}] : {xpath}")
        return "\n".join(lines)


@dataclass
class ExecutionReport:
    """A query's results plus the paper's three timing components."""

    results: List[XmlNode]
    rewrite_seconds: float
    xpath_seconds: float
    convert_seconds: float
    xpath_queries: List[str] = field(default_factory=list)
    candidates: int = 0
    #: semantic-hook invocations during this query (Section 6's "accesses
    #: to the ontology"; 0 for plain TAX).
    ontology_accesses: int = 0
    #: True when the query ran in degraded mode (SEO build failed or timed
    #: out; semantic operators fell back to exact TAX matching).
    degraded: bool = False

    @property
    def total_seconds(self) -> float:
        return self.rewrite_seconds + self.xpath_seconds + self.convert_seconds

    def __repr__(self) -> str:
        return (
            f"ExecutionReport({len(self.results)} results in "
            f"{self.total_seconds:.4f}s; rewrite={self.rewrite_seconds:.4f} "
            f"xpath={self.xpath_seconds:.4f} convert={self.convert_seconds:.4f})"
        )


# ---------------------------------------------------------------------------
# Pattern -> XPath compilation
# ---------------------------------------------------------------------------


def _xpath_literal(value: str) -> Optional[str]:
    """Quote a string for XPath, or None when it cannot be quoted."""
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    return None  # mixed quotes: leave for the verification phase


def _content_predicates(condition: Condition) -> Dict[int, List[str]]:
    """Per-label XPath predicate fragments implied by the condition.

    Collects, from the positive conjunctive structure, content equalities
    (including disjunctions over one label), ``contains`` atoms and numeric
    content comparisons.  Sound, not complete — anything unrecognised is
    simply not pushed down.
    """
    predicates: Dict[int, List[str]] = {}

    def add(label: int, fragment: str) -> None:
        predicates.setdefault(label, []).append(fragment)

    def equality_fragment(atom: Comparison) -> Optional[Tuple[int, str]]:
        left, right = atom.left, atom.right
        if isinstance(left, NodeContent) and isinstance(right, Constant):
            literal = _xpath_literal(right.value)
            if literal is not None:
                return (left.label, f". = {literal}")
        if isinstance(right, NodeContent) and isinstance(left, Constant):
            literal = _xpath_literal(left.value)
            if literal is not None:
                return (right.label, f". = {literal}")
        return None

    def visit(node: Condition) -> None:
        if isinstance(node, And):
            for operand in node.operands:
                visit(operand)
            return
        if isinstance(node, Comparison):
            if node.op == "=":
                pair = equality_fragment(node)
                if pair is not None:
                    add(pair[0], pair[1])
                return
            if node.op in ("<", "<=", ">", ">="):
                left, right = node.left, node.right
                if isinstance(left, NodeContent) and isinstance(right, Constant):
                    try:
                        number = float(right.value)
                    except ValueError:
                        return
                    add(left.label, f"number(.) {node.op} {number:g}")
                return
            return
        if isinstance(node, Contains):
            # Contains is case-insensitive while XPath contains() is not,
            # so pushing it down would be unsound (the prefilter could
            # drop true matches); it is evaluated in the verify phase.
            return
        if isinstance(node, Or):
            fragments: List[Tuple[int, str]] = []
            for operand in node.operands:
                if not isinstance(operand, Comparison) or operand.op != "=":
                    return
                pair = equality_fragment(operand)
                if pair is None:
                    return
                fragments.append(pair)
            labels = {label for label, _ in fragments}
            if len(labels) == 1:
                label = labels.pop()
                add(label, "(" + " or ".join(f for _, f in fragments) + ")")
            return

    visit(condition)
    return predicates


def compile_pattern_to_xpath(
    pattern: PatternTree, condition: Optional[Condition] = None
) -> str:
    """Compile a pattern tree (+ an already-rewritten condition) to XPath.

    The query selects candidate images of the pattern *root*; structure
    below the root becomes nested existence predicates (`pc` -> child
    path, `ad` -> ``.//`` path) and per-node content constraints become
    value predicates.
    """
    if condition is None:
        condition = pattern.condition
    tags = required_tags(condition)
    contents = _content_predicates(condition)

    def tag_expr(label: int) -> str:
        restriction = tags.get(label)
        if restriction is not None and len(restriction) == 1:
            return next(iter(restriction))
        return "*"

    def name_predicate(label: int) -> Optional[str]:
        restriction = tags.get(label)
        if restriction is None or len(restriction) <= 1:
            return None
        alternatives = " or ".join(
            f"name() = {_xpath_literal(tag)}" for tag in sorted(restriction)
        )
        return f"({alternatives})"

    def node_expression(label: int, is_root: bool) -> str:
        node = pattern.node(label)
        if is_root:
            prefix = "//"
        elif node.edge == AD:
            prefix = ".//"
        else:
            prefix = ""
        expression = prefix + tag_expr(label)
        predicates: List[str] = []
        name_pred = name_predicate(label)
        if name_pred is not None:
            predicates.append(name_pred)
        predicates.extend(contents.get(label, ()))
        for child in pattern.children(label):
            predicates.append(node_expression(child.label, is_root=False))
        return expression + "".join(f"[{p}]" for p in predicates)

    return node_expression(pattern.root, is_root=True)


def _subtree_pattern(pattern: PatternTree, new_root: int) -> PatternTree:
    """The sub-pattern rooted at ``new_root`` (structure only)."""
    sub = PatternTree()
    sub.add_node(new_root)

    def copy_children(label: int) -> None:
        for child in pattern.children(label):
            sub.add_node(child.label, parent=label, edge=child.edge)
            copy_children(child.label)

    copy_children(new_root)
    return sub


def _side_condition(condition: Condition, side_labels: Set[int]) -> Condition:
    """Conjuncts of ``condition`` that mention only ``side_labels``."""
    kept: List[Condition] = []

    def visit(node: Condition) -> None:
        if isinstance(node, And):
            for operand in node.operands:
                visit(operand)
            return
        if node.labels() and node.labels() <= side_labels:
            kept.append(node)

    visit(condition)
    if not kept:
        return TrueCondition()
    if len(kept) == 1:
        return kept[0]
    return And(*kept)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class QueryExecutor:
    """Runs TOSS (or plain TAX) pattern queries against the database."""

    def __init__(
        self,
        database: Database,
        context: Optional[SeoConditionContext] = None,
        similarity_hash_join: bool = True,
        guard: Optional[ResourceGuard] = None,
        exact_fallback: bool = False,
    ) -> None:
        self.database = database
        self.context = context
        #: Use the length-bucketed similarity hash join for cross-side
        #: ``~`` conditions instead of the naive product (ablatable).
        self.similarity_hash_join = similarity_hash_join
        #: Default per-query resource guard (restarted at each query); a
        #: per-call ``guard=`` argument overrides it.
        self.guard = guard
        #: With no SEO context, evaluate semantic atoms as exact string
        #: matches instead of raising (degraded mode; see
        #: :class:`~repro.core.conditions.ExactFallbackContext`).
        self.exact_fallback = exact_fallback

    def _rewrite(self, pattern: PatternTree) -> Tuple[Condition, float]:
        started = time.perf_counter()
        if self.context is not None:
            condition = rewrite_condition(pattern.condition, self.context)
        else:
            condition = pattern.condition
        return condition, time.perf_counter() - started

    def _evaluation_context(self):
        from ..tax.conditions import DEFAULT_CONTEXT

        if self.context is not None:
            return self.context
        if self.exact_fallback:
            from .conditions import EXACT_FALLBACK_CONTEXT

            return EXACT_FALLBACK_CONTEXT
        return DEFAULT_CONTEXT

    def _start_guard(self, guard: Optional[ResourceGuard]) -> Optional[ResourceGuard]:
        """Resolve the effective guard for one query and restart its clock."""
        guard = guard if guard is not None else self.guard
        if guard is not None:
            guard.start()
        return guard

    def _guarded_per_tree(
        self,
        candidates: Sequence[XmlNode],
        guard: Optional[ResourceGuard],
        run,
    ) -> List[XmlNode]:
        """Run a per-tree algebra operator over ``candidates`` under a guard.

        Selection and projection treat input trees independently, so with
        a guard active the candidates are processed one at a time with a
        deadline/step check between each — a pathological verification
        phase is interrupted instead of blocking until the end.
        """
        if guard is None:
            return run(list(candidates))
        results: List[XmlNode] = []
        for candidate in candidates:
            guard.tick(what="result verification")
            results.extend(run([candidate]))
            guard.check_results(len(results), "query verification")
        return dedupe(results)

    def _accesses(self) -> int:
        return self.context.ontology_accesses if self.context is not None else 0

    def explain(self, pattern: PatternTree) -> "QueryPlan":
        """The query plan without executing it: rewrite + compiled XPath.

        Useful for debugging recall problems: the plan shows exactly which
        exact-match disjuncts the SEO expanded each semantic atom into.
        """
        condition, rewrite_seconds = self._rewrite(pattern)
        root_children = (
            pattern.children(pattern.root) if len(pattern) > 1 else []
        )
        is_join = (
            len(root_children) == 2
            and pattern.condition.labels()
            and pattern.root not in pattern.condition.labels()
        )
        if is_join:
            xpaths = []
            for child in root_children:
                side = _subtree_pattern(pattern, child.label)
                side.condition = _side_condition(condition, set(side.labels()))
                xpaths.append(compile_pattern_to_xpath(side))
        else:
            xpaths = [compile_pattern_to_xpath(pattern, condition)]
        return QueryPlan(
            original=repr(pattern.condition),
            rewritten=repr(condition),
            xpath_queries=xpaths,
            rewrite_seconds=rewrite_seconds,
        )

    def selection(
        self,
        collection_name: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        guard: Optional[ResourceGuard] = None,
    ) -> ExecutionReport:
        """Execute a selection query: rewrite -> XPath -> verify/convert."""
        guard = self._start_guard(guard)
        accesses_before = self._accesses()
        condition, rewrite_seconds = self._rewrite(pattern)

        started = time.perf_counter()
        xpath = compile_pattern_to_xpath(pattern, condition)
        rewrite_seconds += time.perf_counter() - started

        started = time.perf_counter()
        raw = self.database.xpath(collection_name, xpath, guard=guard)
        candidates = [node for node in raw if isinstance(node, XmlNode)]
        xpath_seconds = time.perf_counter() - started

        started = time.perf_counter()
        # Verify with the original condition when an SEO context is
        # available: semantic atoms evaluate through the SEO index,
        # which is cheaper than the expanded exact-match disjunction.
        verified_pattern = PatternTree(
            pattern.condition if self.context is not None else condition
        )
        _copy_structure(pattern, verified_pattern)
        sl = list(sl_labels)
        results = self._guarded_per_tree(
            candidates,
            guard,
            lambda trees: tax_algebra.selection(
                trees, verified_pattern, sl, self._evaluation_context()
            ),
        )
        convert_seconds = time.perf_counter() - started
        return ExecutionReport(
            results,
            rewrite_seconds,
            xpath_seconds,
            convert_seconds,
            [xpath],
            len(candidates),
            self._accesses() - accesses_before,
        )

    def projection(
        self,
        collection_name: str,
        pattern: PatternTree,
        pl: Sequence[tax_algebra.ProjectionEntry],
        guard: Optional[ResourceGuard] = None,
    ) -> ExecutionReport:
        """Execute a projection query through the same pipeline."""
        guard = self._start_guard(guard)
        accesses_before = self._accesses()
        condition, rewrite_seconds = self._rewrite(pattern)
        started = time.perf_counter()
        xpath = compile_pattern_to_xpath(pattern, condition)
        rewrite_seconds += time.perf_counter() - started

        started = time.perf_counter()
        raw = self.database.xpath(collection_name, xpath, guard=guard)
        candidates = [node for node in raw if isinstance(node, XmlNode)]
        xpath_seconds = time.perf_counter() - started

        started = time.perf_counter()
        # Verify with the original condition when an SEO context is
        # available: semantic atoms evaluate through the SEO index,
        # which is cheaper than the expanded exact-match disjunction.
        verified_pattern = PatternTree(
            pattern.condition if self.context is not None else condition
        )
        _copy_structure(pattern, verified_pattern)
        results = self._guarded_per_tree(
            candidates,
            guard,
            lambda trees: tax_algebra.projection(
                trees, verified_pattern, pl, self._evaluation_context()
            ),
        )
        convert_seconds = time.perf_counter() - started
        return ExecutionReport(
            results,
            rewrite_seconds,
            xpath_seconds,
            convert_seconds,
            [xpath],
            len(candidates),
            self._accesses() - accesses_before,
        )

    def join(
        self,
        left_collection: str,
        right_collection: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        guard: Optional[ResourceGuard] = None,
    ) -> ExecutionReport:
        """Execute a join: per-side XPath prefilter, then product+selection.

        The pattern's root must be the product root (tag
        ``tax_prod_root``) with exactly two child subtrees, the left one
        matching the left collection (Example 13's Figure 14 shape).
        Cross-side conditions (e.g. ``title:1 ~ title:2``) are evaluated in
        the verification phase.
        """
        root_children = pattern.children(pattern.root)
        if len(root_children) != 2:
            raise QueryExecutionError(
                "a join pattern needs exactly two subtrees under the product root"
            )
        guard = self._start_guard(guard)
        accesses_before = self._accesses()
        condition, rewrite_seconds = self._rewrite(pattern)

        started = time.perf_counter()
        sides = []
        for child in root_children:
            side_pattern = _subtree_pattern(pattern, child.label)
            side_labels = set(side_pattern.labels())
            side_pattern.condition = _side_condition(condition, side_labels)
            sides.append((side_pattern, compile_pattern_to_xpath(side_pattern)))
        rewrite_seconds += time.perf_counter() - started

        started = time.perf_counter()
        left_candidates = [
            node
            for node in self.database.xpath(left_collection, sides[0][1], guard=guard)
            if isinstance(node, XmlNode)
        ]
        right_candidates = [
            node
            for node in self.database.xpath(right_collection, sides[1][1], guard=guard)
            if isinstance(node, XmlNode)
        ]
        xpath_seconds = time.perf_counter() - started

        started = time.perf_counter()
        # Verify with the original condition when an SEO context is
        # available: semantic atoms evaluate through the SEO index,
        # which is cheaper than the expanded exact-match disjunction.
        verified_pattern = PatternTree(
            pattern.condition if self.context is not None else condition
        )
        _copy_structure(pattern, verified_pattern)

        sl = list(sl_labels)
        pair_filter = None
        if self.context is not None and self.similarity_hash_join:
            left_labels = set(_subtree_pattern(pattern, root_children[0].label).labels())
            right_labels = set(_subtree_pattern(pattern, root_children[1].label).labels())
            atom = _cross_similarity_atom(pattern.condition, left_labels, right_labels)
            if atom is not None:
                pair_filter = self._similarity_join_pairs(
                    left_candidates, right_candidates, atom, pattern.condition, guard
                )

        if pair_filter is None:
            if guard is None:
                results = tax_algebra.join(
                    left_candidates,
                    right_candidates,
                    verified_pattern,
                    sl,
                    self._evaluation_context(),
                )
            else:
                # Account for the product size up front (the step budget
                # rejects a blow-up before it is materialised), then
                # verify product trees one at a time under the deadline.
                guard.tick(
                    len(left_candidates) * len(right_candidates),
                    what="join product",
                )
                products = tax_algebra.product(left_candidates, right_candidates)
                results = self._guarded_per_tree(
                    products,
                    guard,
                    lambda trees: tax_algebra.selection(
                        trees, verified_pattern, sl, self._evaluation_context()
                    ),
                )
        else:
            products: List[XmlNode] = []
            for left_index, right_index in sorted(pair_filter):
                if guard is not None:
                    guard.tick(what="join product")
                root = XmlNode(tax_algebra.PRODUCT_ROOT_TAG)
                root.append(left_candidates[left_index].copy())
                root.append(right_candidates[right_index].copy())
                products.append(root.renumber())
            results = self._guarded_per_tree(
                products,
                guard,
                lambda trees: tax_algebra.selection(
                    trees, verified_pattern, sl, self._evaluation_context()
                ),
            )
        convert_seconds = time.perf_counter() - started
        return ExecutionReport(
            results,
            rewrite_seconds,
            xpath_seconds,
            convert_seconds,
            [sides[0][1], sides[1][1]],
            len(left_candidates) + len(right_candidates),
            self._accesses() - accesses_before,
        )

    def _similarity_join_pairs(
        self,
        left_candidates: Sequence[XmlNode],
        right_candidates: Sequence[XmlNode],
        atom,
        condition: Condition,
        guard: Optional[ResourceGuard] = None,
    ) -> Set[Tuple[int, int]]:
        """Candidate pairs that can satisfy a cross-side ``~`` conjunct.

        A length-bucketed similarity hash join: right-side values outside
        the ontology are bucketed by string length; each left value probes
        only the buckets the measure's length lower bound allows.  Values
        known to the SEO go through ``seo.similar`` directly (fused terms
        may be "similar" at arbitrary string distance, so the distance
        bucketing must not prune them).  Sound: a pair is dropped only
        when *no* value pair can satisfy the atom.
        """
        assert self.context is not None
        seo = self.context.seo
        measure = seo.measure
        epsilon = seo.epsilon
        tags = required_tags(condition)

        def values_of(candidate: XmlNode, label: int) -> List[str]:
            restriction = tags.get(label)
            return [
                node.text
                for node in candidate.iter()
                if node.text and (restriction is None or node.tag in restriction)
            ]

        left_label = next(iter(atom.left.labels()))
        right_label = next(iter(atom.right.labels()))

        by_length: Dict[int, List[Tuple[int, str]]] = {}
        known_right: List[Tuple[int, str]] = []
        for j, candidate in enumerate(right_candidates):
            for value in values_of(candidate, right_label):
                if value in seo:
                    known_right.append((j, value))
                else:
                    by_length.setdefault(len(value), []).append((j, value))

        radius = int(epsilon)
        pairs: Set[Tuple[int, int]] = set()
        for i, candidate in enumerate(left_candidates):
            if guard is not None:
                guard.tick(what="similarity hash join")
            for value in values_of(candidate, left_label):
                if value in seo:
                    # Known terms may be similar to anything sharing an
                    # SEO node: fall back to the semantic test everywhere.
                    for j, other in known_right:
                        if seo.similar(value, other):
                            pairs.add((i, j))
                    for bucket in by_length.values():
                        for j, other in bucket:
                            if seo.similar(value, other):
                                pairs.add((i, j))
                    continue
                for length in range(len(value) - radius, len(value) + radius + 1):
                    for j, other in by_length.get(length, ()):
                        if (i, j) in pairs:
                            continue
                        if measure.bounded_distance(value, other, epsilon) <= epsilon:
                            pairs.add((i, j))
                for j, other in known_right:
                    if seo.similar(value, other):
                        pairs.add((i, j))
        return pairs


def _cross_similarity_atom(
    condition: Condition, left_labels: Set[int], right_labels: Set[int]
):
    """The first top-level ``~`` conjunct relating content across sides.

    Returns None when the condition has no such conjunct (then the join
    must fall back to the full product).  Both operands must be single
    node-content terms, one per side; the atom orientation is normalised
    so its left term references the left side.
    """
    from .conditions import SimilarTo

    def conjuncts(node: Condition):
        if isinstance(node, And):
            for operand in node.operands:
                yield from conjuncts(operand)
        else:
            yield node

    for atom in conjuncts(condition):
        if not isinstance(atom, SimilarTo):
            continue
        if not isinstance(atom.left, NodeContent) or not isinstance(
            atom.right, NodeContent
        ):
            continue
        left_side = atom.left.labels()
        right_side = atom.right.labels()
        if left_side <= left_labels and right_side <= right_labels:
            return atom
        if left_side <= right_labels and right_side <= left_labels:
            return SimilarTo(atom.right, atom.left)
    return None


def _copy_structure(source: PatternTree, target: PatternTree) -> None:
    """Copy the node/edge structure of ``source`` into the empty ``target``.

    Labels are added in the source's insertion order, which is parent-first
    by :class:`PatternTree`'s construction invariant.
    """
    for label in source.labels():
        node = source.node(label)
        if node.parent is None:
            target.add_node(label)
        else:
            target.add_node(label, parent=node.parent, edge=node.edge)
