"""The Query Executor — component (3) of the TOSS architecture.

Section 6 describes the prototype's execution pipeline, whose three timed
phases all experiments report:

(i)   parse the pattern tree and **rewrite** it into XPath queries, with
      semantic conditions expanded through the precomputed SEO;
(ii)  **execute** the XPath queries on the Xindice system (here:
      :class:`repro.xmldb.Database`);
(iii) **parse the results** returned and convert them to the form defined
      by TAX (witness trees), verifying the full condition.

Phase (ii) is a sound prefilter: it finds candidate subtree roots whose
tag/content constraints can be pushed into XPath.  Phase (iii) then runs
the real TAX/TOSS embedding machinery over just those candidates, so
conditions that XPath cannot express (cross-node similarity, typed
comparisons, negation) are still answered exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import QueryExecutionError
from ..guard import ResourceGuard
from ..lru import LruCache
from ..obs import NULL_OBSERVABILITY, Observability
from ..obs.context import current_request
from ..obs.metrics import DEFAULT_COUNT_BUCKETS, REGISTRY as METRICS
from ..obs.window import WINDOWS
from ..tax import algebra as tax_algebra
from ..tax import batch as tax_batch
from ..tax.compile import compile_batch_steps, compile_condition
from ..tax.tree import dedupe
from ..tax.conditions import (
    And,
    Comparison,
    Condition,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Or,
    TrueCondition,
    required_tags,
)
from ..tax.pattern import AD, PC, PatternTree
from ..xmldb.database import Database
from ..xmldb.model import XmlNode
from .conditions import SeoConditionContext, rewrite_condition
from .planner import (
    PlanSpec,
    build_plan_spec,
    describe_verify_strategy,
    find_cross_probe,
    has_semantic_atom,
    prune_candidates,
    prune_join_docs,
)

#: Largest ``or``-alternative chain pushed into an XPath predicate.  SEO
#: expansions can produce hundreds of alternatives; past this cap the
#: disjunction stays out of the XPath prefilter (candidates grow, results
#: do not change — the verification phase evaluates the full condition).
MAX_OR_ALTERNATIVES = 32

#: Default size of the executor's compiled-plan LRU cache.
DEFAULT_PLAN_CACHE_SIZE = 128


@dataclass
class QueryPlan:
    """:meth:`QueryExecutor.explain` output: the plan, not the answers."""

    original: str
    rewritten: str
    xpath_queries: List[str]
    rewrite_seconds: float
    #: Human-readable index-pruning plan (one probe per line; empty when
    #: the executor runs without an index).
    index_plan: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [
            f"original : {self.original}",
            f"rewritten: {self.rewritten}",
        ]
        for index, xpath in enumerate(self.xpath_queries):
            lines.append(f"xpath[{index}] : {xpath}")
        for line in self.index_plan:
            lines.append(f"index    : {line}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (``explain --json`` and the slow-query log)."""
        return {
            "original": self.original,
            "rewritten": self.rewritten,
            "xpath_queries": list(self.xpath_queries),
            "rewrite_seconds": self.rewrite_seconds,
            "index_plan": list(self.index_plan),
        }


@dataclass
class ExecutionReport:
    """A query's results plus the paper's three timing components.

    ``results`` is a lazy property (attached below the class body so the
    dataclass machinery still records it as a field): a report rebuilt
    from a wire payload holds the serialized XML texts and re-parses
    them only on first access.  The serving layer's batch path never
    touches ``.results`` parent-side, so transport + bookkeeping cost no
    parse at all; :meth:`result_texts` exposes the wire form directly
    for identity checks and re-serialization.
    """

    results: List[XmlNode]
    rewrite_seconds: float
    xpath_seconds: float
    convert_seconds: float
    xpath_queries: List[str] = field(default_factory=list)
    candidates: int = 0
    #: semantic-hook invocations during this query (Section 6's "accesses
    #: to the ontology"; 0 for plain TAX).
    ontology_accesses: int = 0
    #: True when the query ran in degraded mode (SEO build failed or timed
    #: out; semantic operators fell back to exact TAX matching).
    degraded: bool = False
    #: Time spent deriving and intersecting index probes (0 on scans).
    planner_seconds: float = 0.0
    #: Documents in the queried collection(s) / actually run through XPath.
    docs_total: int = 0
    docs_scanned: int = 0
    #: True when index pruning restricted the XPath scan.
    index_used: bool = False
    #: True when the compiled plan came from the executor's plan cache.
    plan_cache_hit: bool = False
    #: Candidate documents run through embedding verification (every
    #: XPath candidate, batched or not; for joins, both sides' counts).
    docs_verified: int = 0
    #: Join verification work: candidate pairs whose (virtual or
    #: materialised) product was verified, and product trees actually
    #: constructed.  Batched joins materialise only pairs that produced
    #: a surviving witness; the per-product path builds every probed
    #: pair.  Both stay 0 for selections/projections.
    pairs_probed: int = 0
    pairs_materialized: int = 0
    #: Per-chunk failure detail when a partitioned query ran in degraded
    #: mode (``on_chunk_failure="degrade"``): one dict per permanently
    #: failed chunk — partition index, document count, error class,
    #: message, attempts.  Empty for exact results; a non-empty list
    #: always comes with ``degraded=True``.
    failed_partitions: List[Dict[str, Any]] = field(default_factory=list)
    #: The serving request this execution belonged to (see
    #: :mod:`repro.obs.context`); None outside any request.  Makes
    #: ``query --json`` output joinable against event-log and
    #: slow-query-log lines carrying the same id.
    request_id: Optional[str] = None
    #: The query's span tree (:meth:`repro.obs.trace.Span.to_dict` shape);
    #: None when the executor ran without tracing.
    trace: Optional[Dict[str, Any]] = None

    @property
    def result_count(self) -> int:
        """Number of results, without forcing a lazy parse."""
        if self._results is not None:
            return len(self._results)
        return len(self._result_texts or ())

    def result_texts(self) -> List[str]:
        """The results as serialized XML strings (cached).

        For a report rebuilt from a wire payload this is the payload's
        own text list — byte-identical to what the worker serialized —
        and costs no parse; otherwise the trees are serialized once.
        """
        if self._result_texts is None:
            from ..xmldb.serializer import serialize

            self._result_texts = [serialize(node) for node in self._results]
        return self._result_texts

    @property
    def docs_pruned(self) -> int:
        return max(0, self.docs_total - self.docs_scanned)

    @property
    def total_seconds(self) -> float:
        return (
            self.rewrite_seconds
            + self.planner_seconds
            + self.xpath_seconds
            + self.convert_seconds
        )

    #: Scalar fields serialized verbatim by :meth:`to_dict` (everything a
    #: report carries except the result trees and the trace tree).  One
    #: list, used by both directions, so a field added to the dataclass
    #: without an entry here fails the round-trip tests immediately —
    #: that is the serialization-drift guard.
    _SCALAR_FIELDS = (
        "rewrite_seconds",
        "xpath_seconds",
        "convert_seconds",
        "xpath_queries",
        "candidates",
        "ontology_accesses",
        "degraded",
        "planner_seconds",
        "docs_total",
        "docs_scanned",
        "index_used",
        "plan_cache_hit",
        "docs_verified",
        "pairs_probed",
        "pairs_materialized",
        "failed_partitions",
        "request_id",
    )

    #: How :meth:`merge` combines each scalar field across the partial
    #: reports of one partitioned query.  Timings take ``max`` (the
    #: partitions ran concurrently, and each re-derived the plan — a sum
    #: would double-count ``planner_seconds`` et al.); per-partition work
    #: counts (``candidates``, ``docs_scanned``, ``ontology_accesses``)
    #: add up; ``docs_total`` is a property of the collection, not the
    #: partition, so it takes ``max``.  Keys must cover every entry of
    #: :attr:`_SCALAR_FIELDS` — :meth:`merge` refuses to run otherwise,
    #: which is the same drift guard the serialization round-trip uses.
    _MERGE_RULES = {
        "rewrite_seconds": "max",
        "xpath_seconds": "max",
        "convert_seconds": "max",
        "planner_seconds": "max",
        "xpath_queries": "first",
        "candidates": "sum",
        "ontology_accesses": "sum",
        "degraded": "any",
        "docs_total": "max",
        "docs_scanned": "sum",
        "index_used": "any",
        "plan_cache_hit": "all",
        "docs_verified": "sum",
        "pairs_probed": "sum",
        "pairs_materialized": "sum",
        "failed_partitions": "concat",
        # identical across the chunks of one partitioned request
        "request_id": "first",
    }

    @classmethod
    def merge(cls, reports: Sequence["ExecutionReport"]) -> "ExecutionReport":
        """Combine the partial reports of one query split across workers.

        ``reports`` must be in partition order (the serving layer
        partitions the candidate document set into contiguous chunks in
        collection order); results are concatenated in that order and
        re-deduplicated, which reproduces the serial result sequence
        exactly — per-chunk execution can only dedupe within a chunk.

        The merged report carries no trace: each partial ran in its own
        process, and the caller re-attaches their span payloads to its
        own tracer (see :func:`repro.serving.partition.execute_partitioned`).
        """
        reports = list(reports)
        if not reports:
            raise ValueError("merge() needs at least one report")
        missing = set(cls._SCALAR_FIELDS) - set(cls._MERGE_RULES)
        if missing:
            raise TypeError(
                "ExecutionReport.merge has no rule for scalar field(s) "
                f"{sorted(missing)}; update _MERGE_RULES alongside "
                "_SCALAR_FIELDS"
            )
        results: List[XmlNode] = []
        for report in reports:
            results.extend(report.results)
        merged = cls(
            results=dedupe(results),
            rewrite_seconds=0.0,
            xpath_seconds=0.0,
            convert_seconds=0.0,
        )
        for field_name in cls._SCALAR_FIELDS:
            rule = cls._MERGE_RULES[field_name]
            values = [getattr(report, field_name) for report in reports]
            if rule == "max":
                value = max(values)
            elif rule == "sum":
                value = sum(values)
            elif rule == "any":
                value = any(values)
            elif rule == "all":
                value = all(values)
            elif rule == "concat":
                value = [item for sublist in values for item in sublist]
            else:  # "first": identical across partitions by construction
                value = values[0]
            setattr(merged, field_name, value)
        merged.xpath_queries = list(merged.xpath_queries)
        merged.trace = None
        return merged

    #: Default value per scalar field — what ``compact=True`` omits from
    #: the wire payload (``from_dict`` restores exactly these defaults
    #: for missing keys, so a compact round-trip is lossless).
    _SCALAR_DEFAULTS = {
        "xpath_queries": [],
        "candidates": 0,
        "ontology_accesses": 0,
        "degraded": False,
        "planner_seconds": 0.0,
        "docs_total": 0,
        "docs_scanned": 0,
        "index_used": False,
        "plan_cache_hit": False,
        "docs_verified": 0,
        "pairs_probed": 0,
        "pairs_materialized": 0,
        "failed_partitions": [],
        "request_id": None,
    }

    def to_dict(
        self, include_results: bool = False, compact: bool = False
    ) -> Dict[str, Any]:
        """Canonical JSON-ready form (the CLI, the experiment runner and
        the event sinks all go through this one method).

        ``include_results=True`` adds the result trees serialized as XML
        strings; by default only ``result_count`` is recorded.
        ``compact=True`` is the wire form the serving workers ship:
        default-valued scalars and the derived ``total_seconds`` /
        ``docs_pruned`` are omitted (``from_dict`` restores them), which
        keeps the per-query payload skinny.
        """
        payload: Dict[str, Any] = {}
        for field_name in self._SCALAR_FIELDS:
            value = getattr(self, field_name)
            if compact and self._SCALAR_DEFAULTS.get(field_name, _SENTINEL) == value:
                continue
            payload[field_name] = value
        if "xpath_queries" in payload:
            payload["xpath_queries"] = list(self.xpath_queries)
        if "failed_partitions" in payload:
            payload["failed_partitions"] = [
                dict(entry) for entry in self.failed_partitions
            ]
        payload["result_count"] = self.result_count
        if not compact:
            payload["total_seconds"] = self.total_seconds
            payload["docs_pruned"] = self.docs_pruned
        if self.trace is not None:
            payload["trace"] = self.trace
        if include_results:
            payload["results"] = list(self.result_texts())
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExecutionReport":
        """Rebuild a report from :meth:`to_dict` output.

        Serialized result trees are kept as-is and re-parsed lazily on
        the first ``.results`` access; without a ``results`` entry the
        report has no results (``result_count`` still reflects the
        original run via the payload, not the rebuilt object).
        """
        report = cls(
            results=[],
            rewrite_seconds=float(payload.get("rewrite_seconds", 0.0)),
            xpath_seconds=float(payload.get("xpath_seconds", 0.0)),
            convert_seconds=float(payload.get("convert_seconds", 0.0)),
        )
        texts = payload.get("results")
        if texts:
            report._results = None
            report._result_texts = [str(text) for text in texts]
        for field_name in cls._SCALAR_FIELDS:
            if field_name in payload:
                setattr(report, field_name, payload[field_name])
        report.xpath_queries = list(report.xpath_queries)
        report.failed_partitions = [
            dict(entry) for entry in report.failed_partitions
        ]
        report.trace = payload.get("trace")
        return report

    def __repr__(self) -> str:
        return (
            f"ExecutionReport({self.result_count} results in "
            f"{self.total_seconds:.4f}s; rewrite={self.rewrite_seconds:.4f} "
            f"planner={self.planner_seconds:.4f} "
            f"xpath={self.xpath_seconds:.4f} convert={self.convert_seconds:.4f}; "
            f"scanned {self.docs_scanned}/{self.docs_total} docs)"
        )


#: Internal marker for "no compact default" in ExecutionReport.to_dict.
_SENTINEL = object()


def _report_results_get(self: ExecutionReport) -> List[XmlNode]:
    if self._results is None:
        from ..xmldb.parser import parse_fragment

        self._results = [
            parse_fragment(text) for text in (self._result_texts or ())
        ]
    return self._results


def _report_results_set(self: ExecutionReport, value: List[XmlNode]) -> None:
    self._results = value
    self._result_texts = None


# ``results`` stays a dataclass *field* (the drift-guard tests pin the
# field set) but reads/writes go through this property: the generated
# __init__'s ``self.results = results`` lands in the setter, and
# from_dict can park serialized texts for lazy parsing.
ExecutionReport.results = property(_report_results_get, _report_results_set)


# ---------------------------------------------------------------------------
# Pattern -> XPath compilation
# ---------------------------------------------------------------------------


def _xpath_literal(value: str) -> Optional[str]:
    """Quote a string for XPath, or None when it cannot be quoted."""
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    return None  # mixed quotes: leave for the verification phase


def _content_predicates(condition: Condition) -> Dict[int, List[str]]:
    """Per-label XPath predicate fragments implied by the condition.

    Collects, from the positive conjunctive structure, content equalities
    (including disjunctions over one label), ``contains`` atoms and numeric
    content comparisons.  Sound, not complete — anything unrecognised is
    simply not pushed down.
    """
    predicates: Dict[int, List[str]] = {}

    def add(label: int, fragment: str) -> None:
        predicates.setdefault(label, []).append(fragment)

    def equality_fragment(atom: Comparison) -> Optional[Tuple[int, str]]:
        left, right = atom.left, atom.right
        if isinstance(left, NodeContent) and isinstance(right, Constant):
            literal = _xpath_literal(right.value)
            if literal is not None:
                return (left.label, f". = {literal}")
        if isinstance(right, NodeContent) and isinstance(left, Constant):
            literal = _xpath_literal(left.value)
            if literal is not None:
                return (right.label, f". = {literal}")
        return None

    def visit(node: Condition) -> None:
        if isinstance(node, And):
            for operand in node.operands:
                visit(operand)
            return
        if isinstance(node, Comparison):
            if node.op == "=":
                pair = equality_fragment(node)
                if pair is not None:
                    add(pair[0], pair[1])
                return
            if node.op in ("<", "<=", ">", ">="):
                left, right = node.left, node.right
                if isinstance(left, NodeContent) and isinstance(right, Constant):
                    try:
                        number = float(right.value)
                    except ValueError:
                        return
                    add(left.label, f"number(.) {node.op} {number:g}")
                return
            return
        if isinstance(node, Contains):
            # Contains is case-insensitive while XPath contains() is not,
            # so pushing it down would be unsound (the prefilter could
            # drop true matches); it is evaluated in the verify phase.
            return
        if isinstance(node, Or):
            # Cap the pushed disjunction: SEO expansions can run to
            # hundreds of alternatives, and a giant or-chain costs more
            # to evaluate per node than the scan it saves.  Past the cap
            # the disjunct set stays out of the prefilter and the
            # verification phase decides (results unchanged).
            if len(node.operands) > MAX_OR_ALTERNATIVES:
                return
            fragments: List[Tuple[int, str]] = []
            for operand in node.operands:
                if not isinstance(operand, Comparison) or operand.op != "=":
                    return
                pair = equality_fragment(operand)
                if pair is None:
                    return
                fragments.append(pair)
            labels = {label for label, _ in fragments}
            if len(labels) == 1:
                label = labels.pop()
                add(label, "(" + " or ".join(f for _, f in fragments) + ")")
            return

    visit(condition)
    return predicates


def compile_pattern_to_xpath(
    pattern: PatternTree, condition: Optional[Condition] = None
) -> str:
    """Compile a pattern tree (+ an already-rewritten condition) to XPath.

    The query selects candidate images of the pattern *root*; structure
    below the root becomes nested existence predicates (`pc` -> child
    path, `ad` -> ``.//`` path) and per-node content constraints become
    value predicates.
    """
    if condition is None:
        condition = pattern.condition
    tags = required_tags(condition)
    contents = _content_predicates(condition)

    def tag_expr(label: int) -> str:
        restriction = tags.get(label)
        if restriction is not None and len(restriction) == 1:
            return next(iter(restriction))
        return "*"

    def name_predicate(label: int) -> Optional[str]:
        restriction = tags.get(label)
        if restriction is None or len(restriction) <= 1:
            return None
        if len(restriction) > MAX_OR_ALTERNATIVES:
            return None  # capped: verification filters the tags exactly
        alternatives = " or ".join(
            f"name() = {_xpath_literal(tag)}" for tag in sorted(restriction)
        )
        return f"({alternatives})"

    def node_expression(label: int, is_root: bool) -> str:
        node = pattern.node(label)
        if is_root:
            prefix = "//"
        elif node.edge == AD:
            prefix = ".//"
        else:
            prefix = ""
        expression = prefix + tag_expr(label)
        predicates: List[str] = []
        name_pred = name_predicate(label)
        if name_pred is not None:
            predicates.append(name_pred)
        predicates.extend(contents.get(label, ()))
        for child in pattern.children(label):
            predicates.append(node_expression(child.label, is_root=False))
        return expression + "".join(f"[{p}]" for p in predicates)

    return node_expression(pattern.root, is_root=True)


def _subtree_pattern(pattern: PatternTree, new_root: int) -> PatternTree:
    """The sub-pattern rooted at ``new_root`` (structure only)."""
    sub = PatternTree()
    sub.add_node(new_root)

    def copy_children(label: int) -> None:
        for child in pattern.children(label):
            sub.add_node(child.label, parent=label, edge=child.edge)
            copy_children(child.label)

    copy_children(new_root)
    return sub


def _side_condition(condition: Condition, side_labels: Set[int]) -> Condition:
    """Conjuncts of ``condition`` that mention only ``side_labels``."""
    kept: List[Condition] = []

    def visit(node: Condition) -> None:
        if isinstance(node, And):
            for operand in node.operands:
                visit(operand)
            return
        if node.labels() and node.labels() <= side_labels:
            kept.append(node)

    visit(condition)
    if not kept:
        return TrueCondition()
    if len(kept) == 1:
        return kept[0]
    return And(*kept)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class QueryExecutor:
    """Runs TOSS (or plain TAX) pattern queries against the database."""

    def __init__(
        self,
        database: Database,
        context: Optional[SeoConditionContext] = None,
        similarity_hash_join: bool = True,
        guard: Optional[ResourceGuard] = None,
        exact_fallback: bool = False,
        use_index: bool = True,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        observability: Optional[Observability] = None,
        compile_conditions: bool = True,
        verify_batched: bool = True,
    ) -> None:
        self.database = database
        self.context = context
        #: Use the length-bucketed similarity hash join for cross-side
        #: ``~`` conditions instead of the naive product (ablatable).
        self.similarity_hash_join = similarity_hash_join
        #: Default per-query resource guard (restarted at each query); a
        #: per-call ``guard=`` argument overrides it.
        self.guard = guard
        #: With no SEO context, evaluate semantic atoms as exact string
        #: matches instead of raising (degraded mode; see
        #: :class:`~repro.core.conditions.ExactFallbackContext`).
        self.exact_fallback = exact_fallback
        #: Prune the XPath scan through the collection search index
        #: (ablatable, like ``similarity_hash_join``); results are
        #: identical either way.
        self.use_index = use_index
        #: Bounded, thread-safe LRU over compiled plans (rewritten
        #: condition + XPath + probe spec), keyed by pattern structure
        #: and condition; 0 disables caching.  Hit/miss/eviction
        #: counters are emitted as ``executor.plan_cache.*`` metrics by
        #: the cache itself.
        self.plan_cache_size = plan_cache_size
        self._plan_cache = LruCache(
            plan_cache_size, metric_prefix="executor.plan_cache"
        )
        #: Bumped by :meth:`set_context` whenever the SEO changes; part of
        #: every plan-cache key, so plans compiled against a previous SEO
        #: become unreachable (and age out of the LRU) instead of being
        #: replayed with stale term expansions.
        self._context_epoch = 0
        #: Memoised cross-side join probes, keyed by collection
        #: generations + probe spec (stale generations simply miss).
        self._cross_probe_cache = LruCache(
            32, metric_prefix="executor.cross_probe_cache"
        )
        #: Tracing + sink configuration; the shared no-op instance by
        #: default, so an uninstrumented executor allocates no spans and
        #: writes no files.
        self.observability = (
            observability if observability is not None else NULL_OBSERVABILITY
        )
        #: Compile the verification condition into closures once per
        #: cached plan (see :mod:`repro.tax.compile`).  Ablatable; the
        #: interpreted walk is used when off, results identical either
        #: way (conditions nobody registered a compiler for fall back to
        #: interpretation per node automatically).
        self.compile_conditions = compile_conditions
        #: Verify candidate sets over columnar arrays instead of walking
        #: one tree per candidate, and decide join pairs before any
        #: product tree is materialised (see :mod:`repro.tax.batch`).
        #: Ablatable like ``compile_conditions``; results, ontology
        #: accesses and guard behaviour are identical either way, and
        #: candidates without columns fall back per entry.
        self.verify_batched = verify_batched

    # -- plan cache ---------------------------------------------------------

    @property
    def plan_cache_hits(self) -> int:
        return self._plan_cache.hits

    @property
    def plan_cache_misses(self) -> int:
        return self._plan_cache.misses

    def set_context(
        self,
        context: Optional[SeoConditionContext],
        seo_changed: bool = True,
    ) -> None:
        """Swap the SEO context in place, keeping the executor warm.

        The system's incremental build path reuses one executor across
        builds so the compiled-plan and cross-probe caches survive
        mutations.  ``seo_changed=False`` (the no-op rebuild: nothing in
        any SEO moved) keeps every cache entry live; otherwise the
        context epoch advances — plans rewritten against the old SEO
        miss and recompile, and memoised cross probes (keyed partly by
        ``id(seo)``, which a recycled object id could collide with) are
        dropped outright.
        """
        self.context = context
        if seo_changed:
            self._context_epoch += 1
            self._cross_probe_cache.clear()

    def _pattern_key(self, kind: str, pattern: PatternTree) -> Tuple:
        structure = tuple(
            (label, pattern.node(label).parent, pattern.node(label).edge)
            for label in pattern.labels()
        )
        return (kind, structure, repr(pattern.condition), self._context_epoch)

    def _plan_lookup(self, key: Tuple) -> Optional[Dict[str, object]]:
        return self._plan_cache.get(key)

    def _plan_store(self, key: Tuple, entry: Dict[str, object]) -> None:
        self._plan_cache.put(key, entry)

    def _selection_plan(self, pattern: PatternTree) -> Tuple[Dict[str, object], bool]:
        """The compiled plan for a selection/projection pattern."""
        key = self._pattern_key("pattern", pattern)
        entry = self._plan_lookup(key)
        if entry is not None:
            return entry, True
        if self.context is not None:
            condition = rewrite_condition(pattern.condition, self.context)
        else:
            condition = pattern.condition
        entry = {
            "condition": condition,
            "xpath": compile_pattern_to_xpath(pattern, condition),
            "spec": build_plan_spec(
                pattern, pattern.condition, self.context, self.exact_fallback
            ),
        }
        self._plan_store(key, entry)
        return entry, False

    def _join_plan(
        self, pattern: PatternTree, root_children
    ) -> Tuple[Dict[str, object], bool]:
        """The compiled per-side plan for a join pattern."""
        key = self._pattern_key("join", pattern)
        entry = self._plan_lookup(key)
        if entry is not None:
            return entry, True
        if self.context is not None:
            condition = rewrite_condition(pattern.condition, self.context)
        else:
            condition = pattern.condition
        sides = []
        side_label_sets = []
        for child in root_children:
            side_pattern = _subtree_pattern(pattern, child.label)
            side_labels = set(side_pattern.labels())
            side_label_sets.append(side_labels)
            side_pattern.condition = _side_condition(condition, side_labels)
            # The probe spec comes from the *original* side conjuncts —
            # verification evaluates those, not the rewritten ones.
            spec = build_plan_spec(
                side_pattern,
                _side_condition(pattern.condition, side_labels),
                self.context,
                self.exact_fallback,
            )
            sides.append(
                {
                    "pattern": side_pattern,
                    "xpath": compile_pattern_to_xpath(side_pattern),
                    "spec": spec,
                    "labels": side_labels,
                }
            )
        prunable = not (
            self.context is None
            and not self.exact_fallback
            and has_semantic_atom(pattern.condition)
        )
        entry = {
            "condition": condition,
            "sides": sides,
            "prunable": prunable,
            "cross": (
                find_cross_probe(
                    pattern.condition,
                    side_label_sets[0],
                    side_label_sets[1],
                    self.context,
                    self.exact_fallback,
                )
                if prunable
                else None
            ),
        }
        self._plan_store(key, entry)
        return entry, False

    def _evaluation_context(self):
        from ..tax.conditions import DEFAULT_CONTEXT

        if self.context is not None:
            return self.context
        if self.exact_fallback:
            from .conditions import EXACT_FALLBACK_CONTEXT

            return EXACT_FALLBACK_CONTEXT
        return DEFAULT_CONTEXT

    def _verify_tools(self, plan: Dict[str, object], pattern: PatternTree):
        """(verified pattern, compiled evaluator, restrictions, order, steps).

        All five are per-plan constants, so they live on the cached plan
        entry: the pattern skeleton is rebuilt once, ``required_tags``
        runs once, the validated preorder and the batched-verify step
        program are lowered once, and — when :attr:`compile_conditions`
        is on — the verify condition compiles once per evaluation
        context instead of being interpreted per candidate binding.  The
        entry is keyed by the context *object* so flipping
        ``exact_fallback`` (or swapping the SEO) between queries
        recompiles instead of reusing stale closures.
        """
        context = self._evaluation_context()
        cached = plan.get("verify")
        if cached is not None and cached[0] is context:
            _ctx, verified_pattern, evaluator, restrictions, order, steps = cached
            if (evaluator is None) == (not self.compile_conditions):
                return verified_pattern, evaluator, restrictions, order, steps
        # Verify with the original condition when an SEO context is
        # available: semantic atoms evaluate through the SEO index, which
        # is cheaper than the expanded exact-match disjunction.
        verify_condition: Condition = (
            pattern.condition if self.context is not None else plan["condition"]
        )  # type: ignore[assignment]
        verified_pattern = PatternTree(verify_condition)
        _copy_structure(pattern, verified_pattern)
        verified_pattern.validate()
        order = list(verified_pattern.preorder())
        restrictions = required_tags(verify_condition)
        steps = compile_batch_steps(verified_pattern, restrictions)
        evaluator = (
            compile_condition(verify_condition, context)
            if self.compile_conditions
            else None
        )
        plan["verify"] = (
            context, verified_pattern, evaluator, restrictions, order, steps
        )
        return verified_pattern, evaluator, restrictions, order, steps

    def _start_guard(self, guard: Optional[ResourceGuard]) -> Optional[ResourceGuard]:
        """Resolve the effective guard for one query and restart its clock."""
        guard = guard if guard is not None else self.guard
        if guard is not None:
            guard.start()
        return guard

    def _guarded_per_tree(
        self,
        candidates: Sequence[XmlNode],
        guard: Optional[ResourceGuard],
        run,
    ) -> List[XmlNode]:
        """Run a per-tree algebra operator over ``candidates`` under a guard.

        Selection and projection treat input trees independently, so with
        a guard active the candidates are processed one at a time with a
        deadline/step check between each — a pathological verification
        phase is interrupted instead of blocking until the end.
        """
        if guard is None:
            return run(list(candidates))
        results: List[XmlNode] = []
        for candidate in candidates:
            guard.tick(what="result verification")
            results.extend(run([candidate]))
            guard.check_results(len(results), "query verification")
        return dedupe(results)

    def _resolve_entries(
        self, collection_name: str, candidates: Sequence[XmlNode]
    ) -> List[tax_batch.Entry]:
        """Map candidate nodes to batched-verify entries.

        A candidate that is a live row of its document's columnar arrays
        becomes ``(columns, row)``; anything else (a detached tree, a
        stale copy, a collection without columnar scans) stays a
        ``(None, node)`` fallback entry, which the batched verifier runs
        through the per-tree walk.  Column lookups are memoised per
        document root, so many candidates from one document pay one
        ``columns_for_root`` call.
        """
        collection = self.database.get_collection(collection_name)
        by_root: Dict[int, Any] = {}
        entries: List[tax_batch.Entry] = []
        for node in candidates:
            root = node
            while root.parent is not None:
                root = root.parent
            root_id = id(root)
            if root_id in by_root:
                cols = by_root[root_id]
            else:
                cols = collection.columns_for_root(root)
                by_root[root_id] = cols
            row = node.pre
            if (
                cols is not None
                and 0 <= row < len(cols.nodes)
                and cols.nodes[row] is node
            ):
                entries.append((cols, row))
            else:
                entries.append((None, node))
        return entries

    def _side_candidates(
        self,
        collection_name: str,
        xpath: str,
        guard: Optional[ResourceGuard],
        doc_keys: Optional[Set[str]],
    ):
        """(candidate nodes, fully-columnar entries or None) for a join side.

        The entries list is returned only when *every* candidate resolved
        to a columnar row — the late-materialised join scans virtual
        products over the two sides' columns and has no per-pair
        fallback, so one unresolvable candidate sends the whole join to
        the materialised path.
        """
        if self.verify_batched and guard is None:
            rows = self.database.xpath_rows(
                collection_name, xpath, document_keys=doc_keys
            )
            if rows is not None:
                return [cols.nodes[row] for cols, row in rows], rows
        raw = self.database.xpath(
            collection_name, xpath, guard=guard, document_keys=doc_keys
        )
        candidates = [node for node in raw if isinstance(node, XmlNode)]
        if not self.verify_batched:
            return candidates, None
        entries = self._resolve_entries(collection_name, candidates)
        if any(cols is None for cols, _ in entries):
            return candidates, None
        return candidates, entries

    def _accesses(self) -> int:
        return self.context.ontology_accesses if self.context is not None else 0

    @staticmethod
    def _guard_steps(guard: Optional[ResourceGuard]) -> int:
        return guard.steps if guard is not None else 0

    def _finish_query(
        self,
        kind: str,
        query: str,
        tracer,
        guard: Optional[ResourceGuard],
        report: ExecutionReport,
        plan_lines: Optional[List[str]] = None,
    ) -> ExecutionReport:
        """Attach the trace to the report and publish metrics + events.

        Called after the root span has closed; root attributes are set
        directly so the finished tree carries the query-level summary
        (guard accounting, result counts, cache/index flags).
        """
        context = current_request()
        if context is not None:
            report.request_id = context.request_id
        if tracer.root is not None:
            attributes = tracer.root.attributes
            if guard is not None:
                attributes["guard_steps"] = guard.steps
                attributes["guard_stages"] = guard.stage_steps
            attributes["results"] = len(report.results)
            attributes["candidates"] = report.candidates
            attributes["plan_cache_hit"] = report.plan_cache_hit
            attributes["index_used"] = report.index_used
            if context is not None:
                attributes["request_id"] = context.request_id
        report.trace = tracer.finish()
        WINDOWS.observe(
            context.query_class if context is not None and context.query_class
            else kind,
            report.total_seconds,
        )
        METRICS.counter("executor.queries").inc()
        METRICS.counter(f"executor.queries.{kind}").inc()
        if report.degraded:
            METRICS.counter("executor.queries.degraded").inc()
        METRICS.histogram("executor.seconds").observe(report.total_seconds)
        METRICS.histogram("executor.rewrite_seconds").observe(report.rewrite_seconds)
        METRICS.histogram("executor.planner_seconds").observe(report.planner_seconds)
        METRICS.histogram("executor.xpath_seconds").observe(report.xpath_seconds)
        METRICS.histogram("executor.convert_seconds").observe(report.convert_seconds)
        METRICS.histogram(
            "executor.candidates", bounds=DEFAULT_COUNT_BUCKETS
        ).observe(report.candidates)
        METRICS.counter("executor.docs_scanned").inc(report.docs_scanned)
        METRICS.counter("executor.docs_pruned").inc(report.docs_pruned)
        METRICS.counter("executor.ontology_accesses").inc(report.ontology_accesses)
        if self.observability.record_query(
            kind,
            query=query,
            total_seconds=report.total_seconds,
            trace=report.trace,
            plan_lines=plan_lines,
            extra={
                "results": len(report.results),
                "candidates": report.candidates,
                "docs_scanned": report.docs_scanned,
                "docs_total": report.docs_total,
                "degraded": report.degraded,
            },
        ):
            METRICS.counter("executor.slow_queries").inc()
        return report

    def explain(self, pattern: PatternTree) -> "QueryPlan":
        """The query plan without executing it: rewrite + compiled XPath.

        Useful for debugging recall problems: the plan shows exactly which
        exact-match disjuncts the SEO expanded each semantic atom into.
        """
        started = time.perf_counter()
        root_children = (
            pattern.children(pattern.root) if len(pattern) > 1 else []
        )
        is_join = (
            len(root_children) == 2
            and pattern.condition.labels()
            and pattern.root not in pattern.condition.labels()
        )
        index_plan: List[str] = []
        if is_join:
            plan, _ = self._join_plan(pattern, root_children)
            condition = plan["condition"]
            xpaths = [side["xpath"] for side in plan["sides"]]
            if not self.use_index:
                index_plan.append("full scan (use_index=False)")
            elif not plan["prunable"]:
                index_plan.append(
                    "full scan (semantic atoms require an SEO context)"
                )
            else:
                for name, side in zip(("left", "right"), plan["sides"]):
                    for line in side["spec"].describe():
                        index_plan.append(f"{name}: {line}")
                cross = plan["cross"]
                if cross is not None:
                    index_plan.append(
                        f"cross: {cross.kind}(node[{cross.left_label}] "
                        f"<-> node[{cross.right_label}])"
                    )
        else:
            plan, _ = self._selection_plan(pattern)
            condition = plan["condition"]
            xpaths = [plan["xpath"]]
            if not self.use_index:
                index_plan.append("full scan (use_index=False)")
            else:
                index_plan.extend(plan["spec"].describe())
        index_plan.append(
            describe_verify_strategy(self.verify_batched, join=is_join)
        )
        rewrite_seconds = time.perf_counter() - started
        return QueryPlan(
            original=repr(pattern.condition),
            rewritten=repr(condition),
            xpath_queries=xpaths,
            rewrite_seconds=rewrite_seconds,
            index_plan=index_plan,
        )

    def selection(
        self,
        collection_name: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        guard: Optional[ResourceGuard] = None,
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """Execute a selection query: rewrite -> plan -> XPath -> verify.

        ``document_keys`` restricts execution to a subset of the
        collection's documents (intersected with index pruning) — the
        serving layer's intra-query partitioning runs one selection per
        contiguous chunk and merges the reports.
        """
        restrict = None if document_keys is None else set(document_keys)
        guard = self._start_guard(guard)
        accesses_before = self._accesses()
        tracer = self.observability.tracer()

        with tracer.trace("query.selection", collection=collection_name):
            started = time.perf_counter()
            with tracer.span("rewrite"):
                plan, cache_hit = self._selection_plan(pattern)
                tracer.annotate(plan_cache_hit=cache_hit)
            condition: Condition = plan["condition"]  # type: ignore[assignment]
            xpath: str = plan["xpath"]  # type: ignore[assignment]
            spec: PlanSpec = plan["spec"]  # type: ignore[assignment]
            rewrite_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("plan"):
                doc_keys, docs_total, docs_scanned, index_used = self._prune(
                    collection_name, spec, guard, restrict=restrict
                )
                tracer.annotate(
                    docs_total=docs_total,
                    docs_scanned=docs_scanned,
                    index_used=index_used,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            planner_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("xpath", query=xpath):
                entries: Optional[List[tax_batch.Entry]] = None
                if self.verify_batched and guard is None:
                    # Batched-verify fast path: fetch candidates directly
                    # as (columns, row) pairs — no per-candidate node
                    # resolution, and the verifier scans columns in place.
                    entries = self.database.xpath_rows(
                        collection_name, xpath, document_keys=doc_keys
                    )
                if entries is None:
                    raw = self.database.xpath(
                        collection_name, xpath, guard=guard, document_keys=doc_keys
                    )
                    candidates = [
                        node for node in raw if isinstance(node, XmlNode)
                    ]
                    if self.verify_batched:
                        entries = self._resolve_entries(
                            collection_name, candidates
                        )
                    n_candidates = len(candidates)
                else:
                    n_candidates = len(entries)
                tracer.annotate(
                    candidates=n_candidates,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            xpath_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("verify"):
                verified_pattern, evaluator, restrictions, order, vsteps = (
                    self._verify_tools(plan, pattern)
                )
                sl = list(sl_labels)
                if entries is not None:
                    results = self._guarded_per_tree(
                        entries,
                        guard,
                        lambda ents: tax_batch.selection_batched(
                            ents,
                            verified_pattern,
                            sl,
                            self._evaluation_context(),
                            evaluator=evaluator,
                            restrictions=restrictions,
                            order=order,
                            steps=vsteps,
                        ),
                    )
                else:
                    results = self._guarded_per_tree(
                        candidates,
                        guard,
                        lambda trees: tax_algebra.selection(
                            trees,
                            verified_pattern,
                            sl,
                            self._evaluation_context(),
                            evaluator=evaluator,
                            restrictions=restrictions,
                        ),
                    )
                tracer.annotate(
                    results=len(results),
                    batched=entries is not None,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            convert_seconds = time.perf_counter() - started
        report = ExecutionReport(
            results,
            rewrite_seconds,
            xpath_seconds,
            convert_seconds,
            [xpath],
            n_candidates,
            self._accesses() - accesses_before,
            planner_seconds=planner_seconds,
            docs_total=docs_total,
            docs_scanned=docs_scanned,
            index_used=index_used,
            plan_cache_hit=cache_hit,
            docs_verified=n_candidates,
        )
        return self._finish_query(
            "selection",
            xpath,
            tracer,
            guard,
            report,
            plan_lines=(
                list(spec.describe())
                if self.observability.enabled and index_used
                else None
            ),
        )

    def _prune(
        self,
        collection_name: str,
        spec: PlanSpec,
        guard: Optional[ResourceGuard],
        restrict: Optional[Set[str]] = None,
    ) -> Tuple[Optional[Set[str]], int, int, bool]:
        """(document keys or None, docs total, docs scanned, index used).

        ``restrict`` further limits the scan to an externally chosen
        document subset (the serving layer's intra-query partitions);
        it intersects with whatever the index probes prune to, so a
        partitioned query scans exactly its slice of the serial
        candidate set.
        """
        collection = self.database.get_collection(collection_name)
        docs_total = len(collection)
        if not self.use_index or not spec.prunable:
            if restrict is not None:
                keys = {key for key in restrict if key in collection}
                return keys, docs_total, len(keys), False
            return None, docs_total, docs_total, False
        index = collection.search_index()
        assert index is not None
        doc_keys = prune_candidates(
            spec,
            index,
            guard,
            self.context.seo if self.context is not None else None,
        )
        if restrict is not None:
            doc_keys &= restrict
        return doc_keys, docs_total, len(doc_keys), True

    def candidate_documents(
        self,
        collection_name: str,
        pattern: PatternTree,
        guard: Optional[ResourceGuard] = None,
    ) -> List[str]:
        """The document keys a selection over ``pattern`` would scan.

        Runs only the rewrite + planner phases (no XPath, no
        verification) and returns the candidate keys in collection
        insertion order — the order the scan visits them.  The serving
        layer partitions this list into contiguous chunks; executing the
        query per chunk and concatenating preserves the serial result
        order.
        """
        plan, _ = self._selection_plan(pattern)
        spec: PlanSpec = plan["spec"]  # type: ignore[assignment]
        doc_keys, _total, _scanned, _used = self._prune(
            collection_name, spec, guard
        )
        collection = self.database.get_collection(collection_name)
        if doc_keys is None:
            return list(collection.keys())
        return [key for key in collection.keys() if key in doc_keys]

    def join_candidate_documents(
        self,
        left_collection: str,
        right_collection: str,
        pattern: PatternTree,
        guard: Optional[ResourceGuard] = None,
    ) -> List[str]:
        """The *left-side* document keys a join over ``pattern`` would scan.

        The left side is the partitionable one (the product iterates it
        in collection order, so contiguous left chunks concatenate to
        the serial product order); keys are returned in collection
        insertion order.
        """
        root_children = pattern.children(pattern.root)
        if len(root_children) != 2:
            raise QueryExecutionError(
                "a join pattern needs exactly two subtrees under the product root"
            )
        plan, _ = self._join_plan(pattern, root_children)
        left_keys, _right, _total, _scanned, _used = self._prune_join(
            left_collection, right_collection, plan, guard
        )
        collection = self.database.get_collection(left_collection)
        if left_keys is None:
            return list(collection.keys())
        return [key for key in collection.keys() if key in left_keys]

    def projection(
        self,
        collection_name: str,
        pattern: PatternTree,
        pl: Sequence[tax_algebra.ProjectionEntry],
        guard: Optional[ResourceGuard] = None,
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """Execute a projection query through the same pipeline."""
        restrict = None if document_keys is None else set(document_keys)
        guard = self._start_guard(guard)
        accesses_before = self._accesses()
        tracer = self.observability.tracer()

        with tracer.trace("query.projection", collection=collection_name):
            started = time.perf_counter()
            with tracer.span("rewrite"):
                plan, cache_hit = self._selection_plan(pattern)
                tracer.annotate(plan_cache_hit=cache_hit)
            condition: Condition = plan["condition"]  # type: ignore[assignment]
            xpath: str = plan["xpath"]  # type: ignore[assignment]
            spec: PlanSpec = plan["spec"]  # type: ignore[assignment]
            rewrite_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("plan"):
                doc_keys, docs_total, docs_scanned, index_used = self._prune(
                    collection_name, spec, guard, restrict=restrict
                )
                tracer.annotate(
                    docs_total=docs_total,
                    docs_scanned=docs_scanned,
                    index_used=index_used,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            planner_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("xpath", query=xpath):
                entries: Optional[List[tax_batch.Entry]] = None
                if self.verify_batched and guard is None:
                    # Batched-verify fast path: fetch candidates directly
                    # as (columns, row) pairs — no per-candidate node
                    # resolution, and the verifier scans columns in place.
                    entries = self.database.xpath_rows(
                        collection_name, xpath, document_keys=doc_keys
                    )
                if entries is None:
                    raw = self.database.xpath(
                        collection_name, xpath, guard=guard, document_keys=doc_keys
                    )
                    candidates = [
                        node for node in raw if isinstance(node, XmlNode)
                    ]
                    if self.verify_batched:
                        entries = self._resolve_entries(
                            collection_name, candidates
                        )
                    n_candidates = len(candidates)
                else:
                    n_candidates = len(entries)
                tracer.annotate(
                    candidates=n_candidates,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            xpath_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("verify"):
                verified_pattern, evaluator, restrictions, order, vsteps = (
                    self._verify_tools(plan, pattern)
                )
                if entries is not None:
                    results = self._guarded_per_tree(
                        entries,
                        guard,
                        lambda ents: tax_batch.projection_batched(
                            ents,
                            verified_pattern,
                            pl,
                            self._evaluation_context(),
                            evaluator=evaluator,
                            restrictions=restrictions,
                            order=order,
                            steps=vsteps,
                        ),
                    )
                else:
                    results = self._guarded_per_tree(
                        candidates,
                        guard,
                        lambda trees: tax_algebra.projection(
                            trees,
                            verified_pattern,
                            pl,
                            self._evaluation_context(),
                            evaluator=evaluator,
                            restrictions=restrictions,
                        ),
                    )
                tracer.annotate(
                    results=len(results),
                    batched=entries is not None,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            convert_seconds = time.perf_counter() - started
        report = ExecutionReport(
            results,
            rewrite_seconds,
            xpath_seconds,
            convert_seconds,
            [xpath],
            n_candidates,
            self._accesses() - accesses_before,
            planner_seconds=planner_seconds,
            docs_total=docs_total,
            docs_scanned=docs_scanned,
            index_used=index_used,
            plan_cache_hit=cache_hit,
            docs_verified=n_candidates,
        )
        return self._finish_query(
            "projection",
            xpath,
            tracer,
            guard,
            report,
            plan_lines=(
                list(spec.describe())
                if self.observability.enabled and index_used
                else None
            ),
        )

    def join(
        self,
        left_collection: str,
        right_collection: str,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
        guard: Optional[ResourceGuard] = None,
        document_keys: Optional[Iterable[str]] = None,
    ) -> ExecutionReport:
        """Execute a join: per-side XPath prefilter, then product+selection.

        The pattern's root must be the product root (tag
        ``tax_prod_root``) with exactly two child subtrees, the left one
        matching the left collection (Example 13's Figure 14 shape).
        Cross-side conditions (e.g. ``title:1 ~ title:2``) are evaluated in
        the verification phase.

        ``document_keys`` restricts the *left* collection's documents
        (the side the serving layer partitions); the right side is
        evaluated in full by every partition, since the product pairs
        each left document with all right documents.
        """
        root_children = pattern.children(pattern.root)
        if len(root_children) != 2:
            raise QueryExecutionError(
                "a join pattern needs exactly two subtrees under the product root"
            )
        restrict = None if document_keys is None else set(document_keys)
        guard = self._start_guard(guard)
        accesses_before = self._accesses()
        tracer = self.observability.tracer()

        with tracer.trace(
            "query.join", left=left_collection, right=right_collection
        ):
            started = time.perf_counter()
            with tracer.span("rewrite"):
                plan, cache_hit = self._join_plan(pattern, root_children)
                tracer.annotate(plan_cache_hit=cache_hit)
            condition: Condition = plan["condition"]  # type: ignore[assignment]
            sides = plan["sides"]  # type: ignore[assignment]
            rewrite_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("plan"):
                left_keys, right_keys, docs_total, docs_scanned, index_used = (
                    self._prune_join(
                        left_collection,
                        right_collection,
                        plan,
                        guard,
                        left_restrict=restrict,
                    )
                )
                tracer.annotate(
                    docs_total=docs_total,
                    docs_scanned=docs_scanned,
                    index_used=index_used,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            planner_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("xpath"):
                with tracer.span("xpath.left", query=sides[0]["xpath"]):
                    left_candidates, left_entries = self._side_candidates(
                        left_collection, sides[0]["xpath"], guard, left_keys
                    )
                    tracer.annotate(candidates=len(left_candidates))
                with tracer.span("xpath.right", query=sides[1]["xpath"]):
                    right_candidates, right_entries = self._side_candidates(
                        right_collection, sides[1]["xpath"], guard, right_keys
                    )
                    tracer.annotate(candidates=len(right_candidates))
                tracer.annotate(
                    guard_steps=self._guard_steps(guard) - steps_before
                )
            xpath_seconds = time.perf_counter() - started

            started = time.perf_counter()
            steps_before = self._guard_steps(guard)
            with tracer.span("verify"):
                verified_pattern, evaluator, restrictions, order, vsteps = (
                    self._verify_tools(plan, pattern)
                )
                sl = list(sl_labels)
                pair_filter = None
                if self.context is not None and self.similarity_hash_join:
                    atom = _cross_similarity_atom(
                        pattern.condition, sides[0]["labels"], sides[1]["labels"]
                    )
                    if atom is not None:
                        with tracer.span("verify.hash_join"):
                            pair_filter = self._similarity_join_pairs(
                                left_candidates,
                                right_candidates,
                                atom,
                                pattern.condition,
                                guard,
                            )
                            tracer.annotate(pairs=len(pair_filter))

                use_batched = (
                    left_entries is not None and right_entries is not None
                )
                pairs_probed = (
                    len(left_candidates) * len(right_candidates)
                    if pair_filter is None
                    else len(pair_filter)
                )
                pairs_materialized = pairs_probed
                if use_batched:
                    if pair_filter is None:
                        pairs = [
                            (i, j)
                            for i in range(len(left_candidates))
                            for j in range(len(right_candidates))
                        ]
                    else:
                        pairs = sorted(pair_filter)
                    if guard is None:
                        results, pairs_materialized = (
                            tax_batch.join_pairs_batched(
                                left_entries,
                                right_entries,
                                pairs,
                                verified_pattern,
                                sl,
                                self._evaluation_context(),
                                evaluator=evaluator,
                                restrictions=restrictions,
                                order=order,
                                steps=vsteps,
                            )
                        )
                    else:
                        # Same guard accounting as the materialised
                        # paths: charge the product size (up front when
                        # unfiltered, per pair after a hash join), then
                        # one verification tick per probed pair.
                        if pair_filter is None:
                            guard.tick(pairs_probed, what="join product")
                        else:
                            for _ in pairs:
                                guard.tick(what="join product")
                        results = []
                        pairs_materialized = 0
                        for pair in pairs:
                            guard.tick(what="result verification")
                            pair_results, materialized = (
                                tax_batch.join_pairs_batched(
                                    left_entries,
                                    right_entries,
                                    [pair],
                                    verified_pattern,
                                    sl,
                                    self._evaluation_context(),
                                    evaluator=evaluator,
                                    restrictions=restrictions,
                                    order=order,
                                    steps=vsteps,
                                )
                            )
                            results.extend(pair_results)
                            pairs_materialized += materialized
                            guard.check_results(
                                len(results), "query verification"
                            )
                        results = dedupe(results)
                elif pair_filter is None:
                    if guard is None:
                        results = tax_algebra.join(
                            left_candidates,
                            right_candidates,
                            verified_pattern,
                            sl,
                            self._evaluation_context(),
                            evaluator=evaluator,
                            restrictions=restrictions,
                        )
                    else:
                        # Account for the product size up front (the step
                        # budget rejects a blow-up before it is
                        # materialised), then verify product trees one at
                        # a time under the deadline.
                        guard.tick(
                            len(left_candidates) * len(right_candidates),
                            what="join product",
                        )
                        products = tax_algebra.product(
                            left_candidates, right_candidates
                        )
                        results = self._guarded_per_tree(
                            products,
                            guard,
                            lambda trees: tax_algebra.selection(
                                trees,
                                verified_pattern,
                                sl,
                                self._evaluation_context(),
                                evaluator=evaluator,
                                restrictions=restrictions,
                            ),
                        )
                else:
                    products: List[XmlNode] = []
                    for left_index, right_index in sorted(pair_filter):
                        if guard is not None:
                            guard.tick(what="join product")
                        root = XmlNode(tax_algebra.PRODUCT_ROOT_TAG)
                        root.append(left_candidates[left_index].copy())
                        root.append(right_candidates[right_index].copy())
                        products.append(root.renumber())
                    results = self._guarded_per_tree(
                        products,
                        guard,
                        lambda trees: tax_algebra.selection(
                            trees,
                            verified_pattern,
                            sl,
                            self._evaluation_context(),
                            evaluator=evaluator,
                            restrictions=restrictions,
                        ),
                    )
                tracer.annotate(
                    results=len(results),
                    batched=use_batched,
                    pairs_probed=pairs_probed,
                    pairs_materialized=pairs_materialized,
                    guard_steps=self._guard_steps(guard) - steps_before,
                )
            convert_seconds = time.perf_counter() - started
        report = ExecutionReport(
            results,
            rewrite_seconds,
            xpath_seconds,
            convert_seconds,
            [sides[0]["xpath"], sides[1]["xpath"]],
            len(left_candidates) + len(right_candidates),
            self._accesses() - accesses_before,
            planner_seconds=planner_seconds,
            docs_total=docs_total,
            docs_scanned=docs_scanned,
            index_used=index_used,
            plan_cache_hit=cache_hit,
            docs_verified=len(left_candidates) + len(right_candidates),
            pairs_probed=pairs_probed,
            pairs_materialized=pairs_materialized,
        )
        plan_lines: Optional[List[str]] = None
        if self.observability.enabled and index_used:
            plan_lines = []
            for name, side in zip(("left", "right"), sides):
                for line in side["spec"].describe():
                    plan_lines.append(f"{name}: {line}")
        return self._finish_query(
            "join",
            f"{sides[0]['xpath']} | {sides[1]['xpath']}",
            tracer,
            guard,
            report,
            plan_lines=plan_lines,
        )

    def _prune_join(
        self,
        left_collection: str,
        right_collection: str,
        plan: Dict[str, object],
        guard: Optional[ResourceGuard],
        left_restrict: Optional[Set[str]] = None,
    ) -> Tuple[Optional[Set[str]], Optional[Set[str]], int, int, bool]:
        """Per-side + cross-side pruning for a join plan.

        ``left_restrict`` limits the left (partitioned) side to an
        externally chosen document subset; the right side is always
        evaluated in full, since every left document joins against it.
        """
        left = self.database.get_collection(left_collection)
        right = self.database.get_collection(right_collection)
        docs_total = len(left) + len(right)
        if not self.use_index or not plan["prunable"]:
            if left_restrict is not None:
                keys = {key for key in left_restrict if key in left}
                return keys, None, docs_total, len(keys) + len(right), False
            return None, None, docs_total, docs_total, False
        sides = plan["sides"]  # type: ignore[assignment]
        seo = self.context.seo if self.context is not None else None
        left_index = left.search_index()
        right_index = right.search_index()
        assert left_index is not None and right_index is not None

        left_keys: Optional[Set[str]] = None
        right_keys: Optional[Set[str]] = None
        if sides[0]["spec"].prunable:
            left_keys = prune_candidates(sides[0]["spec"], left_index, guard, seo)
        if sides[1]["spec"].prunable:
            right_keys = prune_candidates(sides[1]["spec"], right_index, guard, seo)

        cross = plan["cross"]
        if cross is not None:
            # The cross probe is a pure function of the two indexes, the
            # probe spec and the SEO, so its result is memoised per
            # collection generation; a guard opts out (cache hits would
            # skip its per-term ticks and distort step accounting).
            cache_key = None
            if guard is None:
                cache_key = (
                    left_collection,
                    left.generation,
                    right_collection,
                    right.generation,
                    cross,
                    id(seo),
                )
                cached = self._cross_probe_cache.get(cache_key)
                if cached is None:
                    cached = prune_join_docs(
                        left_index, right_index, cross, seo, None
                    )
                    self._cross_probe_cache.put(cache_key, cached)
                # Copies: callers intersect the sets in place.
                cross_left, cross_right = set(cached[0]), set(cached[1])
            else:
                cross_left, cross_right = prune_join_docs(
                    left_index, right_index, cross, seo, guard
                )
            left_keys = (
                cross_left if left_keys is None else left_keys & cross_left
            )
            right_keys = (
                cross_right if right_keys is None else right_keys & cross_right
            )

        index_used = left_keys is not None or right_keys is not None
        if left_restrict is not None:
            if left_keys is None:
                left_keys = {key for key in left_restrict if key in left}
            else:
                left_keys &= left_restrict
        docs_scanned = (len(left_keys) if left_keys is not None else len(left)) + (
            len(right_keys) if right_keys is not None else len(right)
        )
        return left_keys, right_keys, docs_total, docs_scanned, index_used

    def _similarity_join_pairs(
        self,
        left_candidates: Sequence[XmlNode],
        right_candidates: Sequence[XmlNode],
        atom,
        condition: Condition,
        guard: Optional[ResourceGuard] = None,
    ) -> Set[Tuple[int, int]]:
        """Candidate pairs that can satisfy a cross-side ``~`` conjunct.

        A length-bucketed similarity hash join: right-side values outside
        the ontology are bucketed by string length; each left value probes
        only the buckets the measure's length lower bound allows.  Values
        known to the SEO go through ``seo.similar`` directly (fused terms
        may be "similar" at arbitrary string distance, so the distance
        bucketing must not prune them).  Sound: a pair is dropped only
        when *no* value pair can satisfy the atom.
        """
        assert self.context is not None
        seo = self.context.seo
        measure = seo.measure
        epsilon = seo.epsilon
        tags = required_tags(condition)

        def values_of(candidate: XmlNode, label: int) -> List[str]:
            restriction = tags.get(label)
            return [
                node.text
                for node in candidate.iter()
                if node.text and (restriction is None or node.tag in restriction)
            ]

        left_label = next(iter(atom.left.labels()))
        right_label = next(iter(atom.right.labels()))

        by_length: Dict[int, List[Tuple[int, str]]] = {}
        known_right: List[Tuple[int, str]] = []
        for j, candidate in enumerate(right_candidates):
            for value in values_of(candidate, right_label):
                if value in seo:
                    known_right.append((j, value))
                else:
                    by_length.setdefault(len(value), []).append((j, value))

        radius = int(epsilon)
        pairs: Set[Tuple[int, int]] = set()
        for i, candidate in enumerate(left_candidates):
            if guard is not None:
                guard.tick(what="similarity hash join")
            for value in values_of(candidate, left_label):
                if value in seo:
                    # Known terms may be similar to anything sharing an
                    # SEO node: fall back to the semantic test everywhere.
                    for j, other in known_right:
                        if seo.similar(value, other):
                            pairs.add((i, j))
                    for bucket in by_length.values():
                        for j, other in bucket:
                            if seo.similar(value, other):
                                pairs.add((i, j))
                    continue
                for length in range(len(value) - radius, len(value) + radius + 1):
                    for j, other in by_length.get(length, ()):
                        if (i, j) in pairs:
                            continue
                        if measure.bounded_distance(value, other, epsilon) <= epsilon:
                            pairs.add((i, j))
                for j, other in known_right:
                    if seo.similar(value, other):
                        pairs.add((i, j))
        return pairs


def _cross_similarity_atom(
    condition: Condition, left_labels: Set[int], right_labels: Set[int]
):
    """The first top-level ``~`` conjunct relating content across sides.

    Returns None when the condition has no such conjunct (then the join
    must fall back to the full product).  Both operands must be single
    node-content terms, one per side; the atom orientation is normalised
    so its left term references the left side.
    """
    from .conditions import SimilarTo

    def conjuncts(node: Condition):
        if isinstance(node, And):
            for operand in node.operands:
                yield from conjuncts(operand)
        else:
            yield node

    for atom in conjuncts(condition):
        if not isinstance(atom, SimilarTo):
            continue
        if not isinstance(atom.left, NodeContent) or not isinstance(
            atom.right, NodeContent
        ):
            continue
        left_side = atom.left.labels()
        right_side = atom.right.labels()
        if left_side <= left_labels and right_side <= right_labels:
            return atom
        if left_side <= right_labels and right_side <= left_labels:
            return SimilarTo(atom.right, atom.left)
    return None


def _copy_structure(source: PatternTree, target: PatternTree) -> None:
    """Copy the node/edge structure of ``source`` into the empty ``target``.

    Labels are added in the source's insertion order, which is parent-first
    by :class:`PatternTree`'s construction invariant.
    """
    for label in source.labels():
        node = source.node(label)
        if node.parent is None:
            target.add_node(label)
        else:
            target.add_node(label, parent=node.parent, edge=node.edge)
