"""Index-aware candidate pruning for the Query Executor.

The scan pipeline runs the compiled XPath prefilter over *every* document
and hands the matches to TAX verification.  This module derives, from the
pattern tree and its **original** condition, a set of index probes whose
conjunction is a *necessary* condition for a document to contribute a
verified result:

* **tag probes** — each label whose tag is constrained by the condition
  must appear in the document;
* **edge probes** — a ``pc``/``ad`` pattern edge between two
  tag-constrained labels requires the corresponding adjacent/ordered tag
  pair on some root-to-leaf path;
* **value probes** — each top-level content conjunct (equality,
  one-label ``Or`` of equalities, or a constant-sided semantic atom
  expanded through the SEO *against the index*) requires the document to
  contain one of the admissible values under the admissible tags.

Soundness is argued against *verified* results, not XPath candidates: a
verified embedding satisfies every top-level conjunct through exact
``node.text``/``node.tag`` facts (or, for ``~``, the SEO's similarity
including its edit-distance fallback), and the postings record exactly
those facts.  A probed document set therefore contains every document
any verified result comes from, and running the same XPath restricted to
it — in collection order — returns results identical to the full scan.
The XPath *candidate count* may legally shrink: XPath's ``. = 'v'``
compares subtree string-values, which verification does not.

Whenever an atom is not indexable it is simply skipped (the probe set
gets weaker, never wrong); when the whole condition cannot be pruned
safely — notably semantic atoms with no SEO context, where the scan path
must raise — :func:`build_plan_spec` refuses and the executor falls back
to the full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import ConditionError
from ..guard import ResourceGuard
from ..obs.metrics import REGISTRY as METRICS
from ..obs.trace import current_tracer
from ..similarity.seo import SimilarityEnhancedOntology
from ..tax.conditions import (
    And,
    Comparison,
    Condition,
    Constant,
    NodeContent,
    Not,
    Or,
    required_tags,
)
from ..tax.pattern import AD, PatternTree
from ..xmldb.index import CollectionSearchIndex
from .conditions import SeoConditionContext, SimilarTo, _SemanticAtom, _expansion_for

#: Skip pair probes whose tag-restriction product explodes.
MAX_PAIR_COMBINATIONS = 16


@dataclass(frozen=True)
class ValuesProbe:
    """One content conjunct: the document must hold one of ``values``.

    ``tags`` restricts which element tags may carry the value (None: any);
    ``similar_to`` marks a ``~`` atom's constant, for which the probe is
    augmented at prune time with indexed terms outside the ontology that
    the similarity measure accepts (the SEO's distance fallback).
    """

    label: int
    tags: Optional[FrozenSet[str]]
    values: FrozenSet[str]
    similar_to: Optional[str] = None


@dataclass(frozen=True)
class CrossProbe:
    """A join's cross-side content conjunct, probed document-to-document.

    ``kind`` is ``"similar"`` (SEO semantics) or ``"equal"`` (plain string
    equality); the tag sets restrict which elements' values participate
    on each side.
    """

    kind: str
    left_label: int
    right_label: int
    left_tags: Optional[FrozenSet[str]]
    right_tags: Optional[FrozenSet[str]]


@dataclass
class PlanSpec:
    """The pruning plan for one pattern (or one join side)."""

    prunable: bool
    reason: str = ""
    tag_probes: List[FrozenSet[str]] = field(default_factory=list)
    pc_probes: List[FrozenSet[Tuple[str, str]]] = field(default_factory=list)
    ad_probes: List[FrozenSet[Tuple[str, str]]] = field(default_factory=list)
    value_probes: List[ValuesProbe] = field(default_factory=list)

    def describe(self) -> List[str]:
        """Human-readable probe summary for ``explain``."""
        if not self.prunable:
            return [f"full scan ({self.reason})"]
        lines: List[str] = []
        for tags in self.tag_probes:
            lines.append(f"tag in {{{', '.join(sorted(tags))}}}")
        for pairs in self.pc_probes:
            rendered = ", ".join(f"{p}/{c}" for p, c in sorted(pairs))
            lines.append(f"pc pair in {{{rendered}}}")
        for pairs in self.ad_probes:
            rendered = ", ".join(f"{a}//{d}" for a, d in sorted(pairs))
            lines.append(f"ad pair in {{{rendered}}}")
        for probe in self.value_probes:
            where = (
                f"under {{{', '.join(sorted(probe.tags))}}}"
                if probe.tags
                else "anywhere"
            )
            extra = (
                f" + terms within epsilon of {probe.similar_to!r}"
                if probe.similar_to is not None
                else ""
            )
            lines.append(
                f"node[{probe.label}] {where}: one of {len(probe.values)} "
                f"indexed value(s){extra}"
            )
        if not lines:
            lines.append("no indexable probes (index restricts nothing)")
        return lines


def describe_verify_strategy(batched: bool, join: bool = False) -> str:
    """One ``explain`` line naming the verification strategy.

    ``batched`` reflects the executor's ``verify_batched`` knob — the
    set-oriented columnar scan (and, for joins, late product
    materialisation) versus the per-candidate tree walk.  Note the knob
    states intent: candidates whose documents have no columnar arrays
    still fall back to the tree walk entry by entry.
    """
    if not batched:
        return "verify: per-candidate tree walk (verify_batched=False)"
    if join:
        return "verify: set-oriented batch over columns, late-materialized products"
    return "verify: set-oriented batch over columnar rows"


def has_semantic_atom(condition: Condition) -> bool:
    """True when any ``~``/ontology atom occurs anywhere in the condition."""
    if isinstance(condition, _SemanticAtom):
        return True
    if isinstance(condition, (And, Or)):
        return any(has_semantic_atom(op) for op in condition.operands)
    if isinstance(condition, Not):
        return has_semantic_atom(condition.operand)
    return False


def _conjuncts(condition: Condition):
    if isinstance(condition, And):
        for operand in condition.operands:
            yield from _conjuncts(operand)
    else:
        yield condition


def _content_equality(atom: Comparison) -> Optional[Tuple[int, str]]:
    """(label, value) for ``content = constant`` in either orientation."""
    if atom.op != "=":
        return None
    left, right = atom.left, atom.right
    if isinstance(left, NodeContent) and isinstance(right, Constant):
        return (left.label, right.value)
    if isinstance(right, NodeContent) and isinstance(left, Constant):
        return (right.label, left.value)
    return None


def _exact_fallback_values(atom: _SemanticAtom) -> Optional[FrozenSet[str]]:
    """The degraded-mode value set of a constant-sided semantic atom.

    Under :class:`~repro.core.conditions.ExactFallbackContext` every
    semantic operator collapses to string equality except ``instance_of``
    which is always false — the empty probe, pruning to no documents,
    exactly as the scan path verifies to no results.
    """
    from .conditions import InstanceOf

    if not isinstance(atom.right, Constant):
        return None
    if isinstance(atom, InstanceOf):
        return frozenset()
    return frozenset({atom.right.value})


def build_plan_spec(
    pattern: PatternTree,
    condition: Condition,
    context: Optional[SeoConditionContext],
    exact_fallback: bool,
) -> PlanSpec:
    """Derive index probes from a pattern and its *original* condition.

    Returns a non-prunable spec when pruning could change observable
    behaviour: with no SEO context and no exact fallback, a semantic atom
    makes the scan path raise — an empty pruned set would silently mask
    that, so the planner steps aside.
    """
    if context is None and not exact_fallback and has_semantic_atom(condition):
        return PlanSpec(
            prunable=False,
            reason="semantic atoms require an SEO context",
        )

    tags = required_tags(condition)
    spec = PlanSpec(prunable=True)

    for label in pattern.labels():
        restriction = tags.get(label)
        if restriction:
            spec.tag_probes.append(frozenset(restriction))
        node = pattern.node(label)
        if node.parent is None:
            continue
        parent_restriction = tags.get(node.parent)
        if not restriction or not parent_restriction:
            continue
        if len(restriction) * len(parent_restriction) > MAX_PAIR_COMBINATIONS:
            continue
        pairs = frozenset(
            (parent_tag, child_tag)
            for parent_tag in parent_restriction
            for child_tag in restriction
        )
        if node.edge == AD:
            spec.ad_probes.append(pairs)
        else:
            spec.pc_probes.append(pairs)

    for conjunct in _conjuncts(condition):
        if isinstance(conjunct, Comparison):
            pair = _content_equality(conjunct)
            if pair is not None:
                label, value = pair
                spec.value_probes.append(
                    ValuesProbe(label, _tags_of(tags, label), frozenset({value}))
                )
            continue
        if isinstance(conjunct, Or):
            probe = _or_equality_probe(conjunct, tags)
            if probe is not None:
                spec.value_probes.append(probe)
            continue
        if isinstance(conjunct, _SemanticAtom):
            if not isinstance(conjunct.left, NodeContent):
                continue  # tag-side atoms are left to verification
            label = conjunct.left.label
            if context is not None:
                try:
                    expansion = _expansion_for(conjunct, context)
                except ConditionError:
                    continue  # e.g. part_of with no attached SEO
                if expansion is None:
                    continue  # node-to-node atom: no constant to expand
                spec.value_probes.append(
                    ValuesProbe(
                        label,
                        _tags_of(tags, label),
                        expansion,
                        similar_to=(
                            conjunct.right.value
                            if isinstance(conjunct, SimilarTo)
                            else None
                        ),
                    )
                )
            elif exact_fallback:
                values = _exact_fallback_values(conjunct)
                if values is not None:
                    spec.value_probes.append(
                        ValuesProbe(label, _tags_of(tags, label), values)
                    )
            continue
        # Anything else (negation, typed/numeric comparisons, contains,
        # mixed disjunctions) is not probed: skipping only weakens pruning.

    return spec


def _tags_of(tags: Dict[int, Set[str]], label: int) -> Optional[FrozenSet[str]]:
    restriction = tags.get(label)
    return frozenset(restriction) if restriction else None


def _or_equality_probe(
    disjunction: Or, tags: Dict[int, Set[str]]
) -> Optional[ValuesProbe]:
    """A union probe for ``Or`` of content equalities over one label."""
    values: Set[str] = set()
    labels: Set[int] = set()
    for operand in disjunction.operands:
        if not isinstance(operand, Comparison):
            return None
        pair = _content_equality(operand)
        if pair is None:
            return None
        labels.add(pair[0])
        values.add(pair[1])
    if len(labels) != 1:
        return None
    label = labels.pop()
    return ValuesProbe(label, _tags_of(tags, label), frozenset(values))


def prune_candidates(
    spec: PlanSpec,
    index: CollectionSearchIndex,
    guard: Optional[ResourceGuard] = None,
    seo: Optional[SimilarityEnhancedOntology] = None,
) -> Set[str]:
    """Intersect the spec's probes over the index into a document set.

    Every postings entry decoded counts against the guard's step budget
    (``what="index probe"``), so guarded queries stay bounded on the fast
    path too.  ``seo`` enables the ``~`` distance augmentation; without
    it, ``similar_to`` probes use only their expansion values.
    """
    docs: Set[str] = set(index.documents)
    tracer = current_tracer()
    probes_run = 0

    def tick(steps: int) -> None:
        if guard is not None:
            guard.tick(steps, what="index probe")

    with tracer.span("planner.prune", docs_in=len(docs)):
        for tag_set in spec.tag_probes:
            if not docs:
                break
            matched = index.docs_with_any_tag(tag_set)
            tick(1 + len(tag_set))
            probes_run += 1
            METRICS.counter("planner.probes.tag").inc()
            docs &= matched
        for pairs in spec.pc_probes:
            if not docs:
                break
            tick(1 + len(pairs))
            probes_run += 1
            METRICS.counter("planner.probes.pc").inc()
            docs &= index.docs_with_pc_pair(pairs)
        for pairs in spec.ad_probes:
            if not docs:
                break
            tick(1 + len(pairs))
            probes_run += 1
            METRICS.counter("planner.probes.ad").inc()
            docs &= index.docs_with_ad_pair(pairs)

        for probe in spec.value_probes:
            if not docs:
                break
            matched: Set[str] = set()
            probes_run += 1
            METRICS.counter("planner.probes.value").inc()
            for value in probe.values:
                hits = index.docs_with_term(value, probe.tags)
                tick(1 + len(hits))
                matched |= hits
            if probe.similar_to is not None and seo is not None:
                # The SEO's similarity falls back to bounded edit distance
                # when either operand is outside the ontology, so terms the
                # expansion cannot enumerate may still verify: scan every
                # indexed term not already covered and not in the ontology.
                METRICS.counter("planner.probes.distance_scan").inc()
                constant = probe.similar_to
                epsilon = seo.epsilon
                measure = seo.measure
                for term, term_docs in index.terms_with_tags(probe.tags).items():
                    if term in probe.values or term in seo:
                        continue
                    tick(1)
                    if measure.bounded_distance(term, constant, epsilon) <= epsilon:
                        matched |= term_docs
            docs &= matched
        tracer.annotate(docs_out=len(docs), probes=probes_run)

    return docs


# ---------------------------------------------------------------------------
# Cross-side join pruning
# ---------------------------------------------------------------------------


def find_cross_probe(
    condition: Condition,
    left_labels: Set[int],
    right_labels: Set[int],
    context: Optional[SeoConditionContext],
    exact_fallback: bool,
) -> Optional[CrossProbe]:
    """The first top-level cross-side content conjunct, as a probe.

    ``~`` needs an SEO to probe (under exact fallback it degrades to
    equality, matching the degraded verification); plain ``=`` works in
    any mode.  Returns None when no such conjunct exists — per-side
    pruning still applies, only the cross-side step is skipped.
    """
    tags = required_tags(condition)
    for atom in _conjuncts(condition):
        is_similar = isinstance(atom, SimilarTo)
        is_equal = isinstance(atom, Comparison) and atom.op == "="
        if not is_similar and not is_equal:
            continue
        if not isinstance(atom.left, NodeContent) or not isinstance(
            atom.right, NodeContent
        ):
            continue
        if is_similar and context is None and not exact_fallback:
            continue
        kind = "similar" if is_similar and context is not None else "equal"
        left_label, right_label = atom.left.label, atom.right.label
        if left_label in right_labels and right_label in left_labels:
            left_label, right_label = right_label, left_label
        if left_label not in left_labels or right_label not in right_labels:
            continue
        return CrossProbe(
            kind=kind,
            left_label=left_label,
            right_label=right_label,
            left_tags=_tags_of(tags, left_label),
            right_tags=_tags_of(tags, right_label),
        )
    return None


def prune_join_docs(
    left_index: CollectionSearchIndex,
    right_index: CollectionSearchIndex,
    probe: CrossProbe,
    seo: Optional[SimilarityEnhancedOntology],
    guard: Optional[ResourceGuard] = None,
) -> Tuple[Set[str], Set[str]]:
    """Documents on each side that can participate in the cross conjunct.

    Works over *distinct terms* rather than candidate pairs — the same
    length-bucketed strategy as the executor's similarity hash join, but
    at index granularity, before any XPath runs.  A document survives iff
    one of its indexed values (under the probe's tags) has a partner on
    the other side; the semantics mirror ``seo.similar`` exactly (shared
    node for known pairs, bounded edit distance otherwise), so every
    verifiable pair's documents survive.
    """
    left_terms = left_index.terms_with_tags(probe.left_tags)
    right_terms = right_index.terms_with_tags(probe.right_tags)
    tracer = current_tracer()
    METRICS.counter("planner.probes.cross").inc()

    def tick(steps: int = 1) -> None:
        if guard is not None:
            guard.tick(steps, what="index probe")

    tick(len(left_terms) + len(right_terms))

    left_docs: Set[str] = set()
    right_docs: Set[str] = set()

    if probe.kind == "equal":
        with tracer.span(
            "planner.cross_probe",
            kind=probe.kind,
            left_terms=len(left_terms),
            right_terms=len(right_terms),
        ):
            for term, docs in left_terms.items():
                partner = right_terms.get(term)
                tick()
                if partner is not None:
                    left_docs |= docs
                    right_docs |= partner
        return left_docs, right_docs

    assert seo is not None
    measure = seo.measure
    epsilon = seo.epsilon
    radius = int(epsilon)

    known_right: List[str] = []
    by_length: Dict[int, List[str]] = {}
    for term in right_terms:
        if term in seo:
            known_right.append(term)
        else:
            by_length.setdefault(len(term), []).append(term)

    with tracer.span(
        "planner.cross_probe",
        kind=probe.kind,
        left_terms=len(left_terms),
        right_terms=len(right_terms),
    ):
        for term, docs in left_terms.items():
            if term in seo:
                # Fused SEO terms can be similar at arbitrary distance, so
                # known terms consult the ontology against every partner.
                for other in right_terms:
                    tick()
                    if seo.similar(term, other):
                        left_docs |= docs
                        right_docs |= right_terms[other]
                continue
            for length in range(len(term) - radius, len(term) + radius + 1):
                for other in by_length.get(length, ()):
                    tick()
                    if measure.bounded_distance(term, other, epsilon) <= epsilon:
                        left_docs |= docs
                        right_docs |= right_terms[other]
            for other in known_right:
                tick()
                if seo.similar(term, other):
                    left_docs |= docs
                    right_docs |= right_terms[other]

    return left_docs, right_docs
