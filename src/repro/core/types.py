"""Types, domains and conversion functions (Section 5).

The ontology-extended data model associates a *type* with every object
attribute; types form a hierarchy, each type has a domain, and pairs of
types may be related by *conversion functions* subject to the paper's
closure conditions:

* for each type tau, ``tau2tau`` exists and is the identity;
* conversions compose: if ``tau1->tau2`` and ``tau2->tau3`` exist then so
  does ``tau1->tau3``, and all composition routes agree;
* if ``tau1 <= tau2`` in a hierarchy, a conversion ``tau1->tau2`` exists.

:class:`TypeSystem` enforces these: conversions are found by breadth-first
search over registered edges and composed automatically; ``validate()``
checks the hierarchy-coverage constraint and (on small systems) route
consistency.  Comparisons in the TOSS condition language use
:meth:`TypeSystem.least_common_supertype` and convert both operands there —
the "well-typed" machinery of Section 5.1.1.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ConversionError, TypeSystemError
from ..ontology.hierarchy import Hierarchy

#: A conversion function maps a value of the source domain to the target's.
ConversionFunction = Callable[[object], object]

#: The universal string type every untyped attribute falls back to.
STRING = "string"


class TypeSystem:
    """A type hierarchy plus a closed set of conversion functions."""

    def __init__(self, hierarchy: Optional[Hierarchy] = None) -> None:
        base = hierarchy if hierarchy is not None else Hierarchy(nodes=[STRING])
        if STRING not in base:
            base = base.with_terms([STRING])
        self.hierarchy = base
        self._conversions: Dict[Tuple[str, str], ConversionFunction] = {}
        self._parsers: Dict[str, Callable[[str], object]] = {}
        self._members: Dict[str, Callable[[object], bool]] = {}
        for type_name in base.terms:
            self._conversions[(type_name, type_name)] = lambda value: value

    # -- registration ----------------------------------------------------------

    def add_type(
        self,
        name: str,
        supertype: Optional[str] = None,
        parser: Optional[Callable[[str], object]] = None,
        member: Optional[Callable[[object], bool]] = None,
    ) -> None:
        """Register a type, optionally below ``supertype`` in the hierarchy.

        ``parser`` turns raw strings into domain values (used before
        conversion); ``member`` is the dom(tau) membership test.
        """
        if name in self.hierarchy:
            raise TypeSystemError(f"type {name!r} already exists")
        if supertype is not None and supertype not in self.hierarchy:
            raise TypeSystemError(f"unknown supertype {supertype!r}")
        edges = list(self.hierarchy.edges())
        nodes = set(self.hierarchy.terms) | {name}
        if supertype is not None:
            edges.append((name, supertype))
        self.hierarchy = Hierarchy(edges, nodes=nodes)
        self._conversions[(name, name)] = lambda value: value
        if parser is not None:
            self._parsers[name] = parser
        if member is not None:
            self._members[name] = member

    def add_conversion(
        self, source: str, target: str, function: ConversionFunction
    ) -> None:
        """Register the (unique) conversion ``source -> target``."""
        for type_name in (source, target):
            if type_name not in self.hierarchy:
                raise TypeSystemError(f"unknown type {type_name!r}")
        if (source, target) in self._conversions and source != target:
            raise TypeSystemError(
                f"conversion {source} -> {target} is already registered; "
                f"the paper assumes at most one per type pair"
            )
        self._conversions[(source, target)] = function

    # -- lookups ------------------------------------------------------------------

    def has_type(self, name: str) -> bool:
        return name in self.hierarchy

    def parse_value(self, raw: str, type_name: str) -> object:
        """Interpret a raw string as a value of ``type_name``."""
        parser = self._parsers.get(type_name)
        if parser is None:
            return raw
        try:
            return parser(raw)
        except (ValueError, TypeError) as exc:
            raise ConversionError(
                f"value {raw!r} is not in dom({type_name})"
            ) from exc

    def in_domain(self, value: object, type_name: str) -> bool:
        """dom(tau) membership; types without a member test accept strings."""
        member = self._members.get(type_name)
        if member is not None:
            return member(value)
        return isinstance(value, str) or type_name != STRING

    def _conversion_path(self, source: str, target: str) -> Optional[List[str]]:
        """Shortest chain of registered conversions from source to target."""
        if source == target:
            return [source]
        adjacency: Dict[str, List[str]] = {}
        for (from_type, to_type) in self._conversions:
            if from_type != to_type:
                adjacency.setdefault(from_type, []).append(to_type)
        parents: Dict[str, str] = {}
        frontier = deque([source])
        seen = {source}
        while frontier:
            current = frontier.popleft()
            for nxt in adjacency.get(current, ()):
                if nxt in seen:
                    continue
                parents[nxt] = current
                if nxt == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(nxt)
                frontier.append(nxt)
        return None

    def can_convert(self, source: str, target: str) -> bool:
        """True iff a (possibly composed) conversion exists."""
        if source == target:
            return True
        return self._conversion_path(source, target) is not None

    def convert(self, value: object, source: str, target: str) -> object:
        """Apply the (composed) conversion ``source -> target``.

        Raises :class:`ConversionError` when no route exists.
        """
        path = self._conversion_path(source, target)
        if path is None:
            raise ConversionError(f"no conversion function {source} -> {target}")
        for from_type, to_type in zip(path, path[1:]):
            value = self._conversions[(from_type, to_type)](value)
        return value

    def least_common_supertype(self, first: str, second: str) -> Optional[str]:
        """The least upper bound of two types in the hierarchy, or None."""
        if first not in self.hierarchy or second not in self.hierarchy:
            return None
        return self.hierarchy.least_upper_bound(first, second)

    def subtype(self, lower: str, upper: str) -> bool:
        """``lower <= upper`` in the type hierarchy."""
        if lower not in self.hierarchy or upper not in self.hierarchy:
            return False
        return self.hierarchy.leq(lower, upper)

    # -- validation ------------------------------------------------------------------

    def validate(self, check_routes: bool = False, probes: Sequence[object] = ()) -> None:
        """Check the paper's closure conditions.

        * every ``tau1 <= tau2`` hierarchy edge has a conversion route;
        * with ``check_routes``, all composition routes between each type
          pair agree on the given probe values (the paper's uniqueness
          assumption).
        """
        for lower, upper in self.hierarchy.edges():
            if not self.can_convert(str(lower), str(upper)):
                raise TypeSystemError(
                    f"hierarchy requires a conversion {lower} -> {upper} "
                    f"but none is registered or composable"
                )
        if not check_routes:
            return
        types = [str(t) for t in self.hierarchy.terms]
        for source in types:
            for target in types:
                routes = self._all_paths(source, target, limit=8)
                if len(routes) < 2:
                    continue
                for probe in probes:
                    outcomes = set()
                    for route in routes:
                        value = probe
                        for from_type, to_type in zip(route, route[1:]):
                            value = self._conversions[(from_type, to_type)](value)
                        outcomes.add(value)
                    if len(outcomes) > 1:
                        raise TypeSystemError(
                            f"conversion routes {source} -> {target} disagree "
                            f"on probe {probe!r}: {sorted(map(str, outcomes))}"
                        )

    def _all_paths(self, source: str, target: str, limit: int) -> List[List[str]]:
        adjacency: Dict[str, List[str]] = {}
        for (from_type, to_type) in self._conversions:
            if from_type != to_type:
                adjacency.setdefault(from_type, []).append(to_type)
        paths: List[List[str]] = []

        def walk(current: str, trail: List[str]) -> None:
            if len(trail) > limit or len(paths) > 32:
                return
            if current == target and len(trail) > 1:
                paths.append(list(trail))
                return
            for nxt in adjacency.get(current, ()):
                if nxt not in trail:
                    trail.append(nxt)
                    walk(nxt, trail)
                    trail.pop()

        walk(source, [source])
        return paths

    def __repr__(self) -> str:
        return (
            f"TypeSystem({len(self.hierarchy)} types, "
            f"{len(self._conversions)} conversions)"
        )


def default_type_system() -> TypeSystem:
    """The type system used by the bibliographic experiments.

    ``string`` at the top; ``int`` and ``year`` below it with numeric
    parsing, so year comparisons are numeric, plus a measurement branch
    (mm/cm/m) and a currency branch (usd/eur) exercising real conversion
    functions, mirroring the paper's centimetre/US-dollar discussion.
    """
    system = TypeSystem()
    system.add_type("int", supertype=STRING, parser=lambda raw: int(str(raw)),
                    member=lambda value: isinstance(value, int))
    system.add_type("year", supertype="int", parser=lambda raw: int(str(raw)),
                    member=lambda value: isinstance(value, int) and 0 <= value <= 9999)
    system.add_conversion("int", STRING, str)
    system.add_conversion("year", "int", int)

    # Measurements: a "length" supertype (canonical unit: metres) so
    # mm-vs-cm comparisons find a numeric least common supertype instead
    # of degrading to string comparison.
    system.add_type("length", supertype=STRING, parser=lambda raw: float(str(raw)))
    system.add_type("length_mm", supertype="length", parser=lambda raw: float(str(raw)))
    system.add_type("length_cm", supertype="length", parser=lambda raw: float(str(raw)))
    system.add_type("length_m", supertype="length", parser=lambda raw: float(str(raw)))
    system.add_conversion("length", STRING, lambda value: str(value))
    system.add_conversion("length_mm", "length", lambda value: float(value) / 1000.0)
    system.add_conversion("length_cm", "length", lambda value: float(value) / 100.0)
    system.add_conversion("length_m", "length", lambda value: float(value))
    system.add_conversion("length_mm", "length_cm", lambda value: float(value) / 10.0)
    system.add_conversion("length_cm", "length_mm", lambda value: float(value) * 10.0)
    system.add_conversion("length_cm", "length_m", lambda value: float(value) / 100.0)
    system.add_conversion("length_m", "length_cm", lambda value: float(value) * 100.0)

    # Currency: canonical unit of the "currency" supertype is USD.
    system.add_type("currency", supertype=STRING, parser=lambda raw: float(str(raw)))
    system.add_type("usd", supertype="currency", parser=lambda raw: float(str(raw)))
    system.add_type("eur", supertype="currency", parser=lambda raw: float(str(raw)))
    system.add_conversion("currency", STRING, lambda value: str(value))
    system.add_conversion("usd", "currency", lambda value: float(value))
    system.add_conversion("eur", "currency", lambda value: round(float(value) / 0.9, 6))
    system.add_conversion("usd", "eur", lambda value: round(float(value) * 0.9, 6))
    system.add_conversion("eur", "usd", lambda value: round(float(value) / 0.9, 6))
    return system
