"""Ranked similarity queries — a graded extension of the ``~`` operator.

TOSS's ``~`` is boolean: two terms either share an SEO node or they do
not.  The related-work discussion (TIX) points towards *scored* answers;
this module provides that extension without changing the algebra: a
selection whose results are ranked by the total string distance its
SimilarTo atoms incurred, best match first.

The score of an embedding is the sum of ``d(x, y)`` over every
:class:`~repro.core.conditions.SimilarTo` atom in the (positive,
conjunctive) structure of the condition; a witness tree's score is the
best score among the embeddings that produced it.  Plain TOSS semantics
are preserved: only embeddings that *satisfy* the condition are scored,
so the ranking refines, never widens, the boolean answer set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import TossError
from ..tax.conditions import And, Condition
from ..tax.embedding import find_embeddings, witness_tree
from ..tax.pattern import PatternTree
from ..tax.tree import Collection
from ..xmldb.model import XmlNode
from .conditions import SeoConditionContext, SimilarTo


def similarity_atoms(condition: Condition) -> List[SimilarTo]:
    """SimilarTo atoms in the positive conjunctive structure."""
    atoms: List[SimilarTo] = []

    def visit(node: Condition) -> None:
        if isinstance(node, SimilarTo):
            atoms.append(node)
        elif isinstance(node, And):
            for operand in node.operands:
                visit(operand)

    visit(condition)
    return atoms


@dataclass
class ScoredResult:
    """One witness tree with its similarity score (smaller is better)."""

    tree: XmlNode
    score: float

    def __repr__(self) -> str:
        return f"ScoredResult(score={self.score:.3f}, tree={self.tree!r})"


@dataclass
class ScoredPattern:
    """A TIX-style scored pattern tree (the related-work extension).

    ``atom_weights`` weights the SimilarTo atoms' distances (in the order
    :func:`similarity_atoms` yields them); ``node_scorers`` attaches a
    user-defined score function to a pattern node — it receives the bound
    data node and returns a non-negative *penalty* that adds to the total
    (smaller is better throughout, consistent with distance semantics).
    """

    pattern: PatternTree
    atom_weights: Optional[Sequence[float]] = None
    node_scorers: Mapping[int, Callable[[XmlNode], float]] = field(
        default_factory=dict
    )

    def weights_for(self, atoms: Sequence[SimilarTo]) -> List[float]:
        if self.atom_weights is None:
            return [1.0] * len(atoms)
        if len(self.atom_weights) != len(atoms):
            raise TossError(
                f"pattern has {len(atoms)} similarity atoms but "
                f"{len(self.atom_weights)} weights were given"
            )
        return list(self.atom_weights)


def ranked_selection(
    collection: Collection,
    pattern: "PatternTree | ScoredPattern",
    context: SeoConditionContext,
    sl_labels: Iterable[int] = (),
    top_k: Optional[int] = None,
) -> List[ScoredResult]:
    """TOSS selection with results ranked by total similarity distance.

    ``pattern`` may be a plain pattern tree (every ``~`` atom weighted
    1.0) or a :class:`ScoredPattern` with per-atom weights and node score
    functions.  ``top_k`` truncates the ranking (None returns everything).
    Ties are broken by document order of discovery, which keeps the
    ranking deterministic.
    """
    if isinstance(pattern, ScoredPattern):
        scored = pattern
        pattern = scored.pattern
    else:
        scored = ScoredPattern(pattern)
    atoms = similarity_atoms(pattern.condition)
    weights = scored.weights_for(atoms)
    measure = context.seo.measure
    sl = list(sl_labels)

    best_by_key: dict = {}
    order: List[Tuple] = []
    for tree in collection:
        for embedding in find_embeddings(pattern, tree, context):
            score = 0.0
            for atom, weight in zip(atoms, weights):
                left = atom.left.resolve(embedding.binding)
                right = atom.right.resolve(embedding.binding)
                score += weight * measure.distance(left, right)
            for label, scorer in scored.node_scorers.items():
                bound = embedding.binding.get(label)
                if bound is not None:
                    score += scorer(bound)
            witness = witness_tree(embedding, sl)
            key = witness.canonical_key()
            if key not in best_by_key:
                best_by_key[key] = ScoredResult(witness, score)
                order.append(key)
            elif score < best_by_key[key].score:
                best_by_key[key] = ScoredResult(witness, score)

    ranked = sorted(
        (best_by_key[key] for key in order), key=lambda result: result.score
    )
    if top_k is not None:
        ranked = ranked[:top_k]
    return ranked
