"""The extended condition language of Section 5.1.1.

Simple conditions are ``X op Y`` with ``op`` drawn from ``=, !=, <, <=, >,
>=`` (now typed, with conversion through the least common supertype), the
similarity operator ``~`` and the ontology operators ``instance_of``,
``subtype_of`` (aliased ``isa``), ``below``, ``above`` and ``part_of``.
Satisfaction is relative to an SEO: the :class:`SeoConditionContext`
carries the similarity enhanced ontology (per relation) and the type
system, and plugs into the TAX evaluator's
:class:`~repro.tax.conditions.ConditionContext` hooks, so every TAX
operator transparently becomes a TOSS operator when run with it.

:func:`rewrite_condition` is the query-rewriting half of the paper's Query
Executor: semantic atoms over a constant are expanded into disjunctions of
exact matches via the SEO ("transforms a user query into a query that
takes ontological information into account").
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Optional, Set

from ..errors import ConditionError, IllTypedConditionError
from ..ontology.hierarchy import Ontology
from ..similarity.seo import SimilarityEnhancedOntology
from ..tax.compile import compile_term, register_condition_compiler
from ..tax.conditions import (
    DEFAULT_CONTEXT,
    And,
    Binding,
    Comparison,
    Condition,
    ConditionContext,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Not,
    Or,
    Term,
    TrueCondition,
)
from ..xmldb.model import XmlNode
from .types import STRING, TypeSystem, default_type_system

#: t(o, attr): maps a data node and attribute kind ("tag"/"content") to a type.
TypingFunction = Callable[[XmlNode, str], str]


def default_typing(node: XmlNode, attribute: str) -> str:
    """The Section 5 default: attribute types are the node's tag.

    "Consider o.tag = author ... extended with the ontology,
    t(o, tag) = author" — tags and contents are typed by the tag term,
    which the ontology orders below broader concepts.  Types unknown to
    the type system degrade to ``string`` during comparisons.
    """
    return node.tag


class SeoConditionContext(ConditionContext):
    """Evaluation context carrying SEOs (per relation) and the type system.

    Parameters
    ----------
    seo:
        The isa-relation SEO (the paper's default: "we will assume that
        the set Sigma equals {isa}").
    seos:
        Optional extra relation SEOs, e.g. ``{"part-of": ...}`` for the
        ``part_of`` operator.
    type_system:
        Conversion functions and the type hierarchy; defaults to
        :func:`default_type_system`.
    typing:
        The instance typing ``t(o, attr)``; defaults to tag-typing.
    """

    def __init__(
        self,
        seo: SimilarityEnhancedOntology,
        seos: Optional[Mapping[str, SimilarityEnhancedOntology]] = None,
        type_system: Optional[TypeSystem] = None,
        typing: TypingFunction = default_typing,
    ) -> None:
        self.seo = seo
        self.seos: Dict[str, SimilarityEnhancedOntology] = dict(seos or {})
        self.seos.setdefault(Ontology.ISA, seo)
        self.type_system = type_system if type_system is not None else default_type_system()
        self.typing = typing
        #: How often the ontology was consulted (Section 6 attributes the
        #: growing TOSS-TAX gap to "more accesses to the ontology").
        self.ontology_accesses = 0
        #: Verdict memo for ``subtype_of`` pairs.  Purely an evaluation
        #: cache: the access counter above ticks before the memo is
        #: consulted, so observable behaviour is unchanged.
        self._subtype_memo: Dict[tuple, bool] = {}

    def relation_seo(self, relation: str) -> SimilarityEnhancedOntology:
        try:
            return self.seos[relation]
        except KeyError:
            raise ConditionError(
                f"no SEO is attached for the {relation!r} relation"
            ) from None

    # -- semantic hooks -------------------------------------------------------

    def similar(self, left: str, right: str) -> bool:
        self.ontology_accesses += 1
        return self.seo.similar(left, right)

    def instance_of(self, left: str, right: str) -> bool:
        """X instance_of Y: X sits strictly below Y (as a value of it)."""
        self.ontology_accesses += 1
        return left != right and left in self.seo.expand_below(right)

    def subtype_of(self, left: str, right: str) -> bool:
        """X subtype_of Y: X <= Y in the enhanced order (reflexive)."""
        self.ontology_accesses += 1
        if left == right:
            return True
        memo = self._subtype_memo
        key = (left, right)
        verdict = memo.get(key)
        if verdict is None:
            verdict = left in self.seo.expand_below(right)
            memo[key] = verdict
        return verdict

    def below(self, left: str, right: str) -> bool:
        """X below Y = X instance_of Y or X subtype_of Y (Section 5.1.1)."""
        return self.subtype_of(left, right)

    def above(self, left: str, right: str) -> bool:
        """X above Y = Y below X."""
        return self.below(right, left)

    def part_of(self, left: str, right: str) -> bool:
        self.ontology_accesses += 1
        seo = self.relation_seo(Ontology.PART_OF)
        if left == right:
            return True
        return left in seo.expand_below(right)

    # -- typing ----------------------------------------------------------------

    def term_type(self, term: Term, binding: Binding) -> str:
        """``type(X)^h`` of Section 5.1.1."""
        if isinstance(term, Constant):
            return term.type_name if term.type_name is not None else STRING
        if isinstance(term, NodeTag):
            return self.typing(binding[term.label], "tag")
        if isinstance(term, NodeContent):
            return self.typing(binding[term.label], "content")
        return STRING

    def _registered_type(self, type_name: str) -> str:
        """Map ontology-level types outside the type system to ``string``."""
        return type_name if self.type_system.has_type(type_name) else STRING

    def typed_compare(self, op: str, left: Term, right: Term, binding: Binding) -> bool:
        """Well-typed comparison with conversion to the least common supertype.

        Raises :class:`IllTypedConditionError` when no least common
        supertype exists or a required conversion function is missing.
        """
        left_type = self._registered_type(self.term_type(left, binding))
        right_type = self._registered_type(self.term_type(right, binding))
        supertype = self.type_system.least_common_supertype(left_type, right_type)
        if supertype is None:
            raise IllTypedConditionError(
                f"no least common supertype for {left_type!r} and {right_type!r}"
            )
        for source in (left_type, right_type):
            if not self.type_system.can_convert(source, supertype):
                raise IllTypedConditionError(
                    f"no conversion function {source} -> {supertype}; "
                    f"the comparison is not well-typed"
                )
        left_value = self.type_system.convert(
            self.type_system.parse_value(left.resolve(binding), left_type),
            left_type,
            supertype,
        )
        right_value = self.type_system.convert(
            self.type_system.parse_value(right.resolve(binding), right_type),
            right_type,
            supertype,
        )
        return _apply_op(op, left_value, right_value)


class ExactFallbackContext(ConditionContext):
    """Degraded-mode evaluation: semantic operators become exact matching.

    When the SEO build fails or times out, :class:`~repro.core.system.
    TossSystem` keeps answering queries through this context instead of
    raising — ``~`` and the ontology operators degrade to plain string
    equality (the TAX baseline), ``instance_of`` (strictly below) to
    False, and typed comparisons to the base syntactic comparison.
    Results are sound but not similarity-complete; execution reports
    carry ``degraded=True`` so callers can tell.
    """

    def similar(self, left: str, right: str) -> bool:
        return left == right

    def instance_of(self, left: str, right: str) -> bool:
        return False

    def subtype_of(self, left: str, right: str) -> bool:
        return left == right

    def below(self, left: str, right: str) -> bool:
        return left == right

    def above(self, left: str, right: str) -> bool:
        return left == right

    def part_of(self, left: str, right: str) -> bool:
        return left == right

    def typed_compare(self, op: str, left: Term, right: Term, binding: Binding) -> bool:
        return self.compare(op, left.resolve(binding), right.resolve(binding))


#: Shared stateless instance of the degraded-mode context.
EXACT_FALLBACK_CONTEXT = ExactFallbackContext()


def _apply_op(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError as exc:
        raise IllTypedConditionError(
            f"values {left!r} and {right!r} are not comparable with {op!r}"
        ) from exc
    raise ConditionError(f"unknown comparison operator {op!r}")


# ---------------------------------------------------------------------------
# Extended atoms
# ---------------------------------------------------------------------------


class TypedComparison(Condition):
    """``X op Y`` with least-common-supertype conversion semantics.

    Falls back to the plain syntactic comparison when evaluated with a
    non-SEO context (plain TAX has no types beyond strings).
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Term, right: Term) -> None:
        if op not in Comparison.OPS:
            raise ConditionError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, binding: Binding, context: Optional[ConditionContext] = None) -> bool:
        if context is None:
            context = DEFAULT_CONTEXT
        if isinstance(context, SeoConditionContext):
            return context.typed_compare(self.op, self.left, self.right, binding)
        return context.compare(
            self.op, self.left.resolve(binding), self.right.resolve(binding)
        )

    def labels(self) -> Set[int]:
        return self.left.labels() | self.right.labels()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op}:typed {self.right!r})"


class _SemanticAtom(Condition):
    """Shared shape of the ontology/similarity operators."""

    HOOK = ""  # ConditionContext method name
    SYMBOL = ""

    __slots__ = ("left", "right")

    def __init__(self, left: Term, right: Term) -> None:
        self.left = left
        self.right = right

    def evaluate(self, binding: Binding, context: Optional[ConditionContext] = None) -> bool:
        if context is None:
            context = DEFAULT_CONTEXT
        hook = getattr(context, self.HOOK)
        return hook(self.left.resolve(binding), self.right.resolve(binding))

    def labels(self) -> Set[int]:
        return self.left.labels() | self.right.labels()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.SYMBOL} {self.right!r})"


class SimilarTo(_SemanticAtom):
    """``X ~ Y`` — true iff an SEO node contains both operand strings."""

    HOOK = "similar"
    SYMBOL = "~"

    __slots__ = ()


class InstanceOf(_SemanticAtom):
    """``X instance_of Y`` — X is a value strictly below the type Y."""

    HOOK = "instance_of"
    SYMBOL = "instance_of"

    __slots__ = ()


class SubtypeOf(_SemanticAtom):
    """``X subtype_of Y`` — X <= Y in the enhanced isa order."""

    HOOK = "subtype_of"
    SYMBOL = "subtype_of"

    __slots__ = ()


class Isa(SubtypeOf):
    """Alias: the paper writes both ``isa`` and ``subtype_of``."""

    SYMBOL = "isa"

    __slots__ = ()


class Below(_SemanticAtom):
    """``X below Y`` = instance_of or subtype_of."""

    HOOK = "below"
    SYMBOL = "below"

    __slots__ = ()


class Above(_SemanticAtom):
    """``X above Y`` = Y below X."""

    HOOK = "above"
    SYMBOL = "above"

    __slots__ = ()


class PartOf(_SemanticAtom):
    """``X part_of Y`` through the part-of relation's SEO (Example 12)."""

    HOOK = "part_of"
    SYMBOL = "part_of"

    __slots__ = ()


# ---------------------------------------------------------------------------
# Closure compilation (see repro.tax.compile)
# ---------------------------------------------------------------------------


def _compile_typed_comparison(condition, context, recurse):
    """TypedComparison: bind the context's dispatch once, at compile time."""
    op = condition.op
    if isinstance(context, SeoConditionContext):
        typed_compare = context.typed_compare
        left, right = condition.left, condition.right

        def typed(binding, _tc=typed_compare, _op=op, _l=left, _r=right):
            return _tc(_op, _l, _r, binding)

        return typed
    compare = context.compare
    left = compile_term(condition.left)
    right = compile_term(condition.right)

    def syntactic(binding, _c=compare, _op=op, _l=left, _r=right):
        return _c(_op, _l(binding), _r(binding))

    return syntactic


def _compile_semantic_atom(condition, context, recurse):
    """Semantic atoms: resolve the context hook once; same call thereafter.

    Going through the *bound* hook keeps side effects identical to the
    interpreter — ``SeoConditionContext.ontology_accesses`` ticks the
    same number of times, and the base context raises the same
    :class:`~repro.errors.ConditionError`.
    """
    hook = getattr(context, type(condition).HOOK)
    left = compile_term(condition.left)
    right = compile_term(condition.right)

    def semantic(binding, _hook=hook, _l=left, _r=right):
        return _hook(_l(binding), _r(binding))

    return semantic


register_condition_compiler(TypedComparison, _compile_typed_comparison)
for _atom_class in (SimilarTo, InstanceOf, SubtypeOf, Isa, Below, Above, PartOf):
    register_condition_compiler(_atom_class, _compile_semantic_atom)
del _atom_class


# ---------------------------------------------------------------------------
# Query rewriting (the executor's expansion step)
# ---------------------------------------------------------------------------


def _expansion_for(atom: _SemanticAtom, context: SeoConditionContext) -> Optional[FrozenSet[str]]:
    """The constant-side expansion set of a semantic atom, if it has one."""
    if not isinstance(atom.right, Constant):
        return None
    constant = atom.right.value
    if isinstance(atom, SimilarTo):
        return context.seo.expand_similar(constant)
    if isinstance(atom, (Below, SubtypeOf, InstanceOf)):
        terms = context.seo.expand_below(constant)
        if isinstance(atom, InstanceOf):
            terms = frozenset(terms - {constant})
        return terms
    if isinstance(atom, Above):
        return context.seo.expand_above(constant)
    if isinstance(atom, PartOf):
        return context.relation_seo(Ontology.PART_OF).expand_below(constant)
    return None


def rewrite_condition(
    condition: Condition, context: SeoConditionContext
) -> Condition:
    """Expand semantic atoms into exact-match disjunctions via the SEO.

    Atoms whose right operand is a constant are replaced by
    ``Or(left = t1, left = t2, ...)`` over the SEO expansion of the
    constant; all other nodes are rebuilt unchanged.  The result is a
    plain TAX condition (evaluable without an ontology and compilable to
    XPath), semantically equal to the original under ``context`` for
    constant-sided atoms.
    """
    if isinstance(condition, _SemanticAtom):
        expansion = _expansion_for(condition, context)
        if expansion is None:
            return condition  # node-to-node semantic atom: leave for runtime
        atoms = [
            Comparison("=", condition.left, Constant(term))
            for term in sorted(expansion)
        ]
        if not atoms:
            return Not(TrueCondition())
        if len(atoms) == 1:
            return atoms[0]
        return Or(*atoms)
    if isinstance(condition, And):
        return And(*[rewrite_condition(op, context) for op in condition.operands])
    if isinstance(condition, Or):
        return Or(*[rewrite_condition(op, context) for op in condition.operands])
    if isinstance(condition, Not):
        return Not(rewrite_condition(condition.operand, context))
    return condition
