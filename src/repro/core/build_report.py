"""Structured report of one SEO precomputation (:meth:`TossSystem.build`).

The build is the system's dominant cost, so operators need to see where
the time went and what the optimisation layers did: per relation, the
fusion/SEA split, whether the persistent similarity-graph cache hit, and
how many of the all-pairs comparisons the candidate filter pruned.  The
report is JSON-round-trippable so :func:`repro.core.persistence.save_system`
can persist it next to the saved system and ``db stats`` can show it
later without rebuilding anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..similarity.seo import SeoBuildStats

FORMAT_VERSION = 1


@dataclass
class RelationBuild:
    """One relation's slice of the build (isa, part-of, ...)."""

    relation: str
    cache_hit: bool = False
    cache_key: Optional[str] = None
    fusion_seconds: float = 0.0
    sea_seconds: float = 0.0
    total_seconds: float = 0.0
    #: :meth:`~repro.similarity.sea.SeaStats.to_dict` of the graph phase;
    #: None on a cache hit (nothing was computed).
    sea: Optional[Dict[str, Any]] = None
    #: The similarity graph was delta-maintained from the previous build.
    incremental: bool = False
    #: The fused hierarchy was extended instead of recondensed.
    fusion_incremental: bool = False
    #: The previous enhancement was patched in place (SEA never ran).
    enhancement_patched: bool = False
    #: Incremental builds since the last from-scratch build (0 = full).
    chain_depth: int = 0

    @classmethod
    def from_stats(cls, relation: str, stats: SeoBuildStats) -> "RelationBuild":
        return cls(
            relation=relation,
            cache_hit=stats.cache_hit,
            cache_key=stats.cache_key,
            fusion_seconds=stats.fusion_seconds,
            sea_seconds=stats.sea_seconds,
            total_seconds=stats.total_seconds,
            sea=stats.sea.to_dict() if stats.sea is not None else None,
            incremental=stats.incremental,
            fusion_incremental=stats.fusion_incremental,
            enhancement_patched=stats.enhancement_patched,
            chain_depth=stats.chain_depth,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relation": self.relation,
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
            "fusion_seconds": self.fusion_seconds,
            "sea_seconds": self.sea_seconds,
            "total_seconds": self.total_seconds,
            "sea": self.sea,
            "incremental": self.incremental,
            "fusion_incremental": self.fusion_incremental,
            "enhancement_patched": self.enhancement_patched,
            "chain_depth": self.chain_depth,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RelationBuild":
        return cls(
            relation=payload["relation"],
            cache_hit=bool(payload.get("cache_hit", False)),
            cache_key=payload.get("cache_key"),
            fusion_seconds=float(payload.get("fusion_seconds", 0.0)),
            sea_seconds=float(payload.get("sea_seconds", 0.0)),
            total_seconds=float(payload.get("total_seconds", 0.0)),
            sea=payload.get("sea"),
            incremental=bool(payload.get("incremental", False)),
            fusion_incremental=bool(payload.get("fusion_incremental", False)),
            enhancement_patched=bool(payload.get("enhancement_patched", False)),
            chain_depth=int(payload.get("chain_depth", 0)),
        )


@dataclass
class BuildReport:
    """Everything one :meth:`~repro.core.system.TossSystem.build` did."""

    measure: str = ""
    epsilon: float = 0.0
    mode: str = "order-safe"
    workers: int = 1
    candidate_filter: bool = True
    cache_used: bool = False
    build_seconds: float = 0.0
    degraded: bool = False
    error: Optional[str] = None
    relations: List[RelationBuild] = field(default_factory=list)
    #: The build's span tree (:meth:`repro.obs.trace.Span.to_dict` shape);
    #: None when the build ran without tracing.
    trace: Optional[Dict[str, Any]] = None

    # -- aggregates ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.relations if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.relations if not r.cache_hit)

    def _sea_total(self, key: str) -> int:
        return sum(
            int(r.sea.get(key, 0)) for r in self.relations if r.sea is not None
        )

    @property
    def total_pairs(self) -> int:
        return self._sea_total("total_pairs")

    @property
    def pairs_pruned(self) -> int:
        return self._sea_total("pairs_pruned")

    @property
    def candidates(self) -> int:
        return self._sea_total("candidates")

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "format": FORMAT_VERSION,
            "measure": self.measure,
            "epsilon": self.epsilon,
            "mode": self.mode,
            "workers": self.workers,
            "candidate_filter": self.candidate_filter,
            "cache_used": self.cache_used,
            "build_seconds": self.build_seconds,
            "degraded": self.degraded,
            "error": self.error,
            "relations": [r.to_dict() for r in self.relations],
        }
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BuildReport":
        return cls(
            measure=payload.get("measure", ""),
            epsilon=float(payload.get("epsilon", 0.0)),
            mode=payload.get("mode", "order-safe"),
            workers=int(payload.get("workers", 1)),
            candidate_filter=bool(payload.get("candidate_filter", True)),
            cache_used=bool(payload.get("cache_used", False)),
            build_seconds=float(payload.get("build_seconds", 0.0)),
            degraded=bool(payload.get("degraded", False)),
            error=payload.get("error"),
            relations=[
                RelationBuild.from_dict(r) for r in payload.get("relations", ())
            ],
            trace=payload.get("trace"),
        )

    def summary(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        lines = [
            f"build: measure={self.measure} epsilon={self.epsilon} "
            f"mode={self.mode} workers={self.workers} "
            f"filter={'on' if self.candidate_filter else 'off'} "
            f"cache={'on' if self.cache_used else 'off'}",
            f"  total {self.build_seconds:.3f}s"
            + (f"  DEGRADED: {self.error}" if self.degraded else ""),
        ]
        for r in self.relations:
            if r.cache_hit:
                lines.append(
                    f"  {r.relation}: cache hit ({r.total_seconds:.3f}s)"
                )
                continue
            detail = f"fusion {r.fusion_seconds:.3f}s, sea {r.sea_seconds:.3f}s"
            if r.incremental or r.fusion_incremental:
                detail += f", incremental (chain depth {r.chain_depth})"
            if r.sea is not None:
                detail += (
                    f", pairs {r.sea.get('total_pairs', 0)}"
                    f" (pruned {r.sea.get('pairs_pruned', 0)},"
                    f" verified {r.sea.get('candidates', 0)})"
                    f", edges {r.sea.get('graph_edges', 0)}"
                    f", cliques {r.sea.get('cliques', 0)}"
                )
                if r.sea.get("parallel_used"):
                    detail += f", parallel x{r.sea.get('workers', 1)}"
            lines.append(f"  {r.relation}: {detail}")
        return "\n".join(lines)
