"""The TOSS algebra (Section 5.1.2).

Each operator is the TAX operator evaluated under an SEO-aware condition
context, exactly as the paper defines them: "[sigma] returns the set of
witness trees WT such that [Exp']_F, WT |= F" where satisfaction is the
extended relation of Section 5.1.1.  Proposition 1 — every algebraic
expression again denotes an SEO instance — holds by construction: results
are tree collections viewed under the same shared SEO.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..tax import algebra as tax_algebra
from ..tax.pattern import PatternTree
from ..xmldb.model import XmlNode
from .conditions import SeoConditionContext
from .instance import SemistructuredInstance, SeoInstance

CollectionLike = Union[SemistructuredInstance, Sequence[XmlNode]]


def _trees(collection: CollectionLike) -> Sequence[XmlNode]:
    if isinstance(collection, SemistructuredInstance):
        return collection.trees
    return collection


class TossAlgebra:
    """The algebra's operators, bound to one SEO condition context.

    >>> algebra = TossAlgebra(context)          # doctest: +SKIP
    >>> results = algebra.selection(dblp, pattern, sl_labels=[1])
    """

    def __init__(self, context: SeoConditionContext) -> None:
        self.context = context

    # -- unary operators -------------------------------------------------------

    def selection(
        self,
        collection: CollectionLike,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
    ) -> List[XmlNode]:
        """``sigma_{P, SL}(Exp)`` with SEO satisfaction of F."""
        return tax_algebra.selection(_trees(collection), pattern, sl_labels, self.context)

    def projection(
        self,
        collection: CollectionLike,
        pattern: PatternTree,
        pl: Sequence[tax_algebra.ProjectionEntry],
    ) -> List[XmlNode]:
        """``pi_{P, PL}(Exp)`` with SEO satisfaction of F."""
        return tax_algebra.projection(_trees(collection), pattern, pl, self.context)

    # -- binary operators ----------------------------------------------------------

    def product(self, left: CollectionLike, right: CollectionLike) -> List[XmlNode]:
        """``Exp1 x Exp2`` (structure only; no conditions involved)."""
        return tax_algebra.product(_trees(left), _trees(right))

    def join(
        self,
        left: CollectionLike,
        right: CollectionLike,
        pattern: PatternTree,
        sl_labels: Iterable[int] = (),
    ) -> List[XmlNode]:
        """Condition join: product followed by SEO selection (Example 13)."""
        return tax_algebra.join(_trees(left), _trees(right), pattern, sl_labels, self.context)

    def union(self, left: CollectionLike, right: CollectionLike) -> List[XmlNode]:
        return tax_algebra.union(_trees(left), _trees(right))

    def intersection(self, left: CollectionLike, right: CollectionLike) -> List[XmlNode]:
        return tax_algebra.intersection(_trees(left), _trees(right))

    def difference(self, left: CollectionLike, right: CollectionLike) -> List[XmlNode]:
        return tax_algebra.difference(_trees(left), _trees(right))

    # -- grouping (the rest of TAX, inherited unchanged) -----------------------

    def grouping(
        self,
        collection: CollectionLike,
        pattern: PatternTree,
        grouping_basis,
        sl_labels: Iterable[int] = (),
    ) -> List[XmlNode]:
        """TAX grouping under SEO satisfaction of the pattern condition."""
        from ..tax.grouping import grouping as tax_grouping

        return tax_grouping(
            _trees(collection), pattern, grouping_basis, sl_labels, self.context
        )

    # -- instance lifting --------------------------------------------------------------

    def lift(self, instance: SemistructuredInstance) -> SeoInstance:
        """The base case ``[EI]_F``: view an instance under the SEO."""
        return SeoInstance.lift(instance, self.context.seo)
