"""A compact textual query language for TOSS pattern trees.

Building pattern trees by hand (``add_node`` + condition objects) is
verbose; this module provides the equivalent of the paper's pattern-tree
figures as one-line strings:

    inproceedings(author ~ "J. Ullman", year = "1999")
    inproceedings(booktitle below "database conference", .//title)
    paper(affiliation part_of "us government")

Grammar (informal)::

    query    := element (',' element)* ('where' cond ('and' cond)*)?
    element  := '//'? (NAME | '*') var? ('(' arg (',' arg)* ')')?
    var      := '$' NAME
    arg      := element                      -- child (pc; '//' makes it ad)
              | element OP operand           -- child with content condition
              | '.' OP operand               -- condition on this element
    cond     := '$' NAME OP operand          -- cross-element conditions
    OP       := '=' '!=' '<' '<=' '>' '>=' '~'
              | 'contains' 'below' 'above' 'isa' 'subtype_of'
              | 'instance_of' 'part_of'
    operand  := '"literal"' | "'literal'" | '$' NAME

Multiple top-level elements build a join pattern: a ``tax_prod_root``-style
root with one ``ad`` subtree per element (Example 13's Figure 14 written
as ``inproceedings(title $a), article(title $b) where $a ~ $b``).

:func:`parse_query` returns a :class:`ParsedQuery` whose ``pattern`` is a
ready :class:`~repro.tax.pattern.PatternTree` and whose ``variables`` maps
``$name`` to pattern-node labels (handy for SL/PL lists).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ConditionError
from ..tax.conditions import (
    And,
    Comparison,
    Condition,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Term,
)
from ..tax.pattern import AD, PC, PatternTree
from .conditions import (
    Above,
    Below,
    InstanceOf,
    Isa,
    PartOf,
    SimilarTo,
    SubtypeOf,
)

#: operator keyword/symbol -> atom factory (left term, right term).
_SEMANTIC_OPS = {
    "~": SimilarTo,
    "below": Below,
    "above": Above,
    "isa": Isa,
    "subtype_of": SubtypeOf,
    "instance_of": InstanceOf,
    "part_of": PartOf,
    "contains": Contains,
}
_COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">")

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<dslash>//)
    | (?P<string>"[^"]*"|'[^']*')
    | (?P<op><=|>=|!=|=|<|>|~)
    | (?P<punct>[(),.])
    | (?P<var>\$[A-Za-z_][A-Za-z0-9_]*)
    | (?P<name>[A-Za-z_*][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise ConditionError(
                f"cannot tokenise query at position {index}: {text[index:index+10]!r}"
            )
        kind = match.lastgroup or ""
        value = match.group(0)
        if kind != "ws":
            if kind == "string":
                value = value[1:-1]
            tokens.append(_Token(kind, value, index))
        index = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


@dataclass
class ParsedQuery:
    """A parsed query: the pattern tree plus variable bindings."""

    pattern: PatternTree
    variables: Dict[str, int] = field(default_factory=dict)
    #: labels of the top-level elements (the answer roots).
    roots: List[int] = field(default_factory=list)

    def label(self, variable: str) -> int:
        """The pattern label bound to ``$variable`` (leading $ optional)."""
        key = variable.lstrip("$")
        try:
            return self.variables[key]
        except KeyError:
            raise ConditionError(f"query has no variable ${key}") from None


class _QueryParser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0
        self._next_label = 1
        self._pattern: Optional[PatternTree] = None
        self._conditions: List[Condition] = []
        self._variables: Dict[str, int] = {}
        self._roots: List[int] = []

    # -- token plumbing ---------------------------------------------------------

    @property
    def current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self.current
        self._index += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[_Token]:
        token = self.current
        if token.kind == kind and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            raise ConditionError(
                f"expected {value or kind} at position {self.current.position}, "
                f"found {self.current.value!r}"
            )
        return token

    def _fresh_label(self) -> int:
        label = self._next_label
        self._next_label += 1
        return label

    # -- grammar --------------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        top_specs: List[Tuple[int, bool]] = []
        # First pass: parse elements into a staging structure, because the
        # root (single element vs product root) depends on their count.
        staged: List[_StagedElement] = []
        staged.append(self._parse_element())
        while self._accept("punct", ","):
            staged.append(self._parse_element())

        pattern = PatternTree()
        if len(staged) == 1:
            self._emit(pattern, staged[0], parent=None, is_top=True)
        else:
            product_root = self._fresh_label()
            pattern.add_node(product_root)
            for element in staged:
                element.edge = AD
                self._emit(pattern, element, parent=product_root, is_top=True)

        if self._accept("name", "where"):
            self._conditions.append(self._parse_where_condition())
            while self._accept("name", "and"):
                self._conditions.append(self._parse_where_condition())
        self._expect("eof")

        if len(self._conditions) == 1:
            pattern.condition = self._conditions[0]
        elif self._conditions:
            pattern.condition = And(*self._conditions)
        return ParsedQuery(pattern, self._variables, self._roots)

    def _parse_element(self) -> "_StagedElement":
        edge = AD if self._accept("dslash") else PC
        tag = self._expect("name").value
        element = _StagedElement(tag=tag, edge=edge, label=self._fresh_label())
        var = self._accept("var")
        if var is not None:
            element.variable = var.value[1:]
        if self._accept("punct", "("):
            while True:
                self._parse_arg(element)
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ")")
        return element

    def _parse_arg(self, parent: "_StagedElement") -> None:
        if self._accept("punct", "."):
            op = self._parse_operator()
            operand = self._parse_operand()
            parent.self_conditions.append((op, operand))
            return
        child = self._parse_element()
        parent.children.append(child)
        op = self._maybe_operator()
        if op is not None:
            operand = self._parse_operand()
            child.self_conditions.append((op, operand))

    def _maybe_operator(self) -> Optional[str]:
        token = self.current
        if token.kind == "op":
            return self._advance().value
        if token.kind == "name" and token.value in _SEMANTIC_OPS:
            return self._advance().value
        return None

    def _parse_operator(self) -> str:
        op = self._maybe_operator()
        if op is None:
            raise ConditionError(
                f"expected an operator at position {self.current.position}, "
                f"found {self.current.value!r}"
            )
        return op

    def _parse_operand(self) -> Union[str, Tuple[str]]:
        token = self.current
        if token.kind == "string":
            self._advance()
            return token.value
        if token.kind == "var":
            self._advance()
            return (token.value[1:],)  # variable reference marker
        raise ConditionError(
            f"expected a quoted literal or $variable at position "
            f"{token.position}, found {token.value!r}"
        )

    def _parse_where_condition(self) -> Condition:
        var = self._expect("var")
        left = self._variable_term(var.value[1:], var.position)
        op = self._parse_operator()
        operand = self._parse_operand()
        right = self._operand_term(operand)
        return self._make_condition(op, left, right)

    # -- emission -----------------------------------------------------------------

    def _emit(
        self,
        pattern: PatternTree,
        element: "_StagedElement",
        parent: Optional[int],
        is_top: bool = False,
    ) -> None:
        if parent is None:
            pattern.add_node(element.label)
        else:
            pattern.add_node(element.label, parent=parent, edge=element.edge)
        if is_top:
            self._roots.append(element.label)
        if element.variable is not None:
            if element.variable in self._variables:
                raise ConditionError(f"duplicate variable ${element.variable}")
            self._variables[element.variable] = element.label
        if element.tag != "*":
            self._conditions.append(
                Comparison("=", NodeTag(element.label), Constant(element.tag))
            )
        for op, operand in element.self_conditions:
            right = self._operand_term(operand)
            self._conditions.append(
                self._make_condition(op, NodeContent(element.label), right)
            )
        for child in element.children:
            self._emit(pattern, child, parent=element.label)

    def _variable_term(self, name: str, position: int) -> Term:
        if name not in self._variables:
            raise ConditionError(
                f"unknown variable ${name} at position {position}"
            )
        return NodeContent(self._variables[name])

    def _operand_term(self, operand: Union[str, Tuple[str]]) -> Term:
        if isinstance(operand, tuple):
            return self._variable_term(operand[0], -1)
        return Constant(operand)

    @staticmethod
    def _make_condition(op: str, left: Term, right: Term) -> Condition:
        if op in _COMPARISON_OPS:
            return Comparison(op, left, right)
        factory = _SEMANTIC_OPS.get(op)
        if factory is None:
            raise ConditionError(f"unknown operator {op!r}")
        return factory(left, right)


@dataclass
class _StagedElement:
    tag: str
    edge: str
    label: int
    variable: Optional[str] = None
    children: List["_StagedElement"] = field(default_factory=list)
    self_conditions: List[Tuple[str, Union[str, Tuple[str]]]] = field(
        default_factory=list
    )


def parse_query(text: str) -> ParsedQuery:
    """Parse a textual TOSS query into a pattern tree.

    >>> parsed = parse_query('inproceedings(author ~ "J. Ullman")')
    >>> len(parsed.pattern)
    2
    """
    if not text or not text.strip():
        raise ConditionError("empty query")
    return _QueryParser(text).parse()
