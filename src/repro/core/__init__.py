"""The TOSS core — the paper's primary contribution (Section 5).

Extends the semistructured data model and the TAX algebra with ontologies
and similarity: SEO instances, a typed condition language with semantic
operators (``~``, ``instance_of``, ``subtype_of``, ``below``, ``above``,
``part_of``), unit conversion functions, the TOSS algebra, the precision/
recall/quality metrics, the XPath-rewriting query executor and the
:class:`TossSystem` facade wiring the whole Figure 8 architecture.
"""

from .algebra import TossAlgebra
from .conditions import (
    Above,
    Below,
    InstanceOf,
    Isa,
    PartOf,
    SeoConditionContext,
    SimilarTo,
    SubtypeOf,
    TypedComparison,
    rewrite_condition,
)
from .executor import QueryExecutor, QueryPlan
from .instance import OntologyExtendedInstance, SemistructuredInstance, SeoInstance
from .quality import QualityReport, precision_recall, quality
from .system import TossSystem
from .types import ConversionFunction, TypeSystem, default_type_system

__all__ = [
    "Above",
    "Below",
    "ConversionFunction",
    "InstanceOf",
    "Isa",
    "OntologyExtendedInstance",
    "PartOf",
    "QualityReport",
    "QueryExecutor",
    "QueryPlan",
    "SemistructuredInstance",
    "SeoConditionContext",
    "SeoInstance",
    "SimilarTo",
    "SubtypeOf",
    "TossAlgebra",
    "TossSystem",
    "TypeSystem",
    "TypedComparison",
    "default_type_system",
    "precision_recall",
    "quality",
    "rewrite_condition",
]
