"""Ontology-extended and SEO semistructured instances (Section 5).

* :class:`SemistructuredInstance` — the triple ``(V, E, t)`` of
  Definition 1: a data tree plus a typing of each object's tag/content.
* :class:`OntologyExtendedInstance` — the quadruple ``(V, E, t, H_isa)``.
* :class:`SeoInstance` — the quadruple with a similarity enhanced
  ontology ``(H'_isa, mu)``.

The instances are thin, immutable-by-convention views: the algebra
operators work on the underlying tree collections and the condition
contexts carry the ontology, so these classes mostly exist to mirror the
paper's formal objects, hold per-instance typing, and give the facade a
well-named unit of administration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..ontology.hierarchy import Hierarchy, Ontology
from ..similarity.seo import SimilarityEnhancedOntology
from ..xmldb.model import XmlNode
from ..xmldb.serializer import document_bytes
from .conditions import TypingFunction, default_typing
from .types import STRING


class SemistructuredInstance:
    """A named collection of data trees with a typing function."""

    def __init__(
        self,
        name: str,
        trees: Sequence[XmlNode],
        typing: TypingFunction = default_typing,
    ) -> None:
        self.name = name
        self.trees: List[XmlNode] = list(trees)
        self.typing = typing

    def type_of(self, node: XmlNode, attribute: str) -> str:
        """``t(o, attr)`` — the type of an object's tag or content."""
        return self.typing(node, attribute)

    def total_bytes(self) -> int:
        return sum(document_bytes(tree) for tree in self.trees)

    def total_nodes(self) -> int:
        return sum(tree.size() for tree in self.trees)

    def tags(self) -> "set[str]":
        found: "set[str]" = set()
        for tree in self.trees:
            for node in tree.iter():
                found.add(node.tag)
        return found

    def __len__(self) -> int:
        return len(self.trees)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {len(self.trees)} trees)"


class OntologyExtendedInstance(SemistructuredInstance):
    """``(V, E, t, H_isa)`` — an instance with an associated ontology."""

    def __init__(
        self,
        name: str,
        trees: Sequence[XmlNode],
        ontology: Ontology,
        typing: TypingFunction = default_typing,
    ) -> None:
        super().__init__(name, trees, typing)
        self.ontology = ontology

    @property
    def isa(self) -> Hierarchy:
        return self.ontology.isa

    @property
    def part_of(self) -> Hierarchy:
        return self.ontology.part_of


class SeoInstance(SemistructuredInstance):
    """``(V, E, t, (H'_isa, mu))`` — an instance under a (shared) SEO.

    Produced by the TOSS algebra's base case: ``[EI]_F`` maps every input
    instance's terms into the similarity enhanced fusion F (Section
    5.1.2).  All SeoInstances of one database share the same SEO object.
    """

    def __init__(
        self,
        name: str,
        trees: Sequence[XmlNode],
        seo: SimilarityEnhancedOntology,
        typing: TypingFunction = default_typing,
    ) -> None:
        super().__init__(name, trees, typing)
        self.seo = seo

    @classmethod
    def lift(
        cls, instance: SemistructuredInstance, seo: SimilarityEnhancedOntology
    ) -> "SeoInstance":
        """The ``tr_F`` mapping: view an instance under the fused SEO."""
        return cls(instance.name, instance.trees, seo, instance.typing)
