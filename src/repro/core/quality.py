"""Answer-quality metrics: precision, recall and quality = sqrt(P * R).

Footnotes 1-2 and reference [14] of the paper: precision is the fraction
of returned answers that are correct, recall the fraction of correct
answers that were returned, and the quality of an answer is the square
root of the product of the two — the measure all of Figure 15 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Collection, Hashable, Iterable, Set, Tuple


def precision_recall(
    returned: "Collection[Hashable]", correct: "Collection[Hashable]"
) -> Tuple[float, float]:
    """Precision and recall of ``returned`` against ground truth ``correct``.

    Conventions for degenerate cases follow IR practice: an empty result
    has precision 1.0 (nothing wrong was returned); an empty ground truth
    has recall 1.0 (nothing was missed).
    """
    returned_set: Set[Hashable] = set(returned)
    correct_set: Set[Hashable] = set(correct)
    hits = len(returned_set & correct_set)
    precision = hits / len(returned_set) if returned_set else 1.0
    recall = hits / len(correct_set) if correct_set else 1.0
    return precision, recall


def quality(precision: float, recall: float) -> float:
    """The paper's quality measure: sqrt(precision * recall) [14]."""
    return math.sqrt(precision * recall)


@dataclass(frozen=True)
class QualityReport:
    """Precision/recall/quality of one query's answers."""

    precision: float
    recall: float
    returned: int
    correct: int
    hits: int

    @classmethod
    def evaluate(
        cls, returned: "Collection[Hashable]", correct: "Collection[Hashable]"
    ) -> "QualityReport":
        returned_set = set(returned)
        correct_set = set(correct)
        hits = len(returned_set & correct_set)
        precision, recall = precision_recall(returned_set, correct_set)
        return cls(precision, recall, len(returned_set), len(correct_set), hits)

    @property
    def quality(self) -> float:
        return quality(self.precision, self.recall)

    @property
    def f1(self) -> float:
        """Harmonic-mean F1, reported alongside for modern comparability."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} "
            f"Q={self.quality:.3f} ({self.hits}/{self.returned} returned, "
            f"{self.correct} correct)"
        )
