"""TOSS: an ontology- and similarity-extended XML tree algebra.

A from-scratch Python reproduction of "TOSS: An Extension of TAX with
Ontologies and Similarity Queries" (Hung, Deng, Subrahmanian, SIGMOD
2004), including every substrate the paper builds on: an in-memory XML
database with an XPath engine (:mod:`repro.xmldb`, replacing Apache
Xindice), the TAX pattern-tree algebra (:mod:`repro.tax`), graph-based
ontologies with canonical fusion (:mod:`repro.ontology`), string
similarity measures and the SEA enhancement algorithm
(:mod:`repro.similarity`), and the TOSS core itself (:mod:`repro.core`).

Quickstart::

    from repro import TossSystem, PatternTree
    from repro.core.conditions import SimilarTo
    from repro.tax import And, Comparison, Constant, NodeContent, NodeTag

    system = TossSystem(measure="levenshtein", epsilon=3.0)
    system.add_instance("dblp", open("dblp.xml").read())
    system.build()

    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        SimilarTo(NodeContent(2), Constant("J. Ullman")),
    )
    report = system.select("dblp", pattern, sl_labels=[1])
"""

from .core.quality import QualityReport, precision_recall, quality
from .core.system import TossSystem
from .errors import ReproError
from .ontology.hierarchy import Hierarchy, Ontology
from .similarity.measures import get_measure
from .similarity.seo import SimilarityEnhancedOntology
from .tax.pattern import PatternTree
from .xmldb.database import Database

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Hierarchy",
    "Ontology",
    "PatternTree",
    "QualityReport",
    "ReproError",
    "SimilarityEnhancedOntology",
    "TossSystem",
    "get_measure",
    "precision_recall",
    "quality",
    "__version__",
]
