"""The query server: batch execution over a persistent worker pool.

:class:`QueryServer` owns one :class:`~repro.serving.snapshot.SystemSnapshot`
and one :class:`~repro.serving.pool.WorkerPool` for its whole lifetime —
the system is loaded/built once and every batch after that pays only the
per-query dispatch cost.  Submissions pass three gates before any worker
sees them:

1. **staleness** — the live database's generation signature must still
   match the snapshot's (:class:`~repro.errors.SnapshotStaleError`
   otherwise; :meth:`QueryServer.refresh` re-snapshots);
2. **admission** — a batch larger than ``max_pending`` is rejected with
   :class:`~repro.errors.ServerOverloadedError` before consuming worker
   time, the standard bounded-queue back-pressure discipline;
3. **budget** — every query carries a :class:`GuardSpec` (its own, or
   the server default derived from the system's guard), enforced by a
   fresh :class:`~repro.guard.ResourceGuard` inside the worker.

Batch execution never raises for a query's own failure: each query
yields a :class:`QueryOutcome` carrying either the report or the
reconstructed error, so one poisoned query cannot take down the batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.executor import ExecutionReport
from ..errors import ReproError, ServerOverloadedError, ServingError, SnapshotStaleError
from ..faults import FaultPlan
from ..guard import ResourceGuard
from ..obs.context import RequestContext, activate, new_request_id
from ..obs.metrics import REGISTRY as METRICS
from ..obs.window import WINDOWS
from .partition import execute_partitioned
from .pool import WorkerPool, reconstruct_failure
from .snapshot import SystemSnapshot
from .supervisor import RetryPolicy, SupervisedWorkerPool

#: Default admission bound for one batch.
DEFAULT_MAX_PENDING = 128


@dataclass(frozen=True)
class GuardSpec:
    """A picklable description of a per-query resource budget."""

    deadline_seconds: Optional[float] = None
    max_steps: Optional[int] = None
    max_results: Optional[int] = None

    @classmethod
    def from_guard(cls, guard: Optional[ResourceGuard]) -> Optional["GuardSpec"]:
        """The spec matching ``guard``'s configured limits (None -> None)."""
        if guard is None:
            return None
        return cls(
            deadline_seconds=guard.deadline_seconds,
            max_steps=guard.max_steps,
            max_results=guard.max_results,
        )

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_steps is None
            and self.max_results is None
        )

    def build(self) -> Optional[ResourceGuard]:
        """A fresh guard enforcing this spec (None when unlimited)."""
        if self.unlimited:
            return None
        return ResourceGuard(
            deadline_seconds=self.deadline_seconds,
            max_results=self.max_results,
            max_steps=self.max_steps,
        )

    def as_tuple(self) -> Tuple[Optional[float], Optional[int], Optional[int]]:
        """The ``(deadline, max_steps, max_results)`` task-dict form."""
        return (self.deadline_seconds, self.max_steps, self.max_results)


@dataclass(frozen=True)
class QueryRequest:
    """One query submission: the text plus its routing and budget."""

    query: str
    collection: Optional[str] = None
    sl_variables: Tuple[str, ...] = ()
    right_collection: Optional[str] = None
    #: Per-query budget; None inherits the server default.
    guard: Optional[GuardSpec] = None
    #: Workers to partition this query's candidate scan across
    #: (1 = no intra-query parallelism; only :meth:`QueryServer.execute`
    #: honours values above 1).
    jobs: int = 1
    #: Tenant label carried into the request context (budget accounting
    #: and log joining; None for single-tenant use).
    tenant: Optional[str] = None
    #: Caller-supplied request id (e.g. from an upstream gateway); the
    #: server mints one when absent.
    request_id: Optional[str] = None


@dataclass
class QueryOutcome:
    """What happened to one query of a batch: a report or an error."""

    request: QueryRequest
    report: Optional[ExecutionReport] = None
    error: Optional[ReproError] = None
    #: Worker-measured execution seconds (0.0 when never dispatched).
    seconds: float = 0.0
    #: The request id the server minted (or echoed) for this query —
    #: the join key for ``db trace --request``.
    request_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_for_error(self) -> "QueryOutcome":
        """Raise the captured error, if any; returns self otherwise."""
        if self.error is not None:
            raise self.error
        return self


class QueryServer:
    """A persistent serving front-end over one built system.

    Parameters
    ----------
    system:
        A built (or explicitly degraded) :class:`~repro.core.system.TossSystem`.
    workers:
        Worker-process count for the pool.
    max_pending:
        Admission bound: the largest batch :meth:`execute_many` accepts.
    default_guard:
        Budget applied to requests that carry none; defaults to the
        system's own guard configuration.
    snapshot_mode:
        ``"fork"`` / ``"pickle"`` override (default: platform best).
    default_collection:
        Collection for requests that name none (e.g. plain-string
        queries).
    supervised:
        Run workers under the crash-tolerant
        :class:`~repro.serving.supervisor.SupervisedWorkerPool` (the
        default); ``False`` keeps the plain ``multiprocessing.Pool``
        transport, where any worker death fails the whole batch.
    policy:
        :class:`~repro.serving.supervisor.RetryPolicy` for the
        supervised pool (retries, backoff, hard timeouts, quarantine,
        circuit breaker).  Ignored when ``supervised=False``.
    degrade_partial:
        Opt-in partial-result degradation for partitioned queries
        (``jobs > 1``): a chunk that fails permanently is recorded in
        the merged report's ``failed_partitions`` instead of failing the
        query.  Exact-by-default (``False``: chunk failure raises).
    fault_plan:
        :class:`~repro.faults.FaultPlan` handed to the supervised pool —
        test/benchmark harness only.
    """

    def __init__(
        self,
        system,
        workers: int = 1,
        max_pending: int = DEFAULT_MAX_PENDING,
        default_guard: Optional[GuardSpec] = None,
        snapshot_mode: Optional[str] = None,
        default_collection: Optional[str] = None,
        supervised: bool = True,
        policy: Optional[RetryPolicy] = None,
        degrade_partial: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if max_pending < 1:
            raise ServingError(f"max_pending must be >= 1, got {max_pending}")
        self.system = system
        self.workers = workers
        self.max_pending = max_pending
        self.default_collection = default_collection
        self.default_guard = (
            default_guard
            if default_guard is not None
            else GuardSpec.from_guard(system.guard)
        )
        self.supervised = supervised
        self.policy = policy
        self.degrade_partial = degrade_partial
        self.fault_plan = fault_plan
        self._snapshot_mode = snapshot_mode
        self.snapshot = SystemSnapshot.capture(system, mode=snapshot_mode)
        self.pool = self._make_pool()
        self._closed = False

    def _make_pool(self):
        if self.supervised:
            return SupervisedWorkerPool(
                self.snapshot,
                self.workers,
                policy=self.policy,
                fault_plan=self.fault_plan,
            )
        return WorkerPool(self.snapshot, self.workers)

    # -- lifecycle ----------------------------------------------------------

    def refresh(self, incremental: bool = True) -> str:
        """Re-sync the pool with the (possibly mutated) system.

        Three outcomes, cheapest first — the returned string names which
        one ran:

        * ``"noop"`` — the snapshot already matches the live generation
          signature; nothing moves.
        * ``"delta"`` — the supervised pool broadcasts a
          :class:`~repro.serving.snapshot.SnapshotDelta` (changed
          documents + changed SEOs only) to the live workers, which
          converge in place; no respawn, no full re-serialization.
        * ``"full"`` — re-capture and a fresh pool: the plain
          (unsupervised) pool has no per-worker addressing, the
          changelog was truncated, the system is mid-mutation (not yet
          rebuilt), or ``incremental=False`` forced it.
        """
        self._ensure_open()
        if not self.snapshot.stale(self.system):
            return "noop"
        if incremental and isinstance(self.pool, SupervisedWorkerPool):
            delta = self.snapshot.delta(self.system)
            if delta is not None:
                self.pool.apply_delta(delta)
                METRICS.counter("serving.delta_refreshes").inc()
                return "delta"
        old_pool = self.pool
        self.snapshot = SystemSnapshot.capture(self.system, mode=self._snapshot_mode)
        self.pool = self._make_pool()
        old_pool.close()
        METRICS.counter("serving.full_refreshes").inc()
        self.system.observability.record_event("serving.full_refresh")
        return "full"

    def wait_ready(self, timeout: float = 30.0) -> int:
        """Block until the whole worker fleet finished spawning.

        Optional pre-warming barrier: execution works as soon as one
        worker is up, but a caller that wants full-fleet steady state
        before taking traffic (or before timing the delta-refresh path)
        waits here.  Returns the number of ready workers; the plain
        pool spawns synchronously and reports its worker count.
        """
        self._ensure_open()
        if isinstance(self.pool, SupervisedWorkerPool):
            return self.pool.wait_ready(timeout=timeout)
        return self.workers

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.pool.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServingError("the query server is closed")

    def _check_fresh(self) -> None:
        if self.snapshot.stale(self.system):
            raise SnapshotStaleError(
                "the live system changed since the server snapshotted it; "
                "call refresh() to serve the new state"
            )

    # -- execution ----------------------------------------------------------

    def _normalize(
        self, query: Union[str, QueryRequest]
    ) -> QueryRequest:
        if isinstance(query, str):
            query = QueryRequest(query=query)
        if query.collection is None:
            if self.default_collection is None:
                raise ServingError(
                    f"request {query.query!r} names no collection and the "
                    "server has no default_collection"
                )
            query = QueryRequest(
                query=query.query,
                collection=self.default_collection,
                sl_variables=query.sl_variables,
                right_collection=query.right_collection,
                guard=query.guard,
                jobs=query.jobs,
                tenant=query.tenant,
                request_id=query.request_id,
            )
        return query

    def _context(self, request: QueryRequest) -> RequestContext:
        """The request identity dispatched with (and logged for) one query."""
        spec = request.guard if request.guard is not None else self.default_guard
        return RequestContext(
            request_id=request.request_id or new_request_id(),
            tenant=request.tenant,
            # query_class stays None: the executor knows the real kind
            # (selection/projection/join) and buckets the windows itself.
            deadline_seconds=spec.deadline_seconds if spec is not None else None,
        )

    def _task(
        self,
        request: QueryRequest,
        collect_metrics: bool,
        context: Optional[RequestContext] = None,
    ) -> Dict[str, Any]:
        spec = request.guard if request.guard is not None else self.default_guard
        return {
            "query": request.query,
            "collection": request.collection,
            "sl_variables": tuple(request.sl_variables),
            "right_collection": request.right_collection,
            "document_keys": None,
            "guard": spec.as_tuple() if spec is not None else None,
            "collect_metrics": collect_metrics,
            "trace": bool(
                self.system.observability.enabled
                and self.system.observability.trace_enabled
            ),
            "request": context.to_wire() if context is not None else None,
        }

    def execute_many(
        self, queries: Iterable[Union[str, QueryRequest]]
    ) -> List[QueryOutcome]:
        """Execute a batch across the pool; one outcome per query, in
        submission order.  Per-query failures are captured in their
        outcome, never raised."""
        self._ensure_open()
        self._check_fresh()
        requests = [self._normalize(query) for query in queries]
        if len(requests) > self.max_pending:
            raise ServerOverloadedError(len(requests), self.max_pending)
        if not requests:
            return []
        collect_metrics = METRICS.enabled
        contexts = [self._context(request) for request in requests]
        observability = self.system.observability
        for request, context in zip(requests, contexts):
            observability.record_event(
                "serving.submit",
                request_id=context.request_id,
                query=request.query,
                **({"tenant": context.tenant} if context.tenant else {}),
            )
        started = time.perf_counter()
        METRICS.gauge("serving.queue_depth").set(len(requests))
        try:
            raw = self.pool.run_batch(
                [
                    self._task(request, collect_metrics, context)
                    for request, context in zip(requests, contexts)
                ]
            )
        finally:
            METRICS.gauge("serving.queue_depth").set(0)
        batch_seconds = time.perf_counter() - started

        outcomes: List[QueryOutcome] = []
        tracer = self.system.observability.tracer()
        with tracer.trace("serving.batch", queries=len(requests), workers=self.workers):
            for index, (request, context, entry) in enumerate(
                zip(requests, contexts, raw)
            ):
                seconds = float(entry.get("seconds", 0.0))
                failure = entry.get("failure")
                if failure is not None:
                    error = reconstruct_failure(
                        failure,
                        worker_pid=entry.get("worker_pid"),
                        query=request.query,
                    )
                    error.request_id = context.request_id
                    outcome = QueryOutcome(
                        request=request,
                        error=error,
                        seconds=seconds,
                        request_id=context.request_id,
                    )
                    # The worker never reached _finish_query, so the
                    # parent books the failure into the rolling windows.
                    WINDOWS.observe(
                        "join" if request.right_collection else "selection",
                        seconds,
                        error=True,
                    )
                else:
                    report = ExecutionReport.from_dict(entry["report"])
                    outcome = QueryOutcome(
                        request=request,
                        report=report,
                        seconds=seconds,
                        request_id=context.request_id,
                    )
                outcomes.append(outcome)
                metrics = entry.get("metrics")
                if metrics:
                    METRICS.absorb(metrics)
                WINDOWS.absorb(entry.get("windows"))
                trace_payload = (
                    entry["report"].get("trace") if failure is None else None
                )
                tracer.record_span(
                    f"query[{index}]",
                    seconds,
                    attributes={
                        "query": request.query,
                        "ok": failure is None,
                        "request_id": context.request_id,
                    },
                    children=[trace_payload] if trace_payload else None,
                )
                METRICS.counter("serving.queries").inc()
                if failure is not None:
                    METRICS.counter("serving.query_errors").inc()
                METRICS.histogram("serving.query_seconds").observe(seconds)
                # One terminal record per request: the timeline's
                # verify/completion entry, carrying the worker's span
                # tree into the slow-query log when slow enough.
                observability.record_query(
                    "serving.query",
                    query=request.query,
                    total_seconds=seconds,
                    trace=trace_payload,
                    extra={
                        "request_id": context.request_id,
                        "ok": failure is None,
                        "attempts": entry.get("attempts", 1),
                        "worker_pid": entry.get("worker_pid"),
                        **({"tenant": context.tenant} if context.tenant else {}),
                    },
                )
        batch_trace = tracer.finish()

        METRICS.counter("serving.batches").inc()
        METRICS.histogram("serving.batch_seconds").observe(batch_seconds)
        self.system.observability.record_query(
            "serving.batch",
            total_seconds=batch_seconds,
            trace=batch_trace,
            extra={
                "queries": len(requests),
                "errors": sum(1 for outcome in outcomes if not outcome.ok),
                "workers": self.workers,
            },
        )
        return outcomes

    def execute(self, query: Union[str, QueryRequest]) -> ExecutionReport:
        """Execute one query and return its report (raising its error).

        Requests with ``jobs > 1`` run with their candidate scan
        partitioned across the pool
        (:func:`~repro.serving.partition.execute_partitioned`);
        otherwise the query runs whole on one worker.
        """
        self._ensure_open()
        request = self._normalize(query)
        if request.jobs > 1:
            self._check_fresh()
            spec = request.guard if request.guard is not None else self.default_guard
            # Activate the request identity around the partitioned run so
            # the chunk tasks, merged report and partition events all
            # carry it (execute_partitioned reads the ambient context).
            with activate(self._context(request)):
                return execute_partitioned(
                    self.system,
                    self.pool,
                    request.collection,
                    request.query,
                    sl_variables=request.sl_variables,
                    right_collection=request.right_collection,
                    jobs=request.jobs,
                    guard=spec.build() if spec is not None else None,
                    on_chunk_failure="degrade" if self.degrade_partial else "raise",
                )
        outcome = self.execute_many([request])[0]
        outcome.raise_for_error()
        return outcome.report

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"QueryServer({self.workers} workers, max_pending="
            f"{self.max_pending}, {self.snapshot.mode} snapshot, {state})"
        )


def execute_many(
    system,
    queries: Sequence[Union[str, QueryRequest]],
    workers: int = 1,
    **server_kwargs: Any,
) -> List[QueryOutcome]:
    """One-shot batch execution: spin up a :class:`QueryServer`, run the
    batch, tear the pool down.  Prefer a long-lived server when issuing
    more than one batch — pool start-up costs more than most queries."""
    with QueryServer(system, workers=workers, **server_kwargs) as server:
        return server.execute_many(queries)
