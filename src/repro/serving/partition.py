"""Intra-query parallelism: partition one query's candidate scan.

The verify stage dominates large selections and joins (every candidate
document is run through XPath and witness-tree conversion), and it is
embarrassingly parallel across documents.  This module splits the
**post-planner candidate document set** — the keys that survive index
pruning, in collection insertion order — into contiguous chunks, ships
one chunk per worker as the executor's ``document_keys`` restriction,
and merges the partial :class:`~repro.core.executor.ExecutionReport`
objects back with :meth:`ExecutionReport.merge`.

Identity with serial execution is structural, not statistical:

* the chunks are contiguous slices of the serial scan order, so
  concatenating per-chunk results in chunk order reproduces the serial
  result sequence (joins partition the *left* collection only — the
  product is left-major, so left-contiguous chunks stay order-safe);
* :meth:`ExecutionReport.merge` re-applies the order-preserving dedupe,
  catching duplicates that serial execution would have collapsed across
  a chunk boundary;
* the parent guard is started before planning, each worker receives the
  remaining budget at dispatch, and the workers' consumed steps are
  ticked back into the parent guard — a budget the partitions
  collectively exceed raises exactly like serial execution;
* each chunk runs through the executor's set-oriented verifier
  (``verify_batched``): candidates resolve to columnar ``(columns,
  row)`` entries per chunk and batch-verify in scan order, with the
  same one-tick-per-candidate guard accounting as the per-document
  walk — so the merged report's ``docs_verified`` / ``pairs_probed``
  counters sum to the serial run's and the results stay bit-identical.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.executor import ExecutionReport
from ..errors import ServingError, SnapshotStaleError, TossError
from ..guard import ResourceGuard
from ..obs.context import current_request
from ..obs.metrics import REGISTRY as METRICS
from ..obs.window import WINDOWS
from ..parallel import absorb_worker_steps, remaining_budget
from .pool import WorkerPool, reconstruct_failure


def partition_document_keys(
    keys: Sequence[str], jobs: int
) -> List[List[str]]:
    """Split ``keys`` into at most ``jobs`` contiguous, balanced chunks.

    Deterministic: the first ``len(keys) % jobs`` chunks get one extra
    key.  Never returns an empty chunk — fewer keys than jobs yields
    fewer chunks.  Concatenating the chunks reproduces ``keys`` exactly.
    """
    if jobs < 1:
        raise ServingError(f"jobs must be >= 1, got {jobs}")
    keys = list(keys)
    jobs = min(jobs, len(keys))
    if jobs <= 1:
        return [keys] if keys else []
    base, extra = divmod(len(keys), jobs)
    chunks: List[List[str]] = []
    start = 0
    for index in range(jobs):
        size = base + (1 if index < extra else 0)
        chunks.append(keys[start : start + size])
        start += size
    return chunks


def _candidate_keys(
    system,
    collection: str,
    query: str,
    right_collection: Optional[str],
    guard: Optional[ResourceGuard],
) -> List[str]:
    """The query's post-planner candidate document keys, in scan order."""
    from ..core.parser import parse_query

    executor, _degraded = system._query_executor()
    parsed = parse_query(query)
    if len(parsed.roots) == 1:
        return executor.candidate_documents(collection, parsed.pattern, guard=guard)
    if len(parsed.roots) == 2:
        if right_collection is None:
            raise TossError("a two-element query is a join; pass right_collection=")
        return executor.join_candidate_documents(
            collection, right_collection, parsed.pattern, guard=guard
        )
    raise TossError("queries must have one or two top-level elements")


def execute_partitioned(
    system,
    pool: WorkerPool,
    collection: str,
    query: str,
    sl_variables: Iterable[str] = (),
    right_collection: Optional[str] = None,
    jobs: Optional[int] = None,
    guard: Optional[ResourceGuard] = None,
    on_chunk_failure: str = "raise",
) -> ExecutionReport:
    """Run one textual query with its candidate scan split across ``pool``.

    The parent plans (rewrite + index probes) once to obtain the
    candidate set, partitions it into at most ``jobs`` (default: the
    pool width) contiguous chunks, and executes the chunks concurrently.
    Returns a merged report whose results are bit-identical to — and in
    the same order as — serial execution of the same query.

    With fewer than two non-empty chunks the query simply runs serially
    in-process: partitioning never changes results, only wall-clock.

    ``on_chunk_failure`` picks the failure semantics when a chunk fails
    permanently (all retries exhausted under a supervised pool, or any
    failure under a plain one):

    * ``"raise"`` (default) — exact-or-error: the first chunk failure is
      reconstructed and raised, no partial results escape;
    * ``"degrade"`` — partial-result degradation: surviving chunks are
      merged in chunk order into a report with ``degraded=True`` and one
      ``failed_partitions`` entry per lost chunk (partition index,
      document count, error class, message, attempts).  Guard-limit
      failures (timeout/exhausted) still raise — the budget was
      collectively exceeded, degrading would mask it — as does the case
      where *every* chunk failed.
    """
    if on_chunk_failure not in ("raise", "degrade"):
        raise ServingError(
            f"on_chunk_failure must be 'raise' or 'degrade', "
            f"got {on_chunk_failure!r}"
        )
    if pool.snapshot.stale(system):
        raise SnapshotStaleError(
            "the worker pool's snapshot no longer matches the live system; "
            "re-snapshot before partitioned execution"
        )
    jobs = jobs if jobs is not None else pool.workers
    if jobs < 1:
        raise ServingError(f"jobs must be >= 1, got {jobs}")
    guard = guard if guard is not None else system.guard
    if guard is not None:
        guard.start()
    started = time.perf_counter()
    keys = _candidate_keys(system, collection, query, right_collection, guard)
    chunks = partition_document_keys(keys, jobs)
    if len(chunks) < 2:
        report = system.query(
            collection,
            query,
            sl_variables=sl_variables,
            right_collection=right_collection,
            document_keys=chunks[0] if chunks else [],
        )
        return report

    deadline, steps = remaining_budget(guard)
    max_results = guard.max_results if guard is not None else None
    collect_metrics = METRICS.enabled
    trace_workers = bool(
        system.observability.enabled and system.observability.trace_enabled
    )
    # Every chunk carries the originating request's identity (if one is
    # ambient — QueryServer.execute activates it), so per-chunk worker
    # spans and the merged report share the request id.
    context = current_request()
    request_wire = context.to_wire() if context is not None else None
    tasks: List[Dict[str, Any]] = [
        {
            "query": query,
            "collection": collection,
            "sl_variables": tuple(sl_variables),
            "right_collection": right_collection,
            "document_keys": chunk,
            "guard": (deadline, steps, max_results),
            "collect_metrics": collect_metrics,
            "trace": trace_workers,
            "request": request_wire,
        }
        for chunk in chunks
    ]
    outcomes = pool.run_batch(tasks)

    # Guard accounting first: the parent ticks the workers' consumed
    # steps (and hits the collective budget) even when a chunk failed.
    stage_totals: Dict[str, int] = {}
    total_steps = 0
    for outcome in outcomes:
        total_steps += outcome.get("steps", 0)
        for stage, count in outcome.get("stage_steps", {}).items():
            stage_totals[stage] = stage_totals.get(stage, 0) + count
    failed: List[Dict[str, Any]] = []
    for index, outcome in enumerate(outcomes):
        failure = outcome.get("failure")
        if failure is None:
            continue
        exc = reconstruct_failure(
            failure, worker_pid=outcome.get("worker_pid"), query=query
        )
        # Guard trips are never degradable: the budget was collectively
        # exceeded, and returning partial results would mask that.
        if on_chunk_failure != "degrade" or failure[0] in ("timeout", "exhausted"):
            raise exc
        failed.append(
            {
                "partition": index,
                "documents": len(chunks[index]),
                "error": type(exc).__name__,
                "message": str(exc),
                "attempts": outcome.get("attempts", 1),
            }
        )
    if failed and len(failed) == len(outcomes):
        # Nothing survived — a fully empty "partial" result is a lie.
        raise reconstruct_failure(
            outcomes[0]["failure"],
            worker_pid=outcomes[0].get("worker_pid"),
            query=query,
        )
    absorb_worker_steps(guard, stage_totals, total_steps, "partitioned query")

    for outcome in outcomes:
        metrics = outcome.get("metrics")
        if metrics:
            METRICS.absorb(metrics)
        WINDOWS.absorb(outcome.get("windows"))

    partials = [
        ExecutionReport.from_dict(outcome["report"])
        for outcome in outcomes
        if outcome.get("report") is not None
    ]
    merged = ExecutionReport.merge(partials)
    if failed:
        merged.degraded = True
        merged.failed_partitions = failed
        METRICS.counter("serving.degraded_partitions").inc(len(failed))
    if guard is not None:
        guard.check_results(len(merged.results))

    tracer = system.observability.tracer()
    with tracer.trace(
        "query.partitioned",
        collection=collection,
        partitions=len(chunks),
        candidates=len(keys),
        workers=pool.workers,
    ):
        for index, (chunk, outcome) in enumerate(zip(chunks, outcomes)):
            report_payload = outcome.get("report")
            tracer.record_span(
                f"partition[{index}]",
                outcome.get("seconds", 0.0),
                attributes={
                    "documents": len(chunk),
                    **({"failed": True} if report_payload is None else {}),
                },
                children=(
                    [report_payload["trace"]]
                    if report_payload and report_payload.get("trace")
                    else None
                ),
            )
    merged.trace = tracer.finish()

    elapsed = time.perf_counter() - started
    METRICS.counter("serving.partitioned_queries").inc()
    METRICS.counter("serving.partitions").inc(len(chunks))
    METRICS.histogram("serving.partitioned_seconds").observe(elapsed)
    system.observability.record_query(
        "query.partitioned",
        query=query,
        total_seconds=elapsed,
        trace=merged.trace,
        extra={
            "collection": collection,
            "partitions": len(chunks),
            "candidates": len(keys),
            "results": len(merged.results),
            "degraded_partitions": len(failed),
        },
    )
    return merged
