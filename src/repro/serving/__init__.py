"""Concurrent query serving: worker pools, batch execution, partitioning.

The ROADMAP's north star is a system that "serves heavy traffic" — yet
the executor (like the paper's prototype) runs one query at a time in
one process.  This package adds the serving tier on top of the
unchanged execution pipeline:

:class:`~repro.serving.snapshot.SystemSnapshot`
    An immutable capture of a built :class:`~repro.core.system.TossSystem`
    for worker processes — shared copy-on-write under ``fork``, shipped
    as a plain-data payload (documents + SEOs) on spawn-only platforms.
    Snapshots know when they are stale (collection generation counters).

:class:`~repro.serving.pool.WorkerPool`
    A pool of long-lived worker processes, each holding the snapshot
    and answering textual queries; failures cross the process boundary
    as typed markers, never raw exceptions.

:class:`~repro.serving.supervisor.SupervisedWorkerPool`
    The fault-tolerant pool (and the server default): per-worker
    processes under parent-side supervision — crash detection and
    respawn with capped backoff, hard timeouts for hung workers,
    bounded retries, poison-task quarantine and a crash-rate circuit
    breaker (:class:`~repro.serving.supervisor.RetryPolicy` holds the
    knobs).  Deterministic fault injection lives in :mod:`repro.faults`.

:class:`~repro.serving.server.QueryServer` / :func:`execute_many`
    Batch execution with a bounded admission queue, per-query deadlines
    derived from :class:`~repro.guard.ResourceGuard` budgets, worker
    span/metrics merge into the parent's observability, and snapshot
    staleness checks on every submission.

:func:`~repro.serving.partition.execute_partitioned`
    Intra-query parallelism: one large selection or join is split over
    the post-planner candidate document set into contiguous chunks, one
    per worker, and the partial :class:`~repro.core.executor.ExecutionReport`
    objects merge deterministically back into the serial result.

Everything here is result-preserving: batch and partitioned execution
return bit-identical results, in identical order, to serial execution —
the property suite in ``tests/property/test_serving_equivalence.py``
holds the layer to that (and the chaos suite in ``tests/chaos/`` holds
it under injected worker crashes).  The one opt-in exception is
partial-result degradation for partitioned queries
(``degrade_partial=True``), which trades exactness for availability and
says so in the report (``degraded`` + ``failed_partitions``).
"""

from .partition import execute_partitioned, partition_document_keys
from .pool import WorkerPool
from .server import (
    GuardSpec,
    QueryOutcome,
    QueryRequest,
    QueryServer,
    execute_many,
)
from .snapshot import SystemSnapshot
from .supervisor import CircuitBreaker, RetryPolicy, SupervisedWorkerPool

__all__ = [
    "CircuitBreaker",
    "GuardSpec",
    "QueryOutcome",
    "QueryRequest",
    "QueryServer",
    "RetryPolicy",
    "SupervisedWorkerPool",
    "SystemSnapshot",
    "WorkerPool",
    "execute_many",
    "execute_partitioned",
    "partition_document_keys",
]
