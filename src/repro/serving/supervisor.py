"""Supervised worker pool: crash detection, respawn, retries, quarantine.

:class:`~repro.serving.pool.WorkerPool` rides on
``multiprocessing.Pool``, which is brittle in exactly the ways serving
cannot afford: a worker SIGKILLed mid-batch (OOM killer, operator)
poisons the shared result pipe and the whole batch errors or hangs, a
worker stuck in native code stalls ``map()`` forever because deadlines
are only enforced *inside* the worker, and one dead process takes every
queued task down with it.

:class:`SupervisedWorkerPool` is the fault-tolerant replacement, built
on per-worker ``Process`` + request-queue + response-pipe triples so
each worker's fate is independent and observable.  Responses
deliberately do **not** share a queue: a shared
``multiprocessing.Queue`` serialises writers through a shared lock held
by each worker's feeder thread, so a worker SIGKILLed mid-flush leaves
the lock held and a frame half-written — wedging every other worker
and, eventually, the parent's reader.  With one single-writer pipe per
worker incarnation, ``send`` is synchronous (nothing is buffered behind
the worker's death), a kill mid-send surfaces to the parent as a clean
``EOFError`` on that pipe alone, and no lock outlives its holder.  The
supervisor provides:

* **crash detection & respawn** — the supervisor watches every worker's
  liveness (readiness handshake, ``is_alive`` checks while busy) and
  respawns dead ones with capped exponential backoff; a worker whose
  spawns keep failing (e.g. snapshot transport corruption) is abandoned
  after a bounded number of consecutive failures rather than respawned
  forever;
* **parent-side hard timeouts** — a worker that exceeds its task's hard
  deadline (derived from the query's guard budget, or the policy
  default) is killed from the parent and its task rescheduled, so a
  hang in the worker can never stall the batch;
* **bounded retries with backoff** — worker death, parent-side kills
  and corrupted responses are *retryable* (TOSS queries are read-only,
  hence idempotent); a task is re-dispatched up to
  :attr:`RetryPolicy.max_retries` times with exponential backoff, and
  typed in-query failures (guard trips, query errors) are returned
  as-is, never retried;
* **poison-task quarantine** — a task that crashes
  :attr:`RetryPolicy.quarantine_after` workers is failed permanently
  with :class:`~repro.errors.PoisonTaskError` instead of grinding the
  pool through respawn cycles;
* **circuit breaker** — batch admission sheds load
  (:class:`~repro.errors.CircuitOpenError`, a
  :class:`~repro.errors.ServerOverloadedError`) while the recent crash
  rate exceeds :attr:`RetryPolicy.max_crash_rate`; after the cooldown
  one batch is admitted half-open and its first crash re-trips.

Recovery is fully observable: crash/retry/respawn/quarantine/trip
counters in :data:`repro.obs.metrics.REGISTRY`, a supervisor span tree
per recovered batch, and recovery events in the system's event and
slow-query logs.  Fault injection (:mod:`repro.faults`) is honoured by
the worker main loop, so every path above is deterministically
testable.

The dispatch interface is identical to :class:`WorkerPool`
(``run_batch(tasks) -> outcomes in task order``), so
:class:`~repro.serving.server.QueryServer` and
:func:`~repro.serving.partition.execute_partitioned` work unchanged on
either pool.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Deque, Dict, List, Optional

from .. import faults as _faults
from ..errors import CircuitOpenError, ServingError
from ..obs.metrics import REGISTRY as METRICS
from . import pool as _pool
from .pool import run_query_task
from .snapshot import FORK, SnapshotDelta, SystemSnapshot, apply_snapshot_delta

#: Scheduler wait granularity, seconds.  Responses wake the scheduler
#: immediately; this only bounds how late a liveness/deadline check or a
#: backoff expiry can be noticed.
POLL_INTERVAL = 0.05

#: Fault-injection sequence number stamped on snapshot-delta broadcasts,
#: distinct from any task index, so chaos plans can target "kill the
#: worker mid-delta-apply" deterministically (``tasks=(DELTA_FAULT_SEQ,)``).
DELTA_FAULT_SEQ = -1

#: Parent-side wall-clock bound on one worker acking a delta broadcast;
#: a worker past it is killed and respawned from the advanced snapshot.
DELTA_APPLY_TIMEOUT = 30.0


def backoff_delay(base: float, cap: float, failures: int) -> float:
    """Capped exponential backoff: ``min(cap, base * 2**failures)``.

    ``failures`` counts *previous* consecutive failures, so the first
    retry waits ``base`` and each further failure doubles the wait up to
    ``cap``.
    """
    if base <= 0.0:
        return 0.0
    return min(cap, base * (2.0 ** max(0, failures)))


@dataclass(frozen=True)
class RetryPolicy:
    """The supervised pool's failure-handling knobs.

    Attributes
    ----------
    max_retries:
        Re-dispatches allowed per task after a retryable failure (worker
        death, parent-side hang kill, corrupted response).  0 fails a
        task on its first crash.
    retry_backoff_base, retry_backoff_cap:
        Exponential backoff bounds between re-dispatches of one task.
    respawn_backoff_base, respawn_backoff_cap:
        Exponential backoff bounds before a dead worker is respawned
        (doubling with the worker's consecutive failures).
    max_spawn_failures:
        Consecutive failed spawns before a worker slot is abandoned.
        When every slot is abandoned, ``run_batch`` raises
        :class:`~repro.errors.ServingError` rather than spin forever.
    hard_timeout:
        Parent-side wall-clock limit per dispatched task, after which
        the worker is killed and the task rescheduled.  ``None`` derives
        the limit from the task's guard deadline
        (``deadline * hard_timeout_grace + 1s``); a task with neither
        runs unbounded.
    hard_timeout_grace:
        Multiplier applied to a task's guard deadline when deriving the
        parent-side limit — the worker's own guard should win the race
        in the healthy case, the parent-side kill is the backstop.
    quarantine_after:
        Worker crashes attributable to the *same task* before it is
        quarantined with :class:`~repro.errors.PoisonTaskError`.
    max_crash_rate:
        Circuit-breaker threshold on the crash fraction of the last
        ``breaker_window`` task completions; ``None`` disables the
        breaker.
    breaker_window, breaker_min_events:
        Sliding-window length and the minimum completions before the
        rate is meaningful.
    breaker_cooldown:
        Seconds the breaker stays open before admitting one half-open
        batch.
    """

    max_retries: int = 2
    retry_backoff_base: float = 0.05
    retry_backoff_cap: float = 2.0
    respawn_backoff_base: float = 0.1
    respawn_backoff_cap: float = 5.0
    max_spawn_failures: int = 5
    hard_timeout: Optional[float] = None
    hard_timeout_grace: float = 2.0
    quarantine_after: int = 3
    max_crash_rate: Optional[float] = 0.8
    breaker_window: int = 16
    breaker_min_events: int = 8
    breaker_cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServingError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.quarantine_after < 1:
            raise ServingError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if self.max_spawn_failures < 1:
            raise ServingError(
                f"max_spawn_failures must be >= 1, got {self.max_spawn_failures}"
            )
        if self.hard_timeout is not None and self.hard_timeout <= 0:
            raise ServingError(
                f"hard_timeout must be > 0, got {self.hard_timeout}"
            )
        if self.max_crash_rate is not None and not 0.0 < self.max_crash_rate <= 1.0:
            raise ServingError(
                f"max_crash_rate must be in (0, 1], got {self.max_crash_rate}"
            )

    def task_hard_timeout(self, task: Dict[str, Any]) -> Optional[float]:
        """The parent-side kill deadline for one task (None: unbounded)."""
        if self.hard_timeout is not None:
            return self.hard_timeout
        spec = task.get("guard")
        if spec and spec[0] is not None:
            return float(spec[0]) * self.hard_timeout_grace + 1.0
        return None


class CircuitBreaker:
    """Sliding-window crash-rate breaker with cooldown and half-open.

    Tracks the last ``window`` task completions as success/failure bits.
    Once at least ``min_events`` are recorded and the failure fraction
    exceeds ``max_crash_rate``, the breaker *trips*: :meth:`admit`
    raises :class:`~repro.errors.CircuitOpenError` until ``cooldown``
    seconds pass, then admits half-open — the next failure re-trips
    immediately, the next success closes it.
    """

    def __init__(
        self,
        max_crash_rate: Optional[float],
        window: int = 16,
        min_events: int = 8,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_crash_rate = max_crash_rate
        self.min_events = min_events
        self.cooldown = cooldown
        self.trips = 0
        self._events: Deque[bool] = deque(maxlen=max(1, window))
        self._open_until: Optional[float] = None
        self._half_open = False
        self._clock = clock

    @property
    def state(self) -> str:
        if self._open_until is not None and self._clock() < self._open_until:
            return "open"
        if self._half_open or self._open_until is not None:
            return "half-open"
        return "closed"

    def _crash_rate(self) -> float:
        if not self._events:
            return 0.0
        return sum(1 for failed in self._events if failed) / len(self._events)

    def admit(self) -> None:
        """Gate one batch; raises :class:`CircuitOpenError` while open."""
        if self.max_crash_rate is None or self._open_until is None:
            return
        now = self._clock()
        if now < self._open_until:
            raise CircuitOpenError(
                self._crash_rate(), self.max_crash_rate, self._open_until - now
            )
        self._open_until = None
        self._half_open = True

    def record_failure(self) -> None:
        self._events.append(True)
        if self.max_crash_rate is None:
            return
        if self._half_open:
            self._trip()
            return
        if (
            self._open_until is None
            and len(self._events) >= self.min_events
            and self._crash_rate() > self.max_crash_rate
        ):
            self._trip()

    def record_success(self) -> None:
        self._events.append(False)
        self._half_open = False

    def _trip(self) -> None:
        self.trips += 1
        self._open_until = self._clock() + self.cooldown
        self._half_open = False
        METRICS.counter("serving.breaker_trips").inc()


def _supervised_worker_main(
    worker_id: int,
    spawn: int,
    mode: str,
    payload: Optional[Dict[str, Any]],
    requests,
    responses,
) -> None:
    """Worker process main loop: handshake, then serve tasks until the
    ``None`` sentinel.

    Fault injection runs here — spawn-scoped injectors before the ready
    handshake (so the supervisor sees a slow or failed spawn), task
    injectors before each execution (so a kill looks exactly like an OOM
    kill: no cleanup, no response).
    """
    def _send(message) -> bool:
        # The response pipe has this worker as its only writer, so a
        # completed send is fully flushed — nothing sits in a feeder
        # thread to be lost (or to wedge a shared lock) if this process
        # is SIGKILLed a moment later.  A broken pipe means the parent
        # is gone or has retired this incarnation: stop serving.
        try:
            responses.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    plan = _faults.plan_from_env()
    try:
        _faults.apply_spawn_faults(plan, worker_id, spawn)
        _pool._initialize_worker(mode, payload)
    except BaseException as exc:  # noqa: BLE001 - must report, then die
        _send(
            (
                "spawn_failed",
                worker_id,
                spawn,
                os.getpid(),
                f"{type(exc).__name__}: {exc}",
            )
        )
        return
    if not _send(("ready", worker_id, spawn, os.getpid())):
        return
    while True:
        task = requests.get()
        if task is None:
            return
        seq = task.get("_fault_seq", 0)
        attempt = task.get("_fault_attempt", 0)
        task_plan = _faults.plan_from_task(task)
        delta = task.get("_snapshot_delta")
        if delta is not None:
            # Delta broadcast: fault injection first (a KILL here models
            # death mid-apply — no cleanup, no ack), then converge the
            # local system and ack with the resulting signature check.
            _faults.apply_task_faults(task_plan, seq, attempt)
            try:
                signature = apply_snapshot_delta(_pool._WORKER["system"], delta)
                ok = tuple(signature) == tuple(delta.target_signature)
                detail = (
                    None
                    if ok
                    else "generation signature mismatch after delta apply"
                )
            except BaseException as exc:  # noqa: BLE001 - ack, then die
                ok, detail = False, f"{type(exc).__name__}: {exc}"
            if not _send(("delta_applied", worker_id, spawn, ok, detail)):
                return
            if not ok:
                # The local system may be half-converged: die and let the
                # supervisor respawn this slot from the advanced snapshot.
                return
            continue
        corrupt = _faults.apply_task_faults(task_plan, seq, attempt)
        outcome = run_query_task(task)
        if corrupt:
            outcome = _faults.corrupt_response()
        if not _send(("done", worker_id, spawn, task["_index"], outcome)):
            return


class _Worker:
    """Parent-side state of one supervised worker slot."""

    __slots__ = (
        "worker_id",
        "process",
        "requests",
        "reader",
        "pid",
        "ready",
        "busy_index",
        "kill_at",
        "spawn_count",
        "spawn_started",
        "consecutive_failures",
        "spawn_failures",
        "respawn_at",
        "abandoned",
        "last_request_id",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process = None
        self.requests = None
        #: Parent end of this incarnation's single-writer response pipe.
        self.reader = None
        self.pid: Optional[int] = None
        self.ready = False
        self.busy_index: Optional[int] = None
        self.kill_at: Optional[float] = None
        self.spawn_count = -1
        self.spawn_started: Optional[float] = None
        #: Consecutive crash-ish events (task crashes, spawn failures);
        #: doubles the respawn backoff, reset by a completed task.
        self.consecutive_failures = 0
        #: Consecutive *spawn* failures; abandons the slot when capped.
        self.spawn_failures = 0
        self.respawn_at: Optional[float] = None
        self.abandoned = False
        #: Request id of the task this slot was serving when it last
        #: died — stamped onto the respawn event, so a respawn joins the
        #: timeline of the request whose crash caused it.
        self.last_request_id: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def dispatchable(self) -> bool:
        return (
            not self.abandoned
            and self.ready
            and self.busy_index is None
            and self.alive
        )


class SupervisedWorkerPool:
    """A crash-tolerant pool of query workers over one system snapshot.

    Drop-in for :class:`~repro.serving.pool.WorkerPool` — same
    ``snapshot`` / ``workers`` attributes, same
    ``run_batch``/``close``/context-manager surface — with the
    supervision semantics described in the module docstring.

    Parameters
    ----------
    snapshot:
        The :class:`~repro.serving.snapshot.SystemSnapshot` workers
        answer from.
    workers:
        Worker-slot count.
    policy:
        :class:`RetryPolicy`; defaults are production-shaped (2 retries,
        quarantine at 3 crashes, breaker at 80% crash rate).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` stamped onto every
        dispatched task, so live workers honour it regardless of their
        inherited environment.
    """

    def __init__(
        self,
        snapshot: SystemSnapshot,
        workers: int,
        policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[_faults.FaultPlan] = None,
    ) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self.snapshot = snapshot
        self.workers = workers
        self.policy = policy if policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.breaker = CircuitBreaker(
            self.policy.max_crash_rate,
            window=self.policy.breaker_window,
            min_events=self.policy.breaker_min_events,
            cooldown=self.policy.breaker_cooldown,
        )
        start_method = (
            FORK if FORK in multiprocessing.get_all_start_methods() else "spawn"
        )
        self._context = multiprocessing.get_context(start_method)
        self._stats: Dict[str, Any] = {
            "crashes": 0,
            "retries": 0,
            "respawns": 0,
            "hard_timeouts": 0,
            "quarantined": 0,
            "spawn_failures": 0,
            "respawn_seconds": [],
        }
        self._closed = False
        self._workers = [_Worker(worker_id) for worker_id in range(workers)]
        for worker in self._workers:
            self._spawn(worker)

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        worker.spawn_count += 1
        worker.ready = False
        worker.busy_index = None
        worker.kill_at = None
        worker.respawn_at = None
        worker.spawn_started = time.monotonic()
        self._discard_transport(worker)
        worker.requests = self._context.Queue()
        worker.reader, writer = self._context.Pipe(duplex=False)
        # ensure_payload: a delta-advanced snapshot dropped its payload;
        # respawns rebuild it from the live system so every new worker
        # comes up at the current generation.
        payload = (
            None if self.snapshot.mode == FORK else self.snapshot.ensure_payload()
        )
        worker.process = self._context.Process(
            target=_supervised_worker_main,
            args=(
                worker.worker_id,
                worker.spawn_count,
                self.snapshot.mode,
                payload,
                worker.requests,
                writer,
            ),
            daemon=True,
        )
        if self.snapshot.mode == FORK:
            # Same copy-on-write handoff as WorkerPool: the child reads
            # the live system from the module global it inherits at fork.
            _pool._FORK_SYSTEM = self.snapshot.system
            try:
                worker.process.start()
            finally:
                _pool._FORK_SYSTEM = None
        else:
            worker.process.start()
        # Drop the parent's copy of the write end: the worker must be
        # the pipe's ONLY writer, so its death (even SIGKILL mid-send)
        # reads as EOF here instead of an indefinite block.
        writer.close()
        if worker.spawn_count > 0:
            self._stats["respawns"] += 1
            METRICS.counter("serving.worker_respawns").inc()

    def _discard_transport(self, worker: _Worker) -> None:
        """Retire a previous incarnation's request queue and response
        pipe; their contents died with the worker."""
        if worker.reader is not None:
            try:
                worker.reader.close()
            except OSError:
                pass
            worker.reader = None
        if worker.requests is not None:
            worker.requests.cancel_join_thread()
            try:
                worker.requests.close()
            except (ValueError, OSError):
                pass
            worker.requests = None

    def _kill_worker(self, worker: _Worker) -> None:
        if worker.process is None:
            return
        worker.process.terminate()
        worker.process.join(0.5)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(1.0)

    def _mark_dead(self, worker: _Worker, now: float, spawn_failure: bool) -> None:
        """Retire a dead (or just-killed) worker and schedule its respawn."""
        if worker.process is not None:
            worker.process.join(0.1)
        worker.ready = False
        worker.busy_index = None
        worker.kill_at = None
        worker.consecutive_failures += 1
        if spawn_failure:
            worker.spawn_failures += 1
            self._stats["spawn_failures"] += 1
            METRICS.counter("serving.spawn_failures").inc()
            if worker.spawn_failures >= self.policy.max_spawn_failures:
                worker.abandoned = True
                return
        else:
            worker.spawn_failures = 0
        worker.respawn_at = now + backoff_delay(
            self.policy.respawn_backoff_base,
            self.policy.respawn_backoff_cap,
            worker.consecutive_failures - 1,
        )

    def worker_pids(self) -> List[Optional[int]]:
        """Current pid per worker slot (None: not yet ready/abandoned)."""
        return [
            worker.pid if worker.alive else None for worker in self._workers
        ]

    def stats(self) -> Dict[str, Any]:
        """A copy of the recovery counters accumulated so far."""
        stats = dict(self._stats)
        stats["respawn_seconds"] = list(self._stats["respawn_seconds"])
        stats["breaker_trips"] = self.breaker.trips
        stats["breaker_state"] = self.breaker.state
        return stats

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down (idempotent): sentinel, bounded join,
        then terminate/kill whatever has not exited."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.alive and worker.requests is not None:
                try:
                    worker.requests.put_nowait(None)
                except (ValueError, OSError):
                    pass
        deadline = time.monotonic() + max(0.0, timeout)
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    self._kill_worker(worker)
            self._discard_transport(worker)

    def __enter__(self) -> "SupervisedWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SupervisedWorkerPool({self.workers} workers, "
            f"{self.snapshot.mode} snapshot, {state}, "
            f"breaker {self.breaker.state})"
        )

    # -- scheduling ---------------------------------------------------------

    def run_batch(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Execute ``tasks`` across the supervised workers, outcomes in
        task order.

        Never hangs on a dead or stuck worker: crashes and hard-timeout
        kills reschedule the task (bounded by the policy), and a final
        failure surfaces as a typed failure marker in that task's
        outcome, exactly like an in-query failure would.
        """
        if self._closed:
            raise ServingError("the worker pool is closed")
        self.breaker.admit()
        tasks = list(tasks)
        total = len(tasks)
        if not total:
            return []
        outcomes: List[Optional[Dict[str, Any]]] = [None] * total
        attempts = [0] * total
        crashes = [0] * total
        ready_at = [0.0] * total
        pending: Deque[int] = deque(range(total))
        events: List[Dict[str, Any]] = []
        started = time.perf_counter()
        done = 0
        while done < total:
            now = time.monotonic()
            self._respawn_due(now)
            self._ensure_live_workers()
            self._dispatch(tasks, pending, attempts, ready_at, now)
            message = self._next_response()
            if message is not None:
                done += self._handle_message(
                    message, tasks, outcomes, attempts, crashes,
                    ready_at, pending, events,
                )
            done += self._check_busy_workers(
                tasks, outcomes, attempts, crashes, ready_at, pending, events
            )
        self._record_recovery(events, time.perf_counter() - started, total)
        return outcomes

    def apply_delta(self, delta: SnapshotDelta) -> Dict[str, int]:
        """Broadcast a :class:`~repro.serving.snapshot.SnapshotDelta` to
        every live worker and wait for their acks.

        Called between batches (``run_batch`` is synchronous, so no task
        is in flight).  The shared snapshot is advanced *first*: any
        worker that fails to apply — crashes mid-apply, acks a signature
        mismatch, or exceeds :data:`DELTA_APPLY_TIMEOUT` — is killed and
        scheduled for respawn, and respawns initialize from the advanced
        snapshot (a fresh fork of the live parent, or a lazily rebuilt
        payload), so every incarnation converges to the target
        generation no matter how the apply went.  Dead or backing-off
        slots are skipped for the same reason.

        Returns ``{"applied": n, "respawning": m}``.
        """
        if self._closed:
            raise ServingError("the worker pool is closed")
        self.snapshot.advance(delta)
        task: Dict[str, Any] = {
            "_snapshot_delta": delta,
            "_fault_seq": DELTA_FAULT_SEQ,
            "_fault_attempt": 0,
        }
        if self.fault_plan is not None:
            task["faults"] = self.fault_plan.to_spec()
        awaiting: Dict[int, _Worker] = {}
        for worker in self._workers:
            # Not just ``dispatchable``: a worker still inside its spawn
            # handshake was forked/restored from the *pre-advance* state,
            # so it needs the delta too — its queue already exists and its
            # ack simply arrives after the "ready" message.  Replay is
            # idempotent, so a worker that happens to be current converges
            # to the same state.
            if not worker.abandoned and worker.busy_index is None and worker.alive:
                worker.requests.put(task)
                awaiting[worker.worker_id] = worker
        applied = 0
        failures: List[Dict[str, Any]] = []
        deadline = time.monotonic() + DELTA_APPLY_TIMEOUT
        while awaiting and time.monotonic() < deadline:
            message = self._next_response()
            now = time.monotonic()
            if message is not None:
                kind = message[0]
                worker = self._workers[message[1]]
                if message[2] != worker.spawn_count:
                    continue  # an earlier incarnation's message: drop it
                if kind == "delta_applied" and worker.worker_id in awaiting:
                    ok, detail = message[3], message[4]
                    del awaiting[worker.worker_id]
                    if ok:
                        applied += 1
                        worker.consecutive_failures = 0
                        continue
                    failures.append(
                        {"worker": worker.worker_id, "detail": detail}
                    )
                    self._kill_worker(worker)
                    self._mark_dead(worker, now, spawn_failure=False)
                elif kind == "ready":
                    worker.ready = True
                    worker.pid = message[3]
                    worker.spawn_failures = 0
            for worker_id in list(awaiting):
                worker = awaiting[worker_id]
                if not worker.alive:
                    # Killed mid-apply (OOM, chaos): respawn from the
                    # advanced snapshot recovers a consistent generation.
                    del awaiting[worker_id]
                    failures.append(
                        {
                            "worker": worker_id,
                            "detail": (
                                f"pid {worker.pid} died applying the delta "
                                f"(exitcode {worker.process.exitcode})"
                            ),
                        }
                    )
                    self._mark_dead(worker, now, spawn_failure=False)
        now = time.monotonic()
        for worker_id, worker in awaiting.items():
            failures.append(
                {"worker": worker_id, "detail": "delta apply timed out"}
            )
            self._kill_worker(worker)
            self._mark_dead(worker, now, spawn_failure=False)
        observability = self.snapshot.system.observability
        for failure in failures:
            METRICS.counter("serving.delta_apply_failures").inc()
            observability.record_event("serving.delta_apply_failed", **failure)
        METRICS.counter("serving.delta_applies").inc()
        observability.record_event(
            "serving.delta_applied",
            workers=applied,
            respawning=len(failures),
            collections=len(delta.collections),
            documents=delta.documents_shipped,
            seos=len(delta.seos),
        )
        return {"applied": applied, "respawning": len(failures)}

    def _ensure_live_workers(self) -> None:
        if all(worker.abandoned for worker in self._workers):
            raise ServingError(
                "every worker slot is permanently failed "
                f"(>= {self.policy.max_spawn_failures} consecutive spawn "
                "failures each); the snapshot cannot be served"
            )

    @staticmethod
    def _task_request_id(task: Dict[str, Any]) -> Optional[str]:
        """The request id a task dict carries (None pre-request-context)."""
        wire = task.get("request")
        return wire.get("id") if isinstance(wire, dict) else None

    def _respawn_due(self, now: float) -> None:
        for worker in self._workers:
            if (
                not worker.abandoned
                and not worker.alive
                and worker.respawn_at is not None
                and now >= worker.respawn_at
            ):
                self._spawn(worker)

    def _dispatch(
        self,
        tasks: List[Dict[str, Any]],
        pending: Deque[int],
        attempts: List[int],
        ready_at: List[float],
        now: float,
    ) -> None:
        for worker in self._workers:
            if not pending:
                return
            if not worker.dispatchable:
                continue
            index = None
            for _ in range(len(pending)):
                candidate = pending.popleft()
                if ready_at[candidate] <= now:
                    index = candidate
                    break
                pending.append(candidate)
            if index is None:
                return
            task = dict(tasks[index])
            task["_index"] = index
            task["_fault_seq"] = index
            task["_fault_attempt"] = attempts[index]
            if self.fault_plan is not None:
                task["faults"] = self.fault_plan.to_spec()
            worker.requests.put(task)
            worker.busy_index = index
            timeout = self.policy.task_hard_timeout(tasks[index])
            worker.kill_at = now + timeout if timeout is not None else None

    def wait_ready(self, timeout: float = 30.0) -> int:
        """Block until every live worker finished its spawn handshake.

        Serving can start before the whole fleet is up — dispatch only
        needs one ready worker — so callers that want steady-state
        behaviour (pre-warmed deploys, benchmarks, tests that measure
        the delta path rather than the spawn tail) use this barrier
        after construction or a full refresh.  Slots that are dead,
        abandoned or backing off are not waited for.  Returns the
        number of ready live workers.
        """
        if self._closed:
            raise ServingError("the worker pool is closed")
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pending = [
                worker
                for worker in self._workers
                if not worker.abandoned and worker.alive and not worker.ready
            ]
            if not pending:
                break
            message = self._next_response()
            if message is None:
                continue
            kind = message[0]
            worker = self._workers[message[1]]
            if message[2] != worker.spawn_count:
                continue  # an earlier incarnation's message: drop it
            if kind == "ready":
                worker.ready = True
                worker.pid = message[3]
                worker.spawn_failures = 0
        return sum(
            1 for worker in self._workers if worker.alive and worker.ready
        )

    def _next_response(self):
        readers = [
            worker.reader
            for worker in self._workers
            if worker.reader is not None and not worker.reader.closed
        ]
        if not readers:
            time.sleep(POLL_INTERVAL)
            return None
        for conn in _connection_wait(readers, timeout=POLL_INTERVAL):
            try:
                return conn.recv()
            except (EOFError, OSError):
                # The worker died (possibly mid-send).  Close the pipe so
                # it stops polling as ready; the liveness check finalizes
                # the worker itself.
                conn.close()
        return None

    def _handle_message(
        self, message, tasks, outcomes, attempts, crashes, ready_at,
        pending, events,
    ) -> int:
        kind = message[0]
        worker = self._workers[message[1]]
        spawn = message[2]
        if spawn != worker.spawn_count:
            # A message from an earlier incarnation of this slot (we
            # already presumed it dead and moved on): drop it.
            return 0
        now = time.monotonic()
        if kind == "ready":
            pid = message[3]
            worker.ready = True
            worker.pid = pid
            worker.spawn_failures = 0
            if worker.spawn_count > 0 and worker.spawn_started is not None:
                elapsed = now - worker.spawn_started
                self._stats["respawn_seconds"].append(elapsed)
                METRICS.histogram("serving.respawn_seconds").observe(elapsed)
                event = {
                    "event": "respawn",
                    "worker": worker.worker_id,
                    "seconds": elapsed,
                }
                if worker.last_request_id is not None:
                    event["request_id"] = worker.last_request_id
                    worker.last_request_id = None
                events.append(event)
            return 0
        if kind == "spawn_failed":
            detail = message[4]
            if worker.respawn_at is not None or worker.abandoned:
                # The death was already noticed through is_alive().
                return 0
            events.append(
                {
                    "event": "spawn_failed",
                    "worker": worker.worker_id,
                    "detail": detail,
                }
            )
            self._mark_dead(worker, now, spawn_failure=True)
            return 0
        if kind == "done":
            index, outcome = message[3], message[4]
            if worker.busy_index != index or outcomes[index] is not None:
                # A late response for a task already finalized elsewhere.
                return 0
            worker.busy_index = None
            worker.kill_at = None
            worker.consecutive_failures = 0
            if not isinstance(outcome, dict) or (
                "report" not in outcome and "failure" not in outcome
            ):
                return self._task_failed(
                    index, tasks, outcomes, attempts, crashes, ready_at,
                    pending, events, now,
                    reason="transport",
                    detail="corrupted worker response",
                    worker_killed=False,
                )
            self.breaker.record_success()
            outcome["attempts"] = attempts[index] + 1
            outcomes[index] = outcome
            return 1
        return 0  # pragma: no cover - no other message kinds exist

    def _check_busy_workers(
        self, tasks, outcomes, attempts, crashes, ready_at, pending, events
    ) -> int:
        finalized = 0
        now = time.monotonic()
        for worker in self._workers:
            if worker.abandoned or worker.process is None:
                continue
            if worker.busy_index is not None:
                index = worker.busy_index
                if not worker.process.is_alive():
                    worker.last_request_id = self._task_request_id(tasks[index])
                    events.append(
                        {
                            "event": "crash",
                            "worker": worker.worker_id,
                            "pid": worker.pid,
                            "task": index,
                            "exitcode": worker.process.exitcode,
                            "request_id": worker.last_request_id,
                        }
                    )
                    self._mark_dead(worker, now, spawn_failure=False)
                    finalized += self._task_failed(
                        index, tasks, outcomes, attempts, crashes, ready_at,
                        pending, events, now,
                        reason="worker_died",
                        detail=(
                            f"pid {worker.pid} exited with "
                            f"{worker.process.exitcode} mid-query"
                        ),
                        worker_killed=True,
                    )
                elif worker.kill_at is not None and now >= worker.kill_at:
                    self._stats["hard_timeouts"] += 1
                    METRICS.counter("serving.hard_timeouts").inc()
                    worker.last_request_id = self._task_request_id(tasks[index])
                    events.append(
                        {
                            "event": "hard_timeout",
                            "worker": worker.worker_id,
                            "pid": worker.pid,
                            "task": index,
                            "request_id": worker.last_request_id,
                        }
                    )
                    timeout = self.policy.task_hard_timeout(tasks[index])
                    self._kill_worker(worker)
                    self._mark_dead(worker, now, spawn_failure=False)
                    finalized += self._task_failed(
                        index, tasks, outcomes, attempts, crashes, ready_at,
                        pending, events, now,
                        reason="hung",
                        detail=(
                            f"exceeded the {timeout:.1f}s parent-side hard "
                            "timeout and was killed"
                        ),
                        worker_killed=True,
                    )
            elif worker.ready and not worker.process.is_alive():
                # Idle worker died between tasks: respawn, no task harmed.
                events.append(
                    {
                        "event": "idle_crash",
                        "worker": worker.worker_id,
                        "pid": worker.pid,
                        "exitcode": worker.process.exitcode,
                    }
                )
                self._mark_dead(worker, now, spawn_failure=False)
            elif (
                not worker.ready
                and worker.respawn_at is None
                and not worker.process.is_alive()
            ):
                # Died before the handshake, and the spawn_failed message
                # (if one was ever sent) died with it: a spawn failure.
                events.append(
                    {
                        "event": "spawn_failed",
                        "worker": worker.worker_id,
                        "detail": (
                            f"exited with {worker.process.exitcode} "
                            "before the ready handshake"
                        ),
                    }
                )
                self._mark_dead(worker, now, spawn_failure=True)
        return finalized

    def _task_failed(
        self, index, tasks, outcomes, attempts, crashes, ready_at,
        pending, events, now, reason, detail, worker_killed,
    ) -> int:
        """Retry, quarantine or finalize one failed dispatch.

        Returns 1 when the task is finalized (outcome recorded), 0 when
        it was requeued for another attempt.
        """
        attempts[index] += 1
        if worker_killed:
            crashes[index] += 1
        self._stats["crashes"] += 1
        METRICS.counter("serving.worker_crashes").inc()
        self.breaker.record_failure()
        query = tasks[index].get("query", "")
        request_id = self._task_request_id(tasks[index])
        if crashes[index] >= self.policy.quarantine_after:
            self._stats["quarantined"] += 1
            METRICS.counter("serving.quarantined_tasks").inc()
            events.append(
                {"event": "quarantine", "task": index, "query": query,
                 "request_id": request_id}
            )
            outcomes[index] = {
                "failure": ("poison", query, crashes[index]),
                "seconds": 0.0,
                "steps": 0,
                "stage_steps": {},
                "attempts": attempts[index],
            }
            return 1
        if attempts[index] > self.policy.max_retries:
            outcomes[index] = {
                "failure": ("crash", query, attempts[index], f"{reason}: {detail}"),
                "seconds": 0.0,
                "steps": 0,
                "stage_steps": {},
                "attempts": attempts[index],
            }
            return 1
        self._stats["retries"] += 1
        METRICS.counter("serving.task_retries").inc()
        delay = backoff_delay(
            self.policy.retry_backoff_base,
            self.policy.retry_backoff_cap,
            attempts[index] - 1,
        )
        events.append(
            {"event": "retry", "task": index, "attempt": attempts[index],
             "delay": delay, "reason": reason, "request_id": request_id}
        )
        ready_at[index] = now + delay
        pending.append(index)
        return 0

    def _record_recovery(
        self, events: List[Dict[str, Any]], batch_seconds: float, total: int
    ) -> None:
        """Route a recovered batch's events through the observability
        stack: a supervisor span tree plus an event/slow-query log entry."""
        if not events:
            return
        observability = self.snapshot.system.observability
        for event in events:
            observability.record_event(
                f"serving.{event['event']}",
                **{
                    key: value
                    for key, value in event.items()
                    if key != "event" and value is not None
                },
            )
        tracer = observability.tracer()
        with tracer.trace(
            "serving.supervisor", events=len(events), tasks=total
        ):
            for event in events:
                tracer.record_span(
                    f"recovery.{event['event']}",
                    float(event.get("seconds", 0.0)),
                    attributes={
                        key: value
                        for key, value in event.items()
                        if key not in ("event", "seconds")
                    },
                )
        trace = tracer.finish()
        observability.record_query(
            "serving.recovery",
            total_seconds=batch_seconds,
            trace=trace,
            extra={
                "tasks": total,
                "crashes": sum(1 for e in events if e["event"] == "crash"),
                "hard_timeouts": sum(
                    1 for e in events if e["event"] == "hard_timeout"
                ),
                "retries": sum(1 for e in events if e["event"] == "retry"),
                "respawns": sum(1 for e in events if e["event"] == "respawn"),
                "quarantined": sum(
                    1 for e in events if e["event"] == "quarantine"
                ),
            },
        )
