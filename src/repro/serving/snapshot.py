"""Snapshots of a built TossSystem for worker processes.

Two transports, chosen by platform capability:

``fork`` (the default wherever available)
    The worker pool forks, so every worker shares the parent's built
    system — database, search indexes, SEOs, compiled caches — through
    copy-on-write pages.  Nothing is serialized; snapshot capture is
    O(1).

``pickle`` (spawn-only platforms, or forced for tests)
    A :class:`TossSystem` is not picklable (its type system carries
    closures), so the snapshot serializes what a *query* needs — the
    documents as XML text and the SEOs in their persisted-dict form
    (:func:`repro.similarity.persistence.seo_to_dict`) — and each
    worker rebuilds a bare queryable system from that payload, exactly
    the way :func:`repro.core.persistence.load_system` restores one
    from disk (ontology re-extraction skipped: the SEOs carry the
    queried state).

Either way the snapshot records the database's **generation signature**
(per-collection mutation counters) at capture time; the serving layer
compares signatures before dispatch and raises
:class:`~repro.errors.SnapshotStaleError` when the live system has
moved on, so a pool can never silently answer from outdated data.

**Delta refresh.**  A mutated system does not force a full re-capture:
:meth:`SystemSnapshot.delta` replays each collection's changelog
(:meth:`~repro.xmldb.collection.Collection.changes_since`) into a
compact :class:`SnapshotDelta` — the ordered mutation ops, the final
text of each surviving upserted document, and, per relation whose SEO
object identity moved since capture (the system's incremental build
keeps unchanged SEO objects alive precisely so this comparison works),
either the chain of *enhancement patches* the patched builds recorded
(when every build since capture took the
:func:`~repro.similarity.sea.extend_enhancement` path — the payload is
then sized to the writes, not the ontology) or the full serialized SEO
as the fallback.  :func:`apply_snapshot_delta` replays a delta inside
a live worker, converging its inherited/restored system to the target
generation signature bit-for-bit; the supervised pool broadcasts it
between batches instead of respawning the fleet.  A truncated
changelog, a vanished collection or an unbuilt system makes ``delta``
return None and the caller falls back to the full re-capture path.
"""

from __future__ import annotations

import multiprocessing
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Separator between documents inside one compressed collection segment.
#: NUL can never appear in serialized XML text.
_DOC_SEPARATOR = "\x00"

from ..errors import ServingError
from ..ontology.hierarchy import Ontology

#: Transport modes a snapshot can use.
FORK = "fork"
PICKLE = "pickle"


def default_mode() -> str:
    """``fork`` where the platform supports it, else ``pickle``."""
    return FORK if FORK in multiprocessing.get_all_start_methods() else PICKLE


@dataclass
class SnapshotDelta:
    """The compact difference between a snapshot and the live system.

    Plain picklable data, shipped to live workers over their request
    queues.  ``collections`` maps each mutated collection to its ordered
    op list (``(op, key)`` pairs replayed exactly as the changelog
    recorded them, so worker-side scan order matches the parent's), the
    surviving upserted keys, and one compressed segment holding those
    keys' final texts.  ``seos`` carries one entry per relation whose
    SEO changed since capture: ``{"patches": [...]}`` with the ordered
    :func:`~repro.similarity.persistence.seo_patch_to_dict` chain when
    every build in between patched its predecessor (workers replay them
    in place, preserving all unaffected structure), else the relation's
    full persisted-dict form.
    """

    base_signature: Tuple[Tuple[str, int], ...]
    target_signature: Tuple[Tuple[str, int], ...]
    collections: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    seos: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    epsilon: float = 0.0

    @property
    def documents_shipped(self) -> int:
        return sum(
            len(segment["upsert_keys"]) for segment in self.collections.values()
        )


@dataclass
class SystemSnapshot:
    """An immutable capture of a built system for worker processes."""

    mode: str
    #: The live system (parent-side planning and, under fork, the object
    #: the workers inherit copy-on-write).
    system: Any
    #: Database generation signature at capture time.
    signature: Tuple[Tuple[str, int], ...]
    #: Plain-data payload for spawn workers (None under fork).
    payload: Optional[Dict[str, Any]] = field(default=None, repr=False)
    #: The SEO objects the snapshot served at capture time, per relation.
    #: Deltas compare object identity against the live context: the
    #: system's no-op build path returns the same objects, so an
    #: unchanged relation ships nothing.
    seo_refs: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @classmethod
    def capture(cls, system, mode: Optional[str] = None) -> "SystemSnapshot":
        """Snapshot ``system`` for serving.

        The system must be queryable — built, or explicitly degraded to
        exact matching — since workers answer queries, not builds.
        """
        if system.executor is None:
            raise ServingError("build() the system before serving it")
        mode = mode if mode is not None else default_mode()
        if mode not in (FORK, PICKLE):
            raise ServingError(f"unknown snapshot mode {mode!r}")
        if mode == FORK and FORK not in multiprocessing.get_all_start_methods():
            raise ServingError("fork snapshots are unavailable on this platform")
        payload = cls._build_payload(system) if mode == PICKLE else None
        return cls(
            mode=mode,
            system=system,
            signature=system.database.generation_signature(),
            payload=payload,
            seo_refs=(
                dict(system.context.seos) if system.context is not None else None
            ),
        )

    @staticmethod
    def _build_payload(system) -> Dict[str, Any]:
        from ..similarity.persistence import seo_to_dict
        from ..xmldb.serializer import serialize

        if not system.measure.name:
            raise ServingError(
                "only registry measures can be pickle-snapshotted; register "
                "the custom measure with repro.similarity.register_measure "
                "or serve with fork snapshots"
            )
        collections: Dict[str, Any] = {}
        for collection in system.database.collections():
            keys: List[str] = []
            texts: List[str] = []
            for key, root in collection.documents():
                keys.append(key)
                texts.append(serialize(root))
            # One compressed segment per collection instead of a list of
            # (key, text) pairs: XML text compresses ~10x, and the whole
            # payload crosses the process boundary on every spawn-mode
            # worker start (and on every refresh()).
            collections[collection.name] = {
                "keys": keys,
                "docs_z": zlib.compress(
                    _DOC_SEPARATOR.join(texts).encode("utf-8"), 6
                ),
                # The live generation counter, restored worker-side so a
                # later SnapshotDelta's base generations line up.
                "generation": collection.generation,
            }
        seos = None
        if system.context is not None:
            seos = {
                relation: seo_to_dict(seo)
                for relation, seo in system.context.seos.items()
            }
        return {
            "measure": system.measure.name,
            "epsilon": system.epsilon,
            "use_index": system.use_index,
            "degraded": system.degraded,
            "collections": collections,
            "seos": seos,
        }

    def stale(self, system=None) -> bool:
        """Whether the (given or captured) system changed since capture."""
        system = system if system is not None else self.system
        return system.database.generation_signature() != self.signature

    def delta(self, system=None) -> Optional[SnapshotDelta]:
        """The :class:`SnapshotDelta` from this snapshot to the live
        system, or None when a full re-capture is required.

        None means: the system is not queryable (mutated but not yet
        rebuilt), a collection's changelog no longer reaches back to the
        snapshot generation, a collection disappeared, or (pickle mode)
        the measure left the registry.  A non-stale system yields an
        empty-but-valid delta.
        """
        from ..similarity.persistence import seo_patch_to_dict, seo_to_dict
        from ..xmldb.serializer import serialize

        system = system if system is not None else self.system
        if system.executor is None or system.context is None:
            return None
        if self.mode == PICKLE and not system.measure.name:
            return None
        base = dict(self.signature)
        collections: Dict[str, Dict[str, Any]] = {}
        for collection in system.database.collections():
            base_generation = base.pop(collection.name, None)
            if base_generation == collection.generation:
                continue
            if base_generation is None:
                # A collection born after capture ships whole, in scan
                # order (its changelog may already have wrapped).
                ops = [("add", key) for key in collection.keys()]
            else:
                changes = collection.changes_since(base_generation)
                if changes is None:
                    return None  # changelog truncated or foreign
                ops = [(op, key) for op, key in changes]
            upsert_keys: List[str] = []
            seen = set()
            for op, key in ops:
                if op != "remove" and key in collection and key not in seen:
                    seen.add(key)
                    upsert_keys.append(key)
            texts = [
                serialize(collection.get_document(key)) for key in upsert_keys
            ]
            collections[collection.name] = {
                "ops": ops,
                "upsert_keys": upsert_keys,
                "texts_z": zlib.compress(
                    _DOC_SEPARATOR.join(texts).encode("utf-8"), 6
                ),
                "generation": collection.generation,
            }
        if base:
            return None  # a captured collection no longer exists
        seos: Dict[str, Dict[str, Any]] = {}
        refs = self.seo_refs if self.seo_refs is not None else {}
        for relation, seo in system.context.seos.items():
            base = refs.get(relation)
            if base is seo:
                continue
            chain = _seo_patch_chain(seo, base)
            if chain is not None:
                # Every build since capture patched its predecessor, and
                # the chain bottoms out at the SEO this snapshot served:
                # ship the patches (sized to the writes) instead of the
                # whole SEO, and let workers replay them in place.
                seos[relation] = {
                    "patches": [
                        seo_patch_to_dict(previous, current, removed, added)
                        for previous, current, removed, added in chain
                    ]
                }
            else:
                seos[relation] = seo_to_dict(seo)
        return SnapshotDelta(
            base_signature=self.signature,
            target_signature=system.database.generation_signature(),
            collections=collections,
            seos=seos,
            epsilon=system.epsilon,
        )

    def advance(self, delta: SnapshotDelta) -> None:
        """Move this snapshot's bookkeeping to the delta's target state.

        Called by the pool once a delta is being applied: the signature
        jumps to the target (so freshness checks pass), the SEO identity
        refs re-anchor on the live context, and any pickle payload is
        dropped — :meth:`ensure_payload` rebuilds it lazily on the next
        respawn, keeping the delta path free of full re-serialization.
        """
        self.signature = delta.target_signature
        if self.system.context is not None:
            self.seo_refs = dict(self.system.context.seos)
        if self.payload is not None:
            self.payload = None

    def ensure_payload(self) -> Optional[Dict[str, Any]]:
        """The spawn payload, rebuilding it if :meth:`advance` dropped it.

        Fork snapshots have no payload (returns None); respawned fork
        workers inherit the live parent and are current by construction.
        """
        if self.mode != PICKLE:
            return None
        if self.payload is None:
            self.payload = self._build_payload(self.system)
        return self.payload

    def restore(self):
        """Rebuild a bare queryable system from a pickle payload.

        Runs inside spawn workers.  The restored system answers queries
        identically to the original: same documents in the same
        collection order, same SEOs, same executor configuration —
        ontology re-extraction is skipped because queries never consult
        the raw per-instance ontologies, only the SEOs.
        """
        if self.payload is None:
            raise ServingError("fork snapshots restore by inheritance, not payload")
        return restore_payload(self.payload)


def _seo_patch_chain(seo, base):
    """The patch links leading from ``base`` to ``seo``, oldest first.

    Each link is ``(previous, current, removed, added)`` as recorded by
    the patched build path (:attr:`SimilarityEnhancedOntology.patch`).
    Returns None when the chain does not reach ``base`` — some build in
    between ran from scratch, the chain outgrew
    :data:`~repro.similarity.seo.MAX_PATCH_CHAIN`, or the snapshot never
    served this relation — and the caller ships the full SEO instead.
    """
    if base is None:
        return None
    links = []
    cursor = seo
    while cursor is not base:
        patch = getattr(cursor, "patch", None)
        if patch is None:
            return None
        previous, removed, added = patch
        links.append((previous, cursor, removed, added))
        cursor = previous
    links.reverse()
    return links


def _collection_documents(documents) -> List[Tuple[str, str]]:
    """(key, xml-text) pairs from either payload shape.

    The current shape is the compressed segment dict built by
    :meth:`SystemSnapshot._build_payload`; a plain list of pairs (the
    pre-compression shape) still restores, so a payload captured by an
    older parent replays unchanged.
    """
    if isinstance(documents, dict):
        blob = zlib.decompress(documents["docs_z"]).decode("utf-8")
        keys = documents["keys"]
        texts = blob.split(_DOC_SEPARATOR) if keys else []
        if len(texts) != len(keys):
            raise ServingError(
                f"snapshot segment corrupt: {len(keys)} keys for "
                f"{len(texts)} documents"
            )
        return list(zip(keys, texts))
    return [(key, text) for key, text in documents]


def restore_payload(payload: Dict[str, Any]):
    """Rebuild a queryable :class:`~repro.core.system.TossSystem` from a
    :meth:`SystemSnapshot.capture` pickle payload (worker-side)."""
    from ..core.conditions import SeoConditionContext
    from ..core.executor import QueryExecutor
    from ..core.system import TossSystem
    from ..similarity.persistence import seo_from_dict

    system = TossSystem(
        measure=payload["measure"],
        epsilon=float(payload["epsilon"]),
        use_index=payload["use_index"],
    )
    for name, documents in payload["collections"].items():
        collection = system.database.create_collection(name)
        for key, text in _collection_documents(documents):
            collection.add_document(key, text)
        if isinstance(documents, dict) and "generation" in documents:
            # Adopt the live generation counter so delta refreshes line
            # up against the same base the parent computes from.
            collection.generation = documents["generation"]
    if payload["seos"] is not None:
        seos = {
            relation: seo_from_dict(entry)
            for relation, entry in payload["seos"].items()
        }
        isa_seo = seos.get(Ontology.ISA)
        if isa_seo is None:
            raise ServingError("snapshot payload lacks an isa SEO")
        system.context = SeoConditionContext(
            isa_seo,
            seos=seos,
            type_system=system.type_system,
            typing=system.typing,
        )
        system.executor = QueryExecutor(
            system.database, system.context, use_index=system.use_index
        )
    else:
        system.degraded = bool(payload.get("degraded", True))
        system.executor = QueryExecutor(
            system.database,
            None,
            exact_fallback=True,
            use_index=system.use_index,
        )
    return system


def apply_snapshot_delta(system, delta: SnapshotDelta):
    """Replay ``delta`` onto a worker's system; returns the resulting
    generation signature (the caller's ack compares it to the target).

    Runs inside a live worker, against either the fork-inherited system
    copy or a payload-restored one.  Document ops replay in changelog
    order — an upsert applies the key's *final* text at each occurrence
    (the last occurrence fixes its scan position, matching the parent's
    replace-moves-to-end semantics), and ops on keys that did not
    survive to the target state are skipped, which cannot perturb the
    relative order of surviving documents.  Changed SEOs converge by
    replaying their shipped enhancement-patch chain against the live SEO
    (copy-on-write, delta-sized work) or, for full-form entries, by
    deserializing the replacement; either way the result swaps in via a
    fresh condition context, and the executor keeps its compiled plans
    and invalidates them per context epoch.
    """
    from ..core.conditions import SeoConditionContext
    from ..core.executor import QueryExecutor
    from ..similarity.persistence import apply_seo_patch, seo_from_dict

    database = system.database
    for name, segment in delta.collections.items():
        collection = (
            database.get_collection(name)
            if name in database
            else database.create_collection(name)
        )
        blob = zlib.decompress(segment["texts_z"]).decode("utf-8")
        keys = segment["upsert_keys"]
        texts = blob.split(_DOC_SEPARATOR) if keys else []
        if len(texts) != len(keys):
            raise ServingError(
                f"delta segment corrupt: {len(keys)} keys for "
                f"{len(texts)} documents"
            )
        final = dict(zip(keys, texts))
        for op, key in segment["ops"]:
            if op == "remove":
                if key in collection:
                    collection.remove_document(key)
                continue
            text = final.get(key)
            if text is None:
                continue  # upserted then removed before the target state
            if key in collection:
                collection.replace_document(key, text)
            else:
                collection.add_document(key, text)
        collection.generation = segment["generation"]
    system.epsilon = float(delta.epsilon)
    if delta.seos:
        seos = dict(system.context.seos) if system.context is not None else {}
        for relation, entry in delta.seos.items():
            if "patches" in entry:
                seo = seos.get(relation)
                if seo is None:
                    raise ServingError(
                        f"delta ships an SEO patch for {relation!r} but "
                        "the worker has no SEO to patch"
                    )
                for patch in entry["patches"]:
                    seo = apply_seo_patch(seo, patch)
                seos[relation] = seo
            else:
                seos[relation] = seo_from_dict(entry)
        isa_seo = seos.get(Ontology.ISA)
        if isa_seo is None:
            raise ServingError("snapshot delta lacks an isa SEO")
        context = SeoConditionContext(
            isa_seo,
            seos=seos,
            type_system=system.type_system,
            typing=system.typing,
        )
        system.context = context
        if system.executor is not None and not system.executor.exact_fallback:
            system.executor.set_context(context, seo_changed=True)
        else:
            system.executor = QueryExecutor(
                system.database, context, use_index=system.use_index
            )
        system.degraded = False
    return database.generation_signature()
