"""Snapshots of a built TossSystem for worker processes.

Two transports, chosen by platform capability:

``fork`` (the default wherever available)
    The worker pool forks, so every worker shares the parent's built
    system — database, search indexes, SEOs, compiled caches — through
    copy-on-write pages.  Nothing is serialized; snapshot capture is
    O(1).

``pickle`` (spawn-only platforms, or forced for tests)
    A :class:`TossSystem` is not picklable (its type system carries
    closures), so the snapshot serializes what a *query* needs — the
    documents as XML text and the SEOs in their persisted-dict form
    (:func:`repro.similarity.persistence.seo_to_dict`) — and each
    worker rebuilds a bare queryable system from that payload, exactly
    the way :func:`repro.core.persistence.load_system` restores one
    from disk (ontology re-extraction skipped: the SEOs carry the
    queried state).

Either way the snapshot records the database's **generation signature**
(per-collection mutation counters) at capture time; the serving layer
compares signatures before dispatch and raises
:class:`~repro.errors.SnapshotStaleError` when the live system has
moved on, so a pool can never silently answer from outdated data.
"""

from __future__ import annotations

import multiprocessing
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Separator between documents inside one compressed collection segment.
#: NUL can never appear in serialized XML text.
_DOC_SEPARATOR = "\x00"

from ..errors import ServingError
from ..ontology.hierarchy import Ontology

#: Transport modes a snapshot can use.
FORK = "fork"
PICKLE = "pickle"


def default_mode() -> str:
    """``fork`` where the platform supports it, else ``pickle``."""
    return FORK if FORK in multiprocessing.get_all_start_methods() else PICKLE


@dataclass
class SystemSnapshot:
    """An immutable capture of a built system for worker processes."""

    mode: str
    #: The live system (parent-side planning and, under fork, the object
    #: the workers inherit copy-on-write).
    system: Any
    #: Database generation signature at capture time.
    signature: Tuple[Tuple[str, int], ...]
    #: Plain-data payload for spawn workers (None under fork).
    payload: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @classmethod
    def capture(cls, system, mode: Optional[str] = None) -> "SystemSnapshot":
        """Snapshot ``system`` for serving.

        The system must be queryable — built, or explicitly degraded to
        exact matching — since workers answer queries, not builds.
        """
        if system.executor is None:
            raise ServingError("build() the system before serving it")
        mode = mode if mode is not None else default_mode()
        if mode not in (FORK, PICKLE):
            raise ServingError(f"unknown snapshot mode {mode!r}")
        if mode == FORK and FORK not in multiprocessing.get_all_start_methods():
            raise ServingError("fork snapshots are unavailable on this platform")
        payload = cls._build_payload(system) if mode == PICKLE else None
        return cls(
            mode=mode,
            system=system,
            signature=system.database.generation_signature(),
            payload=payload,
        )

    @staticmethod
    def _build_payload(system) -> Dict[str, Any]:
        from ..similarity.persistence import seo_to_dict
        from ..xmldb.serializer import serialize

        if not system.measure.name:
            raise ServingError(
                "only registry measures can be pickle-snapshotted; register "
                "the custom measure with repro.similarity.register_measure "
                "or serve with fork snapshots"
            )
        collections: Dict[str, Any] = {}
        for collection in system.database.collections():
            keys: List[str] = []
            texts: List[str] = []
            for key, root in collection.documents():
                keys.append(key)
                texts.append(serialize(root))
            # One compressed segment per collection instead of a list of
            # (key, text) pairs: XML text compresses ~10x, and the whole
            # payload crosses the process boundary on every spawn-mode
            # worker start (and on every refresh()).
            collections[collection.name] = {
                "keys": keys,
                "docs_z": zlib.compress(
                    _DOC_SEPARATOR.join(texts).encode("utf-8"), 6
                ),
            }
        seos = None
        if system.context is not None:
            seos = {
                relation: seo_to_dict(seo)
                for relation, seo in system.context.seos.items()
            }
        return {
            "measure": system.measure.name,
            "epsilon": system.epsilon,
            "use_index": system.use_index,
            "degraded": system.degraded,
            "collections": collections,
            "seos": seos,
        }

    def stale(self, system=None) -> bool:
        """Whether the (given or captured) system changed since capture."""
        system = system if system is not None else self.system
        return system.database.generation_signature() != self.signature

    def restore(self):
        """Rebuild a bare queryable system from a pickle payload.

        Runs inside spawn workers.  The restored system answers queries
        identically to the original: same documents in the same
        collection order, same SEOs, same executor configuration —
        ontology re-extraction is skipped because queries never consult
        the raw per-instance ontologies, only the SEOs.
        """
        if self.payload is None:
            raise ServingError("fork snapshots restore by inheritance, not payload")
        return restore_payload(self.payload)


def _collection_documents(documents) -> List[Tuple[str, str]]:
    """(key, xml-text) pairs from either payload shape.

    The current shape is the compressed segment dict built by
    :meth:`SystemSnapshot._build_payload`; a plain list of pairs (the
    pre-compression shape) still restores, so a payload captured by an
    older parent replays unchanged.
    """
    if isinstance(documents, dict):
        blob = zlib.decompress(documents["docs_z"]).decode("utf-8")
        keys = documents["keys"]
        texts = blob.split(_DOC_SEPARATOR) if keys else []
        if len(texts) != len(keys):
            raise ServingError(
                f"snapshot segment corrupt: {len(keys)} keys for "
                f"{len(texts)} documents"
            )
        return list(zip(keys, texts))
    return [(key, text) for key, text in documents]


def restore_payload(payload: Dict[str, Any]):
    """Rebuild a queryable :class:`~repro.core.system.TossSystem` from a
    :meth:`SystemSnapshot.capture` pickle payload (worker-side)."""
    from ..core.conditions import SeoConditionContext
    from ..core.executor import QueryExecutor
    from ..core.system import TossSystem
    from ..similarity.persistence import seo_from_dict

    system = TossSystem(
        measure=payload["measure"],
        epsilon=float(payload["epsilon"]),
        use_index=payload["use_index"],
    )
    for name, documents in payload["collections"].items():
        collection = system.database.create_collection(name)
        for key, text in _collection_documents(documents):
            collection.add_document(key, text)
    if payload["seos"] is not None:
        seos = {
            relation: seo_from_dict(entry)
            for relation, entry in payload["seos"].items()
        }
        isa_seo = seos.get(Ontology.ISA)
        if isa_seo is None:
            raise ServingError("snapshot payload lacks an isa SEO")
        system.context = SeoConditionContext(
            isa_seo,
            seos=seos,
            type_system=system.type_system,
            typing=system.typing,
        )
        system.executor = QueryExecutor(
            system.database, system.context, use_index=system.use_index
        )
    else:
        system.degraded = bool(payload.get("degraded", True))
        system.executor = QueryExecutor(
            system.database,
            None,
            exact_fallback=True,
            use_index=system.use_index,
        )
    return system
