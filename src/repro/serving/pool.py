"""Long-lived worker processes answering queries from a snapshot.

Workers are plain ``multiprocessing.Pool`` processes initialized once
with the system snapshot (inherited copy-on-write under fork, rebuilt
from the payload under spawn) and reused for every query after that —
the per-query cost is one small task dict and one report dict, never a
re-load of the system.

The cross-process discipline mirrors :mod:`repro.parallel`:

* exceptions never cross the boundary raw — a worker returns a typed
  failure marker and the parent reconstructs the matching
  :class:`~repro.errors.ReproError` subclass deterministically;
* guards are cooperative — each task carries the remaining
  deadline/step/result budget and the parent re-ticks its own guard
  with the steps the workers consumed;
* observability is plain data — a worker returns its span tree and a
  metrics-registry snapshot (then resets its registry, so consecutive
  snapshots are deltas), and the parent re-attaches/absorbs them.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional

from .. import errors as _errors
from ..errors import (
    PoisonTaskError,
    QueryTimeoutError,
    ReproError,
    ResourceExhaustedError,
    ServingError,
    WorkerCrashError,
)
from ..guard import ResourceGuard
from ..obs import NULL_OBSERVABILITY, Observability
from ..obs.context import RequestContext, activate
from ..obs.metrics import REGISTRY as METRICS
from ..obs.window import WINDOWS
from .snapshot import FORK, SystemSnapshot, restore_payload

#: Worker-process state: the restored/inherited system, set by the
#: pool initializer (one system per worker process).
_WORKER: Dict[str, Any] = {"system": None}

#: Parent-side handoff for fork pools: the initializer in a forked child
#: reads the live system from here (inherited through copy-on-write).
_FORK_SYSTEM: Any = None


def _initialize_worker(mode: str, payload: Optional[Dict[str, Any]]) -> None:
    """Pool initializer: install the snapshot system in this process."""
    if mode == FORK:
        system = _FORK_SYSTEM
    else:
        system = restore_payload(payload)
    # Workers never write sink files and start from a clean registry:
    # their metrics travel back to the parent as snapshot deltas.
    system.set_observability(NULL_OBSERVABILITY)
    METRICS.reset()
    WINDOWS.reset()
    _WORKER["system"] = system


def _guard_from_task(task: Dict[str, Any]) -> Optional[ResourceGuard]:
    spec = task.get("guard")
    if not spec:
        return None
    deadline, max_steps, max_results = spec
    if deadline is None and max_steps is None and max_results is None:
        return None
    return ResourceGuard(
        deadline_seconds=deadline, max_results=max_results, max_steps=max_steps
    )


def run_query_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: execute one textual query from the snapshot.

    Returns ``{"report": ..., "seconds": ..., "steps": ...,
    "stage_steps": ..., "metrics": ...}`` on success or a failure marker
    ``{"failure": (kind, ...), "seconds": ...}`` when the guard trips or
    the query errors.
    """
    system = _WORKER["system"]
    pid = os.getpid()
    if system is None:  # pragma: no cover - initializer always runs first
        return {
            "failure": ("error", "ServingError", "worker not initialized"),
            "worker_pid": pid,
        }
    guard = _guard_from_task(task)
    # Re-activate the request identity the parent minted, so the spans,
    # report and window slots this worker produces join the same
    # cross-process timeline.
    context = RequestContext.from_wire(task.get("request"))
    request_id = context.request_id if context is not None else None
    if task.get("trace"):
        system.set_observability(Observability(enabled=True))
    else:
        system.set_observability(NULL_OBSERVABILITY)
    executor, _degraded = system._query_executor()
    previous_guard = executor.guard
    executor.guard = guard
    started = time.perf_counter()
    try:
        with activate(context):
            report = system.query(
                task["collection"],
                task["query"],
                sl_variables=tuple(task.get("sl_variables", ())),
                right_collection=task.get("right_collection"),
                document_keys=task.get("document_keys"),
            )
    except QueryTimeoutError as exc:
        return {
            "failure": ("timeout", task["query"], exc.deadline, exc.elapsed),
            "seconds": time.perf_counter() - started,
            "steps": guard.steps if guard is not None else 0,
            "stage_steps": guard.stage_steps if guard is not None else {},
            "worker_pid": pid,
            "request_id": request_id,
        }
    except ResourceExhaustedError as exc:
        return {
            "failure": ("exhausted", str(exc)),
            "seconds": time.perf_counter() - started,
            "steps": guard.steps if guard is not None else 0,
            "stage_steps": guard.stage_steps if guard is not None else {},
            "worker_pid": pid,
            "request_id": request_id,
        }
    except ReproError as exc:
        return {
            "failure": ("error", type(exc).__name__, str(exc)),
            "seconds": time.perf_counter() - started,
            "steps": guard.steps if guard is not None else 0,
            "stage_steps": guard.stage_steps if guard is not None else {},
            "worker_pid": pid,
            "request_id": request_id,
        }
    finally:
        executor.guard = previous_guard
    outcome = {
        # Compact wire form: default-valued scalars omitted, results as
        # serialized text the parent re-parses only if it touches
        # ``.results`` (the batch path never does).
        "report": report.to_dict(include_results=True, compact=True),
        "seconds": time.perf_counter() - started,
        "steps": guard.steps if guard is not None else 0,
        "stage_steps": guard.stage_steps if guard is not None else {},
        "worker_pid": pid,
        "request_id": request_id,
    }
    if task.get("collect_metrics"):
        outcome["metrics"] = METRICS.snapshot()
        METRICS.reset()
        # Rolling-window slots travel the same delta discipline: ship
        # and clear, so the parent's absorb sees each second once.
        outcome["windows"] = WINDOWS.snapshot(reset=True)
    return outcome


def _attach_context(
    exc: ReproError, worker_pid: Optional[int], query: Optional[str]
) -> ReproError:
    """Pin the originating worker pid and query text onto ``exc``."""
    exc.worker_pid = worker_pid
    exc.worker_query = query
    return exc


def reconstruct_failure(
    failure,
    worker_pid: Optional[int] = None,
    query: Optional[str] = None,
) -> ReproError:
    """The parent-side exception for a worker failure marker.

    Every reconstructed (or wrapped) exception carries the worker pid
    and the query text as ``worker_pid`` / ``worker_query`` attributes,
    and the worker's original message survives verbatim — including for
    :class:`ReproError` subclasses whose ``__init__`` takes several
    arguments or rewrites its message (those are rebuilt without
    invoking the custom initializer).
    """
    kind = failure[0]
    if kind == "timeout":
        return _attach_context(
            QueryTimeoutError(
                f"query {failure[1]!r}", float(failure[2]), float(failure[3])
            ),
            worker_pid,
            query if query is not None else failure[1],
        )
    if kind == "exhausted":
        return _attach_context(
            ResourceExhaustedError(failure[1]), worker_pid, query
        )
    if kind == "crash":
        return _attach_context(
            WorkerCrashError(failure[1], int(failure[2]), failure[3]),
            worker_pid,
            failure[1],
        )
    if kind == "poison":
        return _attach_context(
            PoisonTaskError(failure[1], int(failure[2])), worker_pid, failure[1]
        )
    # Generic: restore the original class by name when it is a known
    # ReproError, preserving the worker's message verbatim; wrap in
    # ServingError only for unknown classes.
    name, message = failure[1], failure[2]
    exc_class = getattr(_errors, name, None)
    exc: Optional[ReproError] = None
    if isinstance(exc_class, type) and issubclass(exc_class, ReproError):
        try:
            candidate = exc_class(message)
            if str(candidate) == message:
                exc = candidate
        except TypeError:
            pass
        if exc is None:
            # Multi-arg or message-rewriting __init__ (e.g.
            # DocumentTooLargeError, HierarchyCycleError): rebuild the
            # instance without running it, so the original message is
            # preserved instead of mangled or replaced by a generic
            # wrapper.  Class-specific attributes are absent — callers
            # needing them must run in-process.
            exc = exc_class.__new__(exc_class)
            Exception.__init__(exc, message)
    if exc is None:
        exc = ServingError(f"worker query failed ({name}): {message}")
    return _attach_context(exc, worker_pid, query)


class WorkerPool:
    """A persistent pool of query workers over one system snapshot."""

    def __init__(self, snapshot: SystemSnapshot, workers: int) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self.snapshot = snapshot
        self.workers = workers
        # The snapshot mode picks the *transport* (inheritance vs payload);
        # the start method is always fork where the platform has it — a
        # pickle snapshot under fork still exercises the payload path,
        # which is how the fallback is tested on fork platforms.
        start_method = (
            FORK if FORK in multiprocessing.get_all_start_methods() else "spawn"
        )
        context = multiprocessing.get_context(start_method)
        if snapshot.mode == FORK:
            # Workers fork at Pool() construction, inheriting the live
            # system via this module global (copy-on-write).  The parent
            # heap is frozen into the permanent GC generation across the
            # fork: the children inherit that frozen state, so a worker's
            # collector never traverses the shared system — without this,
            # the first full collection in a worker walks every inherited
            # object, dirties each copy-on-write page it visits, and
            # shows up as a several-hundred-ms stall on an early query.
            # The parent unfreezes immediately; only the children keep
            # the inherited heap permanent (they never drop it anyway).
            global _FORK_SYSTEM
            _FORK_SYSTEM = snapshot.system
            gc.freeze()
            try:
                self._pool = context.Pool(
                    processes=workers,
                    initializer=_initialize_worker,
                    initargs=(snapshot.mode, None),
                )
            finally:
                _FORK_SYSTEM = None
                gc.unfreeze()
        else:
            self._pool = context.Pool(
                processes=workers,
                initializer=_initialize_worker,
                initargs=(snapshot.mode, snapshot.payload),
            )
        self._closed = False

    def run_batch(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Execute ``tasks`` across the pool, outcomes in task order."""
        if self._closed:
            raise ServingError("the worker pool is closed")
        return self._pool.map(run_query_task, tasks)

    def close(self, timeout: float = 5.0) -> None:
        """Shut the workers down (idempotent).

        Graceful first: stop accepting work, give the workers
        ``timeout`` seconds to drain and exit, then terminate whatever
        is left — so an interrupted ``serve`` run neither hangs on a
        stuck worker nor hard-kills ones mid-write.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        deadline = time.perf_counter() + max(0.0, timeout)
        for process in getattr(self._pool, "_pool", []):
            process.join(max(0.0, deadline - time.perf_counter()))
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WorkerPool({self.workers} workers, {self.snapshot.mode} "
            f"snapshot, {state})"
        )
