"""Conference/venue pools with short and long surface forms.

Mirrors the paper's Section 2.2 observation: DBLP stores "SIGMOD
Conference" while the SIGMOD proceedings pages spell out the full name.
Each venue carries a *category* (database conference, data mining
conference, ...) that the lexicon turns into isa edges, which is what the
workload's isa conditions exploit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class VenueSpec:
    """One venue: DBLP short form, proceedings long form, isa category."""

    key: str
    short: str
    long: str
    category: str


#: The venue universe; categories sit below "conference" in the lexicon.
VENUE_POOL: Tuple[VenueSpec, ...] = (
    VenueSpec("sigmod", "SIGMOD Conference",
              "ACM SIGMOD International Conference on Management of Data",
              "database conference"),
    VenueSpec("vldb", "VLDB",
              "International Conference on Very Large Data Bases",
              "database conference"),
    VenueSpec("pods", "PODS",
              "ACM SIGMOD-SIGACT-SIGART Symposium on Principles of Database Systems",
              "database conference"),
    VenueSpec("icde", "ICDE",
              "IEEE International Conference on Data Engineering",
              "database conference"),
    VenueSpec("edbt", "EDBT",
              "International Conference on Extending Database Technology",
              "database conference"),
    VenueSpec("icdt", "ICDT",
              "International Conference on Database Theory",
              "database conference"),
    VenueSpec("kdd", "KDD",
              "ACM SIGKDD International Conference on Knowledge Discovery and Data Mining",
              "data mining conference"),
    VenueSpec("icdm", "ICDM",
              "IEEE International Conference on Data Mining",
              "data mining conference"),
    VenueSpec("sigir", "SIGIR",
              "International ACM SIGIR Conference on Research and Development in Information Retrieval",
              "information retrieval conference"),
    VenueSpec("cikm", "CIKM",
              "International Conference on Information and Knowledge Management",
              "information retrieval conference"),
    VenueSpec("www", "WWW",
              "International World Wide Web Conference",
              "web conference"),
    VenueSpec("icwe", "ICWE",
              "International Conference on Web Engineering",
              "web conference"),
    VenueSpec("icml", "ICML",
              "International Conference on Machine Learning",
              "machine learning conference"),
    VenueSpec("nips", "NIPS",
              "Conference on Neural Information Processing Systems",
              "machine learning conference"),
    VenueSpec("sosp", "SOSP",
              "ACM Symposium on Operating Systems Principles",
              "systems conference"),
    VenueSpec("osdi", "OSDI",
              "USENIX Symposium on Operating Systems Design and Implementation",
              "systems conference"),
)

#: category -> parent concept, consumed by the lexicon rules.
VENUE_CATEGORIES: Dict[str, str] = {
    "database conference": "conference",
    "data mining conference": "conference",
    "information retrieval conference": "conference",
    "web conference": "conference",
    "machine learning conference": "conference",
    "systems conference": "conference",
}


def venue_by_key(key: str) -> VenueSpec:
    for venue in VENUE_POOL:
        if venue.key == key:
            return venue
    raise KeyError(f"unknown venue {key!r}")


def venue_surface(
    venue: VenueSpec, style: str, rng: Optional[random.Random] = None
) -> str:
    """Render a venue surface form: ``short``, ``long`` or ``typo``."""
    if style == "short":
        return venue.short
    if style == "long":
        return venue.long
    if style == "typo":
        base = venue.short
        rng = rng if rng is not None else random.Random(0)
        position = rng.randrange(1, len(base) - 1)
        return base[:position] + base[position] + base[position:]
    raise ValueError(f"unknown venue style {style!r}")
