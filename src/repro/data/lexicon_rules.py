"""Lexicon rules for the synthetic corpora.

The paper's Ontology Maker combines WordNet with "user-specified rules";
for the bibliographic corpora those rules are the venue taxonomy: every
venue's short and long surface forms are isa its category ("SIGMOD
Conference" isa "database conference" isa "conference").  The isa
conditions of the experiment workload traverse exactly these edges.
"""

from __future__ import annotations

from ..ontology.lexicon import Lexicon, bibliography_lexicon
from .venues import VENUE_CATEGORIES, VENUE_POOL


def corpus_lexicon() -> Lexicon:
    """The embedded lexicon extended with the venue taxonomy."""
    lexicon = bibliography_lexicon()
    for category, parent in VENUE_CATEGORIES.items():
        lexicon.add_hypernym(category, parent)
    for venue in VENUE_POOL:
        lexicon.add_hypernym(venue.short, venue.category)
        lexicon.add_hypernym(venue.long, venue.category)
        lexicon.add_synonyms(venue.short, venue.long)
    return lexicon
