"""Experiment data: schema-faithful synthetic DBLP / SIGMOD generators.

The paper evaluates on the DBLP bibliography and the SIGMOD XML
proceedings pages.  Neither dataset can be shipped here, so this package
generates seeded synthetic corpora with the same schemas and — crucially —
a *ground-truth registry*: every author, venue and paper is an entity with
known surface-form variants ("Jeffrey D. Ullman" / "Jeffrey Ullman" /
"J. Ullman" / typos), so the precision/recall of any query answer can be
computed exactly instead of by the paper's manual inspection.

Entry points: :func:`~repro.data.ground_truth.generate_corpus` builds the
entity/paper world; :func:`~repro.data.dblp.render_dblp` and
:func:`~repro.data.sigmod.render_sigmod_pages` serialise it in each
source's schema.
"""

from .dblp import render_dblp
from .ground_truth import (
    AuthorEntity,
    Corpus,
    PaperRecord,
    VenueEntity,
    generate_corpus,
)
from .names import NameVariantGenerator
from .sigmod import render_sigmod_pages
from .titles import TitleGenerator
from .venues import VENUE_POOL, VenueSpec

__all__ = [
    "AuthorEntity",
    "Corpus",
    "NameVariantGenerator",
    "PaperRecord",
    "TitleGenerator",
    "VENUE_POOL",
    "VenueEntity",
    "VenueSpec",
    "generate_corpus",
    "render_dblp",
    "render_sigmod_pages",
]
