"""The paper's own sample instances (Figures 1 and 2), as canned XML.

Tests, examples and interactive sessions all need the paper's running
example; keeping one canonical copy here avoids drift between them.
"""

#: Figure 1 — a small DBLP fragment (the three papers the paper discusses).
DBLP_FIGURE_1 = """
<dblp>
  <inproceedings key="CiancariniVX99">
    <author>Paolo Ciancarini</author>
    <author>Fabio Vitali</author>
    <title>Managing Complex Documents Over the WWW</title>
    <year>1999</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="AgrawalCN00">
    <author>Sanjay Agrawal</author>
    <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000</title>
    <year>2000</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="DamianiVPS00">
    <author>Ernesto Damiani</author>
    <author>Pierangela Samarati</author>
    <title>Securing XML Documents</title>
    <year>2000</year>
    <booktitle>EDBT</booktitle>
  </inproceedings>
</dblp>
"""

#: Figure 2 — the SIGMOD proceedings page (different schema, initials,
#: spelled-out conference name, trailing title periods).
SIGMOD_FIGURE_2 = """
<ProceedingsPage>
  <conference>ACM SIGMOD International Conference on Management of Data</conference>
  <confYear>2000</confYear>
  <articles>
    <article>
      <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000.</title>
      <author>S. Agrawal</author>
    </article>
    <article>
      <title>Securing XML Documents.</title>
      <author>E. Damiani</author>
      <author>P. Samarati</author>
    </article>
  </articles>
</ProceedingsPage>
"""

#: Example 9/10's interoperation constraints between the two sources
#: (source names match :func:`sample_system`'s instance names).
FIGURE_10_CONSTRAINTS = (
    "booktitle:dblp = conference:sigmod",
    "year:dblp = confYear:sigmod",
)


def sample_system(measure: str = "levenshtein", epsilon: float = 3.0):
    """A ready-built TossSystem over the paper's Figure 1/2 instances.

    >>> system = sample_system()
    >>> report = system.query("dblp", 'inproceedings(year = "2000")')
    """
    from ..core.system import TossSystem

    system = TossSystem(measure=measure, epsilon=epsilon)
    system.add_instance("dblp", DBLP_FIGURE_1)
    system.add_instance("sigmod", SIGMOD_FIGURE_2)
    for constraint in FIGURE_10_CONSTRAINTS:
        system.add_constraint(constraint)
    system.build()
    return system
