"""Render a corpus in DBLP's XML schema.

The output matches the proceedings slice of ``dblp.xml`` the paper used:
a ``<dblp>`` root with ``<inproceedings key="...">`` records carrying
author(s), title, pages, year, booktitle and url — short venue forms,
mostly full author names (DBLP spells first names out), with the variant
profile injecting the spelling noise the similarity machinery targets.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, Tuple

from ..xmldb.model import XmlNode
from .ground_truth import Corpus
from .names import NameVariantGenerator
from .venues import venue_surface

#: DBLP-side author variant weights: full names dominate, with noise.
DBLP_VARIANT_KINDS: Tuple[Tuple[str, float], ...] = (
    ("full", 0.55),
    ("no_middle", 0.15),
    ("middle_initial", 0.15),
    ("joined", 0.08),
    ("typo", 0.07),
)


def render_dblp(
    corpus: Corpus,
    seed: int = 0,
    paper_keys: Optional[Iterable[str]] = None,
    venue_typo_rate: float = 0.03,
) -> XmlNode:
    """Serialise (a subset of) the corpus as one DBLP document.

    Every rendered author surface is recorded in the corpus so the
    relevance oracle stays exact.  ``paper_keys`` selects a subset (used
    by the data-size sweeps); default is every paper.
    """
    rng = random.Random(seed + 10)
    names = NameVariantGenerator(seed=seed + 11, variant_kinds=DBLP_VARIANT_KINDS)

    wanted = set(paper_keys) if paper_keys is not None else None
    root = XmlNode("dblp")
    for paper in corpus.papers:
        if wanted is not None and paper.key not in wanted:
            continue
        record = root.element("inproceedings", key=paper.key)
        for author_id in paper.author_ids:
            surface = names.variant(corpus.authors[author_id].name)
            corpus.record_surface(author_id, surface)
            record.element("author", surface)
        record.element("title", paper.title)
        record.element("pages", paper.pages)
        record.element("year", str(paper.year))
        venue = corpus.venues[paper.venue_key].spec
        style = "typo" if rng.random() < venue_typo_rate else "short"
        record.element("booktitle", venue_surface(venue, style, rng))
        record.element("url", f"db/conf/{venue.key}/{venue.key}{paper.year}.html#{paper.key}")
    return root.renumber()
