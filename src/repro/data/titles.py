"""Paper-title generation from a small domain phrase grammar.

Titles are ``<adjective> <technique> <connective> <subject>`` phrases
("Efficient Indexing of Streaming XML Data"), deterministic under a seed,
with optional punctuation jitter (the SIGMOD pages' trailing periods that
Example 13's similarity join has to bridge).
"""

from __future__ import annotations

import random
from typing import Tuple

ADJECTIVES: Tuple[str, ...] = (
    "Efficient", "Scalable", "Adaptive", "Incremental", "Approximate",
    "Distributed", "Parallel", "Secure", "Robust", "Optimal",
    "Declarative", "Semantic", "Probabilistic", "Dynamic", "Holistic",
)

TECHNIQUES: Tuple[str, ...] = (
    "Indexing", "Query Processing", "View Maintenance", "Join Processing",
    "Schema Matching", "Data Integration", "Query Optimization",
    "Access Control", "Tree Pattern Matching", "Similarity Search",
    "Duplicate Detection", "Cardinality Estimation", "Data Cleaning",
    "Keyword Search", "Load Shedding", "Sampling",
)

CONNECTIVES: Tuple[str, ...] = ("for", "of", "over", "in", "with")

SUBJECTS: Tuple[str, ...] = (
    "XML Databases", "Semistructured Data", "Streaming Data",
    "Relational Databases", "Data Warehouses", "Sensor Networks",
    "Web Services", "Peer-to-Peer Systems", "Graph Databases",
    "Moving Objects", "Text Collections", "Scientific Workflows",
    "Spatial Data", "Temporal Databases", "Ontologies",
    "Probabilistic Databases",
)


class TitleGenerator:
    """Seeded title sampling; occasionally reuses phrases to create near-duplicates."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def title(self) -> str:
        return " ".join(
            (
                self._rng.choice(ADJECTIVES),
                self._rng.choice(TECHNIQUES),
                self._rng.choice(CONNECTIVES),
                self._rng.choice(SUBJECTS),
            )
        )

    def variant(self, title: str) -> str:
        """A lightly perturbed rendering of an existing title.

        Used by the SIGMOD renderer: the same paper's title may gain a
        trailing period or lose a word's capitalisation across sources.
        """
        choice = self._rng.random()
        if choice < 0.5:
            return title + "."
        if choice < 0.75:
            words = title.split()
            words[-1] = words[-1].lower()
            return " ".join(words)
        return title
