"""Render a corpus as SIGMOD-style XML proceedings pages.

The paper's second source is the SIGMOD Record proceedings pages: one
document per proceedings, a spelled-out conference name, and author names
"stored differently: their first names are stored in full in DBLP but only
initials are stored in SIGMOD" (Section 2.2).  The renderer reproduces
that shape — page-level conference/confYear/volume/number metadata over an
``articles`` list (Figure 2 / Figure 9(a)) — with an initials-heavy author
variant profile and lightly perturbed titles.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..xmldb.model import XmlNode
from .ground_truth import Corpus
from .names import NameVariantGenerator
from .titles import TitleGenerator

#: SIGMOD-side author variants: initials dominate.
SIGMOD_VARIANT_KINDS: Tuple[Tuple[str, float], ...] = (
    ("initials", 0.35),
    ("first_initial", 0.30),
    ("middle_initial", 0.15),
    ("full", 0.10),
    ("joined", 0.05),
    ("typo", 0.05),
)

_MONTHS = ("March", "June", "September", "December")
_LOCATIONS = (
    "San Diego, California", "Seattle, Washington", "Paris, France",
    "Santa Barbara, California", "Madison, Wisconsin", "Dallas, Texas",
)


def render_sigmod_pages(
    corpus: Corpus,
    seed: int = 0,
    venue_keys: Sequence[str] = ("sigmod",),
    paper_keys: Optional[Iterable[str]] = None,
) -> List[XmlNode]:
    """One ProceedingsPage document per (venue, year) with matching papers.

    Only papers of the listed venues are rendered (the real SIGMOD pages
    obviously contain only SIGMOD papers).  Surfaces are recorded in the
    corpus for the oracle.
    """
    rng = random.Random(seed + 20)
    names = NameVariantGenerator(seed=seed + 21, variant_kinds=SIGMOD_VARIANT_KINDS)
    titles = TitleGenerator(seed=seed + 22)

    wanted = set(paper_keys) if paper_keys is not None else None
    by_page: Dict[Tuple[str, int], List] = {}
    for paper in corpus.papers:
        if wanted is not None and paper.key not in wanted:
            continue
        if paper.venue_key not in venue_keys:
            continue
        by_page.setdefault((paper.venue_key, paper.year), []).append(paper)

    pages: List[XmlNode] = []
    for (venue_key, year), papers in sorted(by_page.items()):
        venue = corpus.venues[venue_key].spec
        page = XmlNode("ProceedingsPage")
        page.element("conference", venue.long)
        page.element("confYear", str(year))
        page.element("location", rng.choice(_LOCATIONS))
        page.element("month", rng.choice(_MONTHS))
        page.element("volume", str(rng.randint(20, 32)))
        page.element("number", str(rng.randint(1, 4)))
        articles = page.element("articles")
        for paper in papers:
            article = articles.element("article", key=paper.key)
            article.element("title", titles.variant(paper.title))
            for position, author_id in enumerate(paper.author_ids):
                surface = names.variant(corpus.authors[author_id].name)
                corpus.record_surface(author_id, surface)
                article.element("author", surface, position=f"{position:02d}")
            first, _, last = paper.pages.partition("-")
            article.element("initPage", first)
            article.element("endPage", last)
        pages.append(page.renumber())
    return pages
