"""Author-name pools and surface-variant generation.

The pools deliberately contain *confusable* names — pairs of distinct
people within small edit distance ("Marco Ferrari" vs "Mauro Ferrari",
the paper's own Section 2.2 example) — so that similarity-based matching
has genuine false positives and TOSS's precision can fall below 1.0 the
way Figure 15(a) shows.

Variant kinds (modelled on the paper's examples):

====================  ==========================================  =========
kind                  example for "Jeffrey David Ullman"          Lev. dist
====================  ==========================================  =========
``full``              Jeffrey David Ullman                        0
``no_middle``         Jeffrey Ullman                              ~6 (len)
``middle_initial``    Jeffrey D. Ullman                           ~4
``initials``          J. D. Ullman                                large
``first_initial``     J. Ullman                                   large
``joined``            JeffreyDavid Ullman (space slip)            1
``typo``              Jeffrey David Ullmann                       1
====================  ==========================================  =========

Distances matter: at the paper's thresholds (epsilon = 2 or 3 with
Levenshtein), ``joined``/``typo`` variants merge at both, short middle
drops merge only at the higher threshold, and ``initials`` forms stay out
of reach — producing exactly the TAX < TOSS(2) < TOSS(3) recall gradient.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: First names; several confusable clusters are adjacent.
FIRST_NAMES: Tuple[str, ...] = (
    "Marco", "Mauro", "Mario", "Maria",
    "Gian", "Gianni", "Giana",
    "Jeffrey", "Jeffery", "Geoffrey",
    "Ann", "Anna", "Anne",
    "Jan", "Ian", "Juan",
    "Peter", "Petra", "Pedro",
    "David", "Davide",
    "Susan", "Suzan",
    "Michael", "Michaela", "Michel", "Michele",
    "Thomas", "Tomas",
    "Laura", "Lara",
    "Paolo", "Paola", "Pablo",
    "Elena", "Elene",
    "Victor", "Viktor",
    "Sara", "Sarah",
    "Rita", "Rina",
    "Hugo", "Hubert",
    "Yuri", "Yuki",
    "Chen", "Wei", "Ling", "Ming",
)

#: Middle names (used as-is or as initials).  Mostly length 4: turning a
#: length-4 middle into its initial is a 3-edit change, which is exactly
#: the step the epsilon = 3 threshold catches and epsilon = 2 misses —
#: the source of the paper's recall gap between the two TOSS settings.
MIDDLE_NAMES: Tuple[str, ...] = (
    "Paul", "Rosa", "Dale", "Gino", "Otto", "Hans",
    "Igor", "Kurt", "Nina", "Lee", "Ann", "Kim",
)

#: Last names; again with confusable clusters.
LAST_NAMES: Tuple[str, ...] = (
    "Ferrari", "Ferrara", "Ferraro",
    "Ullman", "Ullmann", "Ulman",
    "Muller", "Mueller", "Miller",
    "Smith", "Smyth", "Smithe",
    "Chen", "Cheng", "Chang", "Zhang", "Zhong",
    "Lee", "Li", "Lie",
    "Garcia", "Gracia",
    "Johnson", "Jonson",
    "Brown", "Braun",
    "Rossi", "Rosso", "Russo",
    "Kumar", "Kumari",
    "Tanaka", "Tanake",
    "Novak", "Nowak",
    "Petersen", "Peterson", "Pedersen",
    "Silva", "Salva",
    "Meyer", "Mayer", "Maier",
    "Vitali", "Vitale",
    "Bertino", "Bertini",
    "Ciancarini", "Ciancarani",
    "Subrahmanian", "Subramanian",
)

#: Variant kinds with default sampling weights (full form dominates).
VARIANT_KINDS: Tuple[Tuple[str, float], ...] = (
    ("full", 0.40),
    ("no_middle", 0.15),
    ("middle_initial", 0.15),
    ("initials", 0.08),
    ("first_initial", 0.07),
    ("joined", 0.08),
    ("typo", 0.07),
)


@dataclass(frozen=True)
class NameParts:
    """A person's canonical name components."""

    first: str
    middle: Optional[str]
    last: str

    @property
    def canonical(self) -> str:
        if self.middle:
            return f"{self.first} {self.middle} {self.last}"
        return f"{self.first} {self.last}"


def _typo(text: str, rng: random.Random) -> str:
    """One character-level slip: substitution, deletion or duplication."""
    if len(text) < 4:
        return text + "e"
    position = rng.randrange(1, len(text) - 1)
    choice = rng.random()
    if choice < 0.4:  # substitute with a neighbouring letter
        replacement = chr(((ord(text[position].lower()) - 97 + 1) % 26) + 97)
        return text[:position] + replacement + text[position + 1 :]
    if choice < 0.7:  # delete
        return text[:position] + text[position + 1 :]
    return text[:position] + text[position] + text[position:]  # duplicate


class NameVariantGenerator:
    """Deterministic canonical-name and variant sampling."""

    def __init__(self, seed: int = 0, variant_kinds=VARIANT_KINDS) -> None:
        self._rng = random.Random(seed)
        self._kinds = [kind for kind, _ in variant_kinds]
        self._weights = [weight for _, weight in variant_kinds]

    def sample_name(self) -> NameParts:
        """A fresh canonical name (middle name present ~50% of the time)."""
        middle = (
            self._rng.choice(MIDDLE_NAMES) if self._rng.random() < 0.5 else None
        )
        return NameParts(
            self._rng.choice(FIRST_NAMES), middle, self._rng.choice(LAST_NAMES)
        )

    def variant(self, name: NameParts, kind: Optional[str] = None) -> str:
        """Render one surface form of a canonical name.

        ``kind=None`` samples a kind from the configured weights.
        """
        if kind is None:
            kind = self._rng.choices(self._kinds, weights=self._weights, k=1)[0]
        first, middle, last = name.first, name.middle, name.last
        if kind == "full":
            return name.canonical
        if kind == "no_middle":
            return f"{first} {last}"
        if kind == "middle_initial":
            if middle:
                return f"{first} {middle[0]}. {last}"
            return f"{first} {last}"
        if kind == "initials":
            if middle:
                return f"{first[0]}. {middle[0]}. {last}"
            return f"{first[0]}. {last}"
        if kind == "first_initial":
            return f"{first[0]}. {last}"
        if kind == "joined":
            if middle:
                return f"{first}{middle} {last}"
            return f"{first}{last}"
        if kind == "typo":
            return _typo(name.canonical, self._rng)
        raise ValueError(f"unknown variant kind {kind!r}")

    def all_variants(self, name: NameParts) -> List[str]:
        """One rendering of every deterministic variant kind (no typos)."""
        forms = []
        for kind in ("full", "no_middle", "middle_initial", "initials",
                     "first_initial", "joined"):
            form = self.variant(name, kind)
            if form not in forms:
                forms.append(form)
        return forms
