"""The entity world behind the synthetic corpora, with a relevance oracle.

The paper computes precision/recall "by checking against semantically
correct results generated manually".  Here the generator *is* the ground
truth: every paper references author entities and a venue entity, every
rendered string is a recorded surface form of its entity, and the oracle
answers "which papers are semantically relevant to this query" exactly.

Conventions (chosen so the baselines behave like the paper's):

* an author query targets a *surface form* S; the semantically correct
  papers are those authored by any entity for which S is a legitimate
  variant (so exact matching never returns a wrong paper — TAX keeps
  100% precision — while similarity matching can, via confusable names);
* a venue-category query's correct papers are those whose venue belongs
  to the category, whatever surface form the record uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .names import NameParts, NameVariantGenerator
from .titles import TitleGenerator
from .venues import VENUE_POOL, VenueSpec

YEAR_RANGE = (1994, 2003)


@dataclass
class AuthorEntity:
    """One real-world author with a canonical name and known variants."""

    entity_id: int
    name: NameParts
    #: Every deterministic variant of the canonical name.
    variants: FrozenSet[str]
    #: Surface forms actually rendered into some document (grows at render time).
    surfaces: Set[str] = field(default_factory=set)

    @property
    def canonical(self) -> str:
        return self.name.canonical


@dataclass(frozen=True)
class VenueEntity:
    """One venue; thin wrapper keeping the spec and an entity id."""

    entity_id: int
    spec: VenueSpec

    @property
    def category(self) -> str:
        return self.spec.category


@dataclass
class PaperRecord:
    """One paper: the unit precision/recall is computed over."""

    key: str
    title: str
    author_ids: Tuple[int, ...]
    venue_key: str
    year: int
    pages: str


class Corpus:
    """Entities + papers + surface bookkeeping + the relevance oracle."""

    def __init__(
        self,
        authors: Dict[int, AuthorEntity],
        venues: Dict[str, VenueEntity],
        papers: List[PaperRecord],
        seed: int,
    ) -> None:
        self.authors = authors
        self.venues = venues
        self.papers = papers
        self.seed = seed
        self._papers_by_key = {paper.key: paper for paper in papers}
        self._variant_index: Dict[str, Set[int]] = {}
        for author in authors.values():
            for variant in author.variants:
                self._variant_index.setdefault(variant, set()).add(author.entity_id)

    # -- bookkeeping used by the renderers -----------------------------------

    def record_surface(self, author_id: int, surface: str) -> None:
        """Register a rendered surface form for an author entity."""
        self.authors[author_id].surfaces.add(surface)
        self._variant_index.setdefault(surface, set()).add(author_id)

    def paper(self, key: str) -> PaperRecord:
        return self._papers_by_key[key]

    def paper_keys(self) -> List[str]:
        return [paper.key for paper in self.papers]

    # -- the relevance oracle ----------------------------------------------------

    def entities_for_surface(self, surface: str) -> FrozenSet[int]:
        """Author entities for which ``surface`` is a legitimate form."""
        return frozenset(self._variant_index.get(surface, frozenset()))

    def relevant_papers(
        self,
        author_surface: Optional[str] = None,
        author_id: Optional[int] = None,
        venue_category: Optional[str] = None,
        venue_key: Optional[str] = None,
        year: Optional[int] = None,
        year_range: Optional[Tuple[int, int]] = None,
    ) -> FrozenSet[str]:
        """Paper keys satisfying the conjunction of the given criteria."""
        keys: Set[str] = set(self._papers_by_key)
        if author_surface is not None:
            entities = self.entities_for_surface(author_surface)
            keys &= {
                paper.key
                for paper in self.papers
                if entities.intersection(paper.author_ids)
            }
        if author_id is not None:
            keys &= {
                paper.key for paper in self.papers if author_id in paper.author_ids
            }
        if venue_category is not None:
            keys &= {
                paper.key
                for paper in self.papers
                if self.venues[paper.venue_key].category == venue_category
            }
        if venue_key is not None:
            keys &= {paper.key for paper in self.papers if paper.venue_key == venue_key}
        if year is not None:
            keys &= {paper.key for paper in self.papers if paper.year == year}
        if year_range is not None:
            low, high = year_range
            keys &= {
                paper.key for paper in self.papers if low <= paper.year <= high
            }
        return frozenset(keys)

    def __repr__(self) -> str:
        return (
            f"Corpus({len(self.papers)} papers, {len(self.authors)} authors, "
            f"{len(self.venues)} venues, seed={self.seed})"
        )


def generate_corpus(
    n_papers: int,
    n_authors: Optional[int] = None,
    seed: int = 0,
    venue_keys: Optional[Sequence[str]] = None,
    authors_per_paper: Tuple[int, int] = (1, 3),
) -> Corpus:
    """Build a seeded entity world.

    ``n_authors`` defaults to roughly one author entity per 2.5 papers so
    that most entities author several papers (recall has something to
    miss).  ``venue_keys`` restricts the venue universe.
    """
    if n_papers <= 0:
        raise ValueError("n_papers must be positive")
    rng = random.Random(seed)
    names = NameVariantGenerator(seed=seed + 1)
    titles = TitleGenerator(seed=seed + 2)

    if n_authors is None:
        n_authors = max(3, int(n_papers / 2.5))
    authors: Dict[int, AuthorEntity] = {}
    seen_canonicals: Set[str] = set()
    entity_id = 0
    while len(authors) < n_authors:
        name = names.sample_name()
        if name.canonical in seen_canonicals:
            continue
        seen_canonicals.add(name.canonical)
        authors[entity_id] = AuthorEntity(
            entity_id, name, frozenset(names.all_variants(name))
        )
        entity_id += 1

    pool = [v for v in VENUE_POOL if venue_keys is None or v.key in venue_keys]
    if not pool:
        raise ValueError("venue_keys excludes every known venue")
    venues = {
        spec.key: VenueEntity(1000 + index, spec) for index, spec in enumerate(pool)
    }

    papers: List[PaperRecord] = []
    author_ids = list(authors)
    low, high = authors_per_paper
    for index in range(n_papers):
        count = rng.randint(low, min(high, len(author_ids)))
        chosen = tuple(rng.sample(author_ids, count))
        venue = rng.choice(pool)
        year = rng.randint(*YEAR_RANGE)
        first_page = rng.randint(1, 580)
        papers.append(
            PaperRecord(
                key=f"p{index:05d}",
                title=titles.title(),
                author_ids=chosen,
                venue_key=venue.key,
                year=year,
                pages=f"{first_page}-{first_page + rng.randint(8, 24)}",
            )
        )
    return Corpus(authors, venues, papers, seed)
