"""Benchmark-regression gate over the committed BENCH_*.json files.

The full fig-16 sweeps run on developer machines and their results are
committed as ``BENCH_query_exec.json`` / ``BENCH_serving.json``.  CI
cannot re-measure them (a shared runner's timings are noise), but it
*can* hold the committed numbers to the floors the perf work
established — so a change that quietly regresses the compiled/columnar
fast paths, or fattens the serving transport back up, fails the build
the moment its re-measured results are committed (and identity flags
are checked unconditionally):

* indexed execution, compiled conditions and the columnar scan must all
  report identical results to their reference paths;
* the fig-16(a) single-thread speedups (selective and broad) and the
  fig-16(b) join speedup must not fall below their recorded floors;
* single-worker serving overhead must stay within the skinny-transport
  budget.

Floors are deliberately set *below* the measured numbers (tolerance for
machine-to-machine variance), so only a real regression trips them.

Run::

    python benchmarks/check_regression.py                    # repo-root files
    python benchmarks/check_regression.py --query-exec F1 --serving F2
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Floors for BENCH_query_exec.json (measured at 3000 papers / 400
#: joined papers: 2.6x / 1.2x / 11x; see docs/PERFORMANCE.md).  The
#: broad-selection floor is low on purpose — that figure is verify-bound
#: (Amdahl), so its indexed-over-scan ratio compresses as the scan side
#: itself gets faster, and anything >= 1.1 still shows the index winning.
#: The ``compiled_speedup`` floors hold the whole fast path (compiled
#: conditions + columnar scans + batched verify) against the
#: fully-interpreted per-document ablation, so a compiler or verify
#: regression fails CI even when the indexed-over-scan ratio hides it.
QUERY_EXEC_FLOORS = {
    "selection_speedup_at_largest": 2.5,
    "selection_broad_speedup_at_largest": 1.1,
    "join_speedup_at_largest": 8.0,
    "broad_compiled_speedup_at_largest": 3.0,
    "join_compiled_speedup_at_largest": 2.5,
}

#: Ceilings for BENCH_query_exec.json: absolute latencies the
#: set-oriented verifier is accountable for (measured 0.0096s for the
#: fig-16(b) join at 400 papers; the ceiling is the PR 8 acceptance
#: bar, >= 3x under the PR 7 figure of 0.059s).
QUERY_EXEC_CEILINGS = {
    "join_indexed_seconds_at_largest": 0.0197,
    # Telemetry-spine budget on the broad fig-16(a) instance at 3000
    # papers: the serving default (tracing + metrics + rolling windows)
    # may cost at most 5% over a fully disabled run, and attaching the
    # sampling profiler at most 10%.
    "obs_enabled_overhead": 1.05,
    "obs_profiler_overhead": 1.10,
}

#: Ceiling for the serving dispatch tax: 1-worker batch wall-clock over
#: the serial baseline — the skinny-transport budget itself (measured
#: 1.08x; anything above 1.10x is an architecture regression, not
#: machine variance).
SINGLE_WORKER_OVERHEAD_CEILING = 1.10

#: Floors for BENCH_online_mutations.json (PR 10 acceptance bars at
#: 3000 papers): a single-document write through the incremental
#: SEA/SEO path must beat the from-scratch rebuild >= 10x, and the
#: serving delta refresh must beat the full re-capture path >= 5x.
#: Identity flags (incremental == from-scratch, served == serial) are
#: checked unconditionally.
ONLINE_MUTATIONS_FLOORS = {
    "incremental_speedup_min": 10.0,
    "delta_refresh_speedup": 5.0,
}


def _load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        sys.exit(f"regression check: missing benchmark file {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"regression check: {path} is not valid JSON: {exc}")


def check_query_exec(results):
    summary = results.get("summary", {})
    failures = []
    if not summary.get("identical_results"):
        failures.append("indexed execution no longer matches the full scan")
    if not summary.get("interpreted_identical"):
        failures.append(
            "compiled/columnar execution no longer matches the interpreted path"
        )
    if summary.get("join_regression"):
        failures.append("the indexed join is slower than the scan join")
    for key, floor in QUERY_EXEC_FLOORS.items():
        value = summary.get(key)
        if value is None:
            failures.append(f"summary key {key!r} is missing")
        elif value < floor:
            failures.append(f"{key} = {value} fell below the floor {floor}")
    for key, ceiling in QUERY_EXEC_CEILINGS.items():
        value = summary.get(key)
        if value is None:
            failures.append(f"summary key {key!r} is missing")
        elif value > ceiling:
            failures.append(f"{key} = {value} exceeds the ceiling {ceiling}")
    return failures


def check_serving(results):
    summary = results.get("summary", {})
    failures = []
    if not summary.get("identical_results"):
        failures.append("served execution no longer matches serial execution")
    overhead = summary.get("single_worker_overhead")
    if overhead is None:
        failures.append("summary key 'single_worker_overhead' is missing")
    elif overhead > SINGLE_WORKER_OVERHEAD_CEILING:
        failures.append(
            f"single_worker_overhead = {overhead} exceeds the ceiling "
            f"{SINGLE_WORKER_OVERHEAD_CEILING}"
        )
    return failures


def check_online_mutations(results):
    summary = results.get("summary", {})
    failures = []
    if not summary.get("incremental_identical"):
        failures.append(
            "incremental build no longer matches the from-scratch rebuild"
        )
    if not summary.get("served_identical"):
        failures.append(
            "served answers after delta refresh no longer match serial"
        )
    if not summary.get("incremental_path_taken"):
        failures.append(
            "writes no longer take the incremental build path (speedup vacuous)"
        )
    if not summary.get("delta_path_taken"):
        failures.append("refresh() no longer takes the delta path for writes")
    for key, floor in ONLINE_MUTATIONS_FLOORS.items():
        value = summary.get(key)
        if value is None:
            failures.append(f"summary key {key!r} is missing")
        elif value < floor:
            failures.append(f"{key} = {value} fell below the floor {floor}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--query-exec",
        default=str(REPO_ROOT / "BENCH_query_exec.json"),
        help="path to the committed query-exec results",
    )
    parser.add_argument(
        "--serving",
        default=str(REPO_ROOT / "BENCH_serving.json"),
        help="path to the committed serving results",
    )
    parser.add_argument(
        "--online-mutations",
        default=str(REPO_ROOT / "BENCH_online_mutations.json"),
        help="path to the committed online-mutations results",
    )
    args = parser.parse_args(argv)

    failures = check_query_exec(_load(args.query_exec))
    failures += check_serving(_load(args.serving))
    failures += check_online_mutations(_load(args.online_mutations))
    if failures:
        print("benchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
