"""Ablation: similarity hash join vs the naive product join.

The TAX join is a cross product followed by selection — O(|L| * |R|)
product trees even when the similarity predicate is highly selective.
The executor's length-bucketed similarity hash join prunes candidate
pairs through the measure's length bound before any product tree is
built.  This ablation measures both strategies on the Figure 16(b)
workload and asserts they agree exactly.
"""

import time

from conftest import persist

from repro.data import generate_corpus, render_dblp, render_sigmod_pages
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_join_pattern, build_system


def test_ablation_hash_join(benchmark, results_dir):
    rows = []
    speedups = []
    for papers in (200, 400):
        corpus = generate_corpus(papers, seed=0)
        keys = corpus.paper_keys()
        dblp = render_dblp(corpus, seed=0, paper_keys=keys)
        pages = render_sigmod_pages(corpus, seed=0, paper_keys=keys)
        system = build_system(corpus, [dblp], 3.0, sigmod_documents=pages)
        pattern = build_join_pattern()

        assert system.executor is not None
        system.executor.similarity_hash_join = True
        started = time.perf_counter()
        hashed = system.join("dblp", "sigmod", pattern, sl_labels=[2, 5])
        hash_seconds = time.perf_counter() - started

        system.executor.similarity_hash_join = False
        started = time.perf_counter()
        naive = system.join("dblp", "sigmod", pattern, sl_labels=[2, 5])
        naive_seconds = time.perf_counter() - started
        system.executor.similarity_hash_join = True

        assert {t.canonical_key() for t in hashed.results} == {
            t.canonical_key() for t in naive.results
        }
        speedup = naive_seconds / max(hash_seconds, 1e-9)
        speedups.append(speedup)
        rows.append(
            [papers, len(hashed.results), hash_seconds, naive_seconds, speedup]
        )

    table = format_table(
        ["papers", "results", "hash-join s", "naive product s", "speedup"], rows
    )
    persist(results_dir, "ablation_hash_join.txt",
            "Ablation: similarity hash join vs naive product\n" + table)

    # The product join is quadratic, the hash join near-linear: a large
    # speedup at every size.  (The exact growth of the ratio is too noisy
    # under a loaded machine to assert on.)
    assert all(s > 3.0 for s in speedups), f"hash join lost its edge: {speedups}"

    corpus = generate_corpus(200, seed=0)
    keys = corpus.paper_keys()
    dblp = render_dblp(corpus, seed=0, paper_keys=keys)
    pages = render_sigmod_pages(corpus, seed=0, paper_keys=keys)
    system = build_system(corpus, [dblp], 3.0, sigmod_documents=pages)
    pattern = build_join_pattern()
    benchmark(lambda: system.join("dblp", "sigmod", pattern, sl_labels=[2, 5]))
