"""Fault-recovery benchmark: what a worker crash costs the serving tier.

PR 6's tentpole claim is that serving survives worker failure without
changing a single answer — a SIGKILLed worker's tasks retry onto live
workers, the dead slot respawns with backoff, a hung worker is killed
from the parent, and a permanently failing partition can (opt-in) degrade
instead of failing the query.  This bench prices that machinery on the
same sharded-DBLP workload as ``bench_serving.py``:

* **fault-free baseline**: the batch through a
  :class:`~repro.serving.supervisor.SupervisedWorkerPool` with no
  injected faults — the supervision overhead itself vs the plain pool;
* **crash recovery**: the same batch with deterministic worker kills
  injected (:mod:`repro.faults`) at increasing rates; identity-checked
  against serial answers, with the recovery overhead (wall-clock vs the
  fault-free run) and the measured respawn latencies;
* **hang recovery**: one task hangs forever; the parent-side hard
  timeout kills the worker and the batch completes — the recovery
  latency is the price of a hang vs a clean crash;
* **degraded partition**: a partitioned query whose chunk fails
  permanently, under ``on_chunk_failure="degrade"`` — how fast a partial
  answer comes back, and what fraction of results it keeps.

Results land in ``benchmarks/results/serving_faults.json`` plus the
trajectory copy ``BENCH_serving_faults.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving_faults.py          # full
    PYTHONPATH=src python benchmarks/bench_serving_faults.py --smoke  # CI

or through pytest (``pytest benchmarks/ --benchmark-only``), which runs
the smoke scale and checks the invariants (identical results under
kills, bounded hang recovery, degraded report shape) without asserting
on timings.
"""

import argparse
import os
import sys
import time

from _emit import default_output_paths, emit_results
from repro import faults
from repro.data import generate_corpus, render_dblp
from repro.experiments.workload import build_system
from repro.serving import (
    RetryPolicy,
    SupervisedWorkerPool,
    execute_partitioned,
)
from repro.serving.snapshot import SystemSnapshot
from repro.xmldb.serializer import serialize

FULL_PAPERS = 1500
SMOKE_PAPERS = 60
FULL_BATCH = 24
SMOKE_BATCH = 8
WORKERS = 2
KILL_RATES = (0.125, 0.25, 0.5)
EPSILON = 3.0
SEED = 7

QUERY_TEMPLATE = (
    'inproceedings(author ~ "{author}", '
    'booktitle below "database conference")'
)

#: The degraded-partition scenario needs a broad selection whose answers
#: spread across both chunks of the candidate scan, so losing one chunk
#: keeps a measurable (but partial) answer.
BROAD_QUERY = 'inproceedings(booktitle below "database conference", title)'

#: Snappy recovery for benchmarking: the backoff caps, not the defaults,
#: would otherwise dominate the measured recovery latency.
POLICY = RetryPolicy(
    retry_backoff_base=0.02,
    retry_backoff_cap=0.2,
    respawn_backoff_base=0.02,
    respawn_backoff_cap=0.2,
)


def _build(papers):
    corpus = generate_corpus(papers, seed=SEED)
    documents = [
        render_dblp(corpus, seed=SEED, paper_keys=[key])
        for key in corpus.paper_keys()
    ]
    system = build_system(corpus, documents, EPSILON, use_cache=False)
    system.database.get_collection("dblp").search_index(build=True)
    return corpus, system


def _batch_queries(corpus, count):
    authors = sorted(corpus.authors.values(), key=lambda a: a.entity_id)
    return [
        QUERY_TEMPLATE.format(author=authors[index % len(authors)].canonical)
        for index in range(count)
    ]


def _result_texts(report):
    return [serialize(tree) for tree in report.results]


def _make_task(query):
    return {
        "query": query,
        "collection": "dblp",
        "sl_variables": (),
        "right_collection": None,
        "document_keys": None,
        "guard": None,
        "collect_metrics": False,
        "trace": False,
    }


def _run_batch(pool, queries, serial_answers):
    started = time.perf_counter()
    outcomes = pool.run_batch([_make_task(query) for query in queries])
    seconds = time.perf_counter() - started
    failures = [o["failure"] for o in outcomes if "failure" in o]
    if failures:
        raise SystemExit(f"benchmark batch failed: {failures[0]}")
    identical = all(
        outcome["report"]["results"] == expected
        for outcome, expected in zip(outcomes, serial_answers)
    )
    return seconds, identical


def _crash_sweep(snapshot, queries, serial_answers, baseline_seconds, verbose):
    records = []
    for rate in KILL_RATES:
        plan = faults.FaultPlan(
            seed=SEED, rules=(faults.FaultRule(kind=faults.KILL, rate=rate),)
        )
        with SupervisedWorkerPool(
            snapshot, WORKERS, policy=POLICY, fault_plan=plan
        ) as pool:
            seconds, identical = _run_batch(pool, queries, serial_answers)
            stats = pool.stats()
        respawns = stats["respawn_seconds"]
        record = {
            "kill_rate": rate,
            "seconds": round(seconds, 4),
            "recovery_overhead_seconds": round(
                max(0.0, seconds - baseline_seconds), 4
            ),
            "crashes": stats["crashes"],
            "retries": stats["retries"],
            "respawns": stats["respawns"],
            "respawn_latency_mean": round(sum(respawns) / len(respawns), 4)
            if respawns
            else None,
            "respawn_latency_max": round(max(respawns), 4) if respawns else None,
            "identical": identical,
        }
        records.append(record)
        if verbose:
            print(
                f"  kill_rate={rate:<6} {record['seconds']:8.3f}s "
                f"(+{record['recovery_overhead_seconds']}s, "
                f"{record['crashes']} crashes, "
                f"{record['respawns']} respawns)",
                flush=True,
            )
    return records


def _hang_recovery(snapshot, queries, serial_answers, baseline_seconds, verbose):
    plan = faults.FaultPlan(
        rules=(faults.FaultRule(kind=faults.HANG, tasks=(0,), seconds=120.0),)
    )
    policy = RetryPolicy(
        hard_timeout=1.0,
        retry_backoff_base=0.02,
        respawn_backoff_base=0.02,
    )
    with SupervisedWorkerPool(
        snapshot, WORKERS, policy=policy, fault_plan=plan
    ) as pool:
        seconds, identical = _run_batch(pool, queries, serial_answers)
        stats = pool.stats()
    record = {
        "hang_seconds_injected": 120.0,
        "hard_timeout": 1.0,
        "seconds": round(seconds, 4),
        "recovery_overhead_seconds": round(
            max(0.0, seconds - baseline_seconds), 4
        ),
        "hard_timeouts": stats["hard_timeouts"],
        "identical": identical,
    }
    if verbose:
        print(
            f"  hang            {record['seconds']:8.3f}s "
            f"(+{record['recovery_overhead_seconds']}s, "
            f"{record['hard_timeouts']} hard timeout)",
            flush=True,
        )
    return record


def _degraded_partition(system, snapshot, query, verbose):
    serial_started = time.perf_counter()
    expected = _result_texts(system.query("dblp", query))
    serial_seconds = time.perf_counter() - serial_started
    plan = faults.FaultPlan(
        rules=(faults.FaultRule(kind=faults.KILL, tasks=(0,), attempts=None),)
    )
    policy = RetryPolicy(
        max_retries=1,
        quarantine_after=100,
        retry_backoff_base=0.02,
        respawn_backoff_base=0.02,
    )
    with SupervisedWorkerPool(
        snapshot, WORKERS, policy=policy, fault_plan=plan
    ) as pool:
        started = time.perf_counter()
        merged = execute_partitioned(
            system, pool, "dblp", query, jobs=2, on_chunk_failure="degrade"
        )
        seconds = time.perf_counter() - started
    kept = _result_texts(merged)
    record = {
        "query": query,
        "serial_seconds": round(serial_seconds, 4),
        "degraded_seconds": round(seconds, 4),
        "degraded": merged.degraded,
        "failed_partitions": merged.failed_partitions,
        "results_kept": len(kept),
        "results_serial": len(expected),
        "kept_fraction": round(len(kept) / len(expected), 3)
        if expected
        else None,
        "kept_are_subset": set(kept) <= set(expected),
    }
    if verbose:
        print(
            f"  degraded        {record['degraded_seconds']:8.3f}s "
            f"(kept {record['results_kept']}/{record['results_serial']} "
            f"results, {len(merged.failed_partitions)} chunk(s) lost)",
            flush=True,
        )
    return record


def run_benchmark(
    papers=FULL_PAPERS,
    batch=FULL_BATCH,
    smoke=False,
    out_path=None,
    trajectory_path=None,
    verbose=True,
):
    corpus, system = _build(papers)
    queries = _batch_queries(corpus, batch)
    serial_answers = []
    for query in queries:
        serial_answers.append(
            [serialize(tree) for tree in system.query("dblp", query).results]
        )
    snapshot = SystemSnapshot.capture(system)

    with SupervisedWorkerPool(snapshot, WORKERS, policy=POLICY) as pool:
        # Warm the dispatch path, then measure fault-free supervision.
        _run_batch(pool, queries[:1], serial_answers[:1])
        baseline_seconds, baseline_identical = _run_batch(
            pool, queries, serial_answers
        )
    if verbose:
        print(
            f"  fault-free      {baseline_seconds:8.3f}s "
            f"({batch / baseline_seconds:.2f} q/s)",
            flush=True,
        )

    crash_runs = _crash_sweep(
        snapshot, queries, serial_answers, baseline_seconds, verbose
    )
    hang_run = _hang_recovery(
        snapshot, queries, serial_answers, baseline_seconds, verbose
    )
    degraded_run = _degraded_partition(system, snapshot, BROAD_QUERY, verbose)

    results = {
        "benchmark": "serving_faults",
        "epsilon": EPSILON,
        "seed": SEED,
        "smoke": smoke,
        "papers": papers,
        "batch": batch,
        "workers": WORKERS,
        "baseline_seconds": round(baseline_seconds, 4),
        "crash_recovery": crash_runs,
        "hang_recovery": hang_run,
        "degraded_partition": degraded_run,
        "summary": {
            "identical_under_faults": baseline_identical
            and all(run["identical"] for run in crash_runs)
            and hang_run["identical"],
            "worst_recovery_overhead_seconds": round(
                max(
                    [run["recovery_overhead_seconds"] for run in crash_runs]
                    + [hang_run["recovery_overhead_seconds"]]
                ),
                4,
            ),
            "degraded_kept_fraction": degraded_run["kept_fraction"],
        },
    }
    emit_results(results, out_path=out_path, trajectory_path=trajectory_path)
    return results


# -- pytest entry points (smoke scale; invariants, not timings) -------------


def test_serving_faults_smoke(results_dir):
    results = run_benchmark(
        papers=SMOKE_PAPERS,
        batch=SMOKE_BATCH,
        smoke=True,
        out_path=results_dir / "serving_faults_smoke.json",
        verbose=False,
    )
    assert results["summary"]["identical_under_faults"], (
        "recovered execution disagrees with serial execution"
    )
    assert any(run["crashes"] > 0 for run in results["crash_recovery"]), (
        "no injected kill ever fired; the recovery measurement is vacuous"
    )
    assert results["hang_recovery"]["hard_timeouts"] >= 1
    degraded = results["degraded_partition"]
    assert degraded["degraded"] and degraded["failed_partitions"]
    assert degraded["kept_are_subset"]
    assert 0 < degraded["results_kept"] < degraded["results_serial"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale (CI crash + identity check)",
    )
    parser.add_argument(
        "--papers",
        type=int,
        default=None,
        help=f"corpus size (default: {FULL_PAPERS}, smoke {SMOKE_PAPERS})",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        help=f"queries per batch (default: {FULL_BATCH}, smoke {SMOKE_BATCH})",
    )
    args = parser.parse_args(argv)
    papers = args.papers or (SMOKE_PAPERS if args.smoke else FULL_PAPERS)
    batch = args.batch or (SMOKE_BATCH if args.smoke else FULL_BATCH)
    out, trajectory = default_output_paths("serving_faults", smoke=args.smoke)
    print(
        f"Serving-faults benchmark: papers={papers} batch={batch} "
        f"workers={WORKERS} kill_rates={KILL_RATES} "
        f"cpu_count={os.cpu_count()} smoke={args.smoke}"
    )
    results = run_benchmark(
        papers=papers,
        batch=batch,
        smoke=args.smoke,
        out_path=out,
        trajectory_path=trajectory,
    )
    summary = results["summary"]
    print(
        f"identical={summary['identical_under_faults']} "
        f"worst-overhead={summary['worst_recovery_overhead_seconds']}s "
        f"degraded-kept={summary['degraded_kept_fraction']}"
    )
    return 0 if summary["identical_under_faults"] else 1


if __name__ == "__main__":
    sys.exit(main())
