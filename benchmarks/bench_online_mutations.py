"""Online-mutation benchmark: what a write costs under live traffic.

PR 10's tentpole claim is that mutations are cheap: a single-document
write is absorbed by the incremental SEA/SEO maintenance path (pending
extraction deltas + cached verdict replay) instead of a from-scratch
rebuild, and the serving tier converges its live workers with a
:class:`~repro.serving.snapshot.SnapshotDelta` broadcast instead of a
full re-capture + fleet respawn.  This bench prices both layers on the
generated DBLP corpus:

* **incremental build vs full rebuild**: single-document writes against
  an N-paper system, timing the delta :meth:`TossSystem.build` against
  a from-scratch build over the same final documents — identity-checked
  byte-for-byte on the serialized SEOs (the incremental result must be
  indistinguishable from the rebuild it replaces);
* **delta refresh vs full refresh**: the same writes against a running
  :class:`~repro.serving.QueryServer` (pickle snapshots, so the full
  path pays real re-serialization), timing ``refresh()`` taking the
  delta path against ``refresh(incremental=False)`` — answer-checked
  against serial execution after the last delta.

Results land in ``benchmarks/results/online_mutations.json`` plus the
trajectory copy ``BENCH_online_mutations.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_online_mutations.py          # full
    PYTHONPATH=src python benchmarks/bench_online_mutations.py --smoke  # CI

or through pytest (``pytest benchmarks/ --benchmark-only``), which runs
the smoke scale and checks the invariants (identity, delta path taken)
without asserting on timings.
"""

import argparse
import json
import os
import sys
import time

from _emit import default_output_paths, emit_results
from repro.core.system import TossSystem
from repro.data import generate_corpus, render_dblp
from repro.ontology import Ontology
from repro.serving import QueryServer, RetryPolicy
from repro.serving.snapshot import PICKLE
from repro.similarity.persistence import seo_to_dict
from repro.xmldb.serializer import serialize

FULL_PAPERS = 3000
SMOKE_PAPERS = 80
#: Single-document writes measured per layer.
WRITES = 3
EPSILON = 3.0
SEED = 7
WORKERS = 2

QUERY_TEMPLATE = 'inproceedings(author ~ "{author}")'

POLICY = RetryPolicy(
    retry_backoff_base=0.02,
    retry_backoff_cap=0.2,
    respawn_backoff_base=0.02,
    respawn_backoff_cap=0.2,
)


def _render(papers, extra):
    """Base documents plus ``extra`` synthetic single-paper writes.

    The writes carry authors the generated corpus cannot contain, so
    every write introduces fresh ontology terms — the incremental path
    must do real similarity work (delta SEA verification), not take the
    empty-delta no-op shortcut.
    """
    corpus = generate_corpus(papers, seed=SEED)
    keys = corpus.paper_keys()
    documents = [
        render_dblp(corpus, seed=SEED, paper_keys=[key]) for key in keys
    ]
    writes = [
        f'<dblp><inproceedings key="w{index:05d}">'
        f"<author>Zanira Quorvick{index}</author>"
        f"<title>Online Mutation Study {index}</title>"
        f"<pages>1-12</pages><year>2004</year>"
        f"<booktitle>SIGMOD Conference</booktitle>"
        f"</inproceedings></dblp>"
        for index in range(extra)
    ]
    return corpus, documents, writes


def _seo_bytes(system):
    return {
        relation: json.dumps(seo_to_dict(seo), sort_keys=True)
        for relation, seo in system.context.seos.items()
    }


def _fresh_build(documents):
    system = TossSystem(epsilon=EPSILON)
    system.add_instance("dblp", documents)
    started = time.perf_counter()
    system.build()
    return system, time.perf_counter() - started


def _incremental_sweep(base_documents, write_documents, verbose):
    """Time each single-document write through the incremental path and
    through a from-scratch rebuild of the same final state."""
    live = TossSystem(epsilon=EPSILON)
    live.add_instance("dblp", base_documents)
    live.build()
    documents = list(base_documents)
    records = []
    for index, document in enumerate(write_documents):
        receipt = live.add_documents("dblp", document)
        started = time.perf_counter()
        live.build()
        incremental_seconds = time.perf_counter() - started
        documents.append(document)
        fresh, full_seconds = _fresh_build(documents)
        identical = _seo_bytes(live) == _seo_bytes(fresh)
        record = {
            "write": index + 1,
            "documents": len(documents),
            "terms_added": len(receipt.terms_added),
            "incremental_receipt": receipt.incremental,
            "incremental_seconds": round(incremental_seconds, 5),
            "full_rebuild_seconds": round(full_seconds, 5),
            "speedup": round(full_seconds / incremental_seconds, 2)
            if incremental_seconds > 0
            else None,
            "identical": identical,
            "chain_depth": live.seo_chain_depths[Ontology.ISA],
        }
        records.append(record)
        if verbose:
            print(
                f"  write {record['write']}: incremental "
                f"{record['incremental_seconds']:.4f}s vs full rebuild "
                f"{record['full_rebuild_seconds']:.4f}s "
                f"({record['speedup']}x, identical={identical}, "
                f"chain depth {record['chain_depth']})",
                flush=True,
            )
    return live, records


def _refresh_sweep(system, corpus, write_documents, verbose):
    """Time the delta and full refresh paths of a running server.

    Both paths are timed to *first answer* (refresh + one query), not
    just the ``refresh()`` call: the full path re-captures the snapshot
    and respawns the pool without waiting for the new workers' readiness
    — its spawn/restore cost lands on the next query — while the delta
    path converges the live workers synchronously.  Time-to-first-answer
    is what a client behind the server actually observes either way.

    The sweep starts from a fully-ready fleet (``wait_ready`` after the
    warm-up query): execution only needs one live worker, so without the
    barrier the first delta broadcast would absorb the other workers'
    remaining spawn/restore tail — a start-up cost, not a property of
    the refresh path being measured.
    """
    author = sorted(corpus.authors.values(), key=lambda a: a.entity_id)[
        0
    ].canonical
    query = QUERY_TEMPLATE.format(author=author)
    delta_runs = []
    record = {}
    with QueryServer(
        system,
        workers=WORKERS,
        default_collection="dblp",
        snapshot_mode=PICKLE,
        policy=POLICY,
    ) as server:
        server.execute(query)  # warm spawn + dispatch
        server.wait_ready()  # full fleet up: measure refresh, not spawn
        deltas = write_documents[:-1] or write_documents
        for document in deltas:
            system.add_documents("dblp", document)
            system.build()
            started = time.perf_counter()
            outcome = server.refresh()
            server.execute(query)
            seconds = time.perf_counter() - started
            delta_runs.append(
                {"outcome": outcome, "seconds": round(seconds, 5)}
            )
            if verbose:
                print(
                    f"  refresh ({outcome}) + query  {seconds:8.4f}s",
                    flush=True,
                )
        system.add_documents("dblp", write_documents[-1])
        system.build()
        started = time.perf_counter()
        full_outcome = server.refresh(incremental=False)
        server.execute(query)
        full_seconds = time.perf_counter() - started
        if verbose:
            print(
                f"  refresh ({full_outcome}) + query  {full_seconds:8.4f}s",
                flush=True,
            )
        served = [serialize(tree) for tree in server.execute(query).results]
    serial = [serialize(tree) for tree in system.query("dblp", query).results]
    delta_seconds = [run["seconds"] for run in delta_runs]
    record = {
        "query": query,
        "delta_refreshes": delta_runs,
        "full_refresh_outcome": full_outcome,
        "full_refresh_seconds": round(full_seconds, 5),
        "delta_refresh_seconds_mean": round(
            sum(delta_seconds) / len(delta_seconds), 5
        ),
        "all_deltas": all(run["outcome"] == "delta" for run in delta_runs),
        "speedup": round(
            full_seconds * len(delta_seconds) / sum(delta_seconds), 2
        )
        if sum(delta_seconds) > 0
        else None,
        "served_identical": served == serial,
    }
    return record


def run_benchmark(
    papers=FULL_PAPERS,
    smoke=False,
    out_path=None,
    trajectory_path=None,
    verbose=True,
):
    corpus, base_documents, write_documents = _render(papers, WRITES * 2)
    system, incremental_runs = _incremental_sweep(
        base_documents, write_documents[:WRITES], verbose
    )
    refresh_run = _refresh_sweep(
        system, corpus, write_documents[WRITES:], verbose
    )

    speedups = [run["speedup"] for run in incremental_runs if run["speedup"]]
    results = {
        "benchmark": "online_mutations",
        "epsilon": EPSILON,
        "seed": SEED,
        "smoke": smoke,
        "papers": papers,
        "writes": WRITES,
        "workers": WORKERS,
        "incremental_builds": incremental_runs,
        "serving_refresh": refresh_run,
        "summary": {
            "incremental_identical": all(
                run["identical"] for run in incremental_runs
            ),
            "incremental_path_taken": all(
                run["incremental_receipt"] for run in incremental_runs
            )
            and incremental_runs[-1]["chain_depth"] >= 1,
            "incremental_speedup_mean": round(
                sum(speedups) / len(speedups), 2
            )
            if speedups
            else None,
            "incremental_speedup_min": min(speedups) if speedups else None,
            "delta_refresh_speedup": refresh_run["speedup"],
            "delta_path_taken": refresh_run["all_deltas"],
            "served_identical": refresh_run["served_identical"],
        },
    }
    emit_results(results, out_path=out_path, trajectory_path=trajectory_path)
    return results


# -- pytest entry points (smoke scale; invariants, not timings) -------------


def test_online_mutations_smoke(results_dir):
    results = run_benchmark(
        papers=SMOKE_PAPERS,
        smoke=True,
        out_path=results_dir / "online_mutations_smoke.json",
        verbose=False,
    )
    summary = results["summary"]
    assert summary["incremental_identical"], (
        "incremental build diverged from the from-scratch rebuild"
    )
    assert summary["incremental_path_taken"], (
        "no write took the incremental build path; the speedup is vacuous"
    )
    assert summary["delta_path_taken"], (
        "refresh() fell back to full re-capture for a delta-able mutation"
    )
    assert summary["served_identical"], (
        "served answers diverged from serial execution after refreshes"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale (CI identity + delta-path check)",
    )
    parser.add_argument(
        "--papers",
        type=int,
        default=None,
        help=f"corpus size (default: {FULL_PAPERS}, smoke {SMOKE_PAPERS})",
    )
    args = parser.parse_args(argv)
    papers = args.papers or (SMOKE_PAPERS if args.smoke else FULL_PAPERS)
    out, trajectory = default_output_paths("online_mutations", smoke=args.smoke)
    print(
        f"Online-mutations benchmark: papers={papers} writes={WRITES} "
        f"workers={WORKERS} cpu_count={os.cpu_count()} smoke={args.smoke}"
    )
    results = run_benchmark(
        papers=papers,
        smoke=args.smoke,
        out_path=out,
        trajectory_path=trajectory,
    )
    summary = results["summary"]
    print(
        f"incremental={summary['incremental_speedup_mean']}x "
        f"(identical={summary['incremental_identical']}) "
        f"delta-refresh={summary['delta_refresh_speedup']}x "
        f"(served_identical={summary['served_identical']})"
    )
    return 0 if (
        summary["incremental_identical"] and summary["served_identical"]
    ) else 1


if __name__ == "__main__":
    sys.exit(main())
