"""Ablation: which similarity measure drives answer quality?

Section 4.3 claims "the TOSS framework can plug in any such similarity
implementation"; this ablation swaps the measure (with a threshold
appropriate to its scale) on the Figure 15 workload and reports the
quality each achieves.  Expected shape: the rule-based name measure wins
(it understands initials), edit-distance measures follow, and the plain
TAX baseline trails everything.
"""

from conftest import persist

from repro.experiments import run_precision_recall_experiment
from repro.experiments.reporting import format_table

#: (measure registry name, epsilon matched to the measure's scale)
MEASURE_GRID = (
    ("levenshtein", 3.0),
    ("damerau", 3.0),
    ("jaro_winkler", 0.12),
    ("name_rules", 1.0),
)


def test_ablation_measures(benchmark, results_dir):
    rows = []
    qualities = {}
    for name, epsilon in MEASURE_GRID:
        results = run_precision_recall_experiment(
            n_datasets=2,
            papers_per_dataset=100,
            n_queries=12,
            epsilons=(epsilon,),
            measure=name,
            seed=0,
        )
        system_name = f"TOSS(e={epsilon:g})"
        precision, recall, qual = results.averages(system_name)
        qualities[name] = qual
        rows.append([name, epsilon, precision, recall, qual])
        if name == MEASURE_GRID[0][0]:
            tax_p, tax_r, tax_q = results.averages("TAX")
            rows.append(["(TAX baseline)", "-", tax_p, tax_r, tax_q])
            qualities["tax"] = tax_q

    table = format_table(
        ["measure", "epsilon", "avg P", "avg R", "avg quality"], rows
    )
    persist(results_dir, "ablation_measures.txt",
            "Ablation: similarity measure vs answer quality\n" + table)

    # Every similarity measure must beat the TAX baseline on quality.
    for name, _ in MEASURE_GRID:
        assert qualities[name] > qualities["tax"], f"{name} lost to TAX"
    # The name-aware rule measure should be at least as good as plain
    # Levenshtein (it additionally bridges initials).
    assert qualities["name_rules"] >= qualities["levenshtein"] - 0.05

    benchmark(lambda: format_table(["m"], [["x"]]))
