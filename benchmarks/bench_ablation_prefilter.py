"""Ablation: the executor's XPath prefilter vs direct algebra evaluation.

The prototype architecture (Section 6) pushes tag/content constraints into
XPath before running the TAX machinery; this ablation measures the same
TOSS selection (a) through the Query Executor and (b) directly with the
in-memory algebra over the whole collection.

Expected (and interesting) result: with an *in-memory* store, the direct
algebra often wins — evaluating the SEO-expanded disjunction inside the
XPath predicate costs more than the tag-index pruning of the embedding
engine saves.  The paper's architecture pays off when the store is a
separate process (Xindice) where shipping candidates dominates; the two
strategies must always agree on the answers, which is the asserted
invariant here.
"""

import time

from conftest import persist

from repro.data import generate_corpus, render_dblp
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_system
from repro.core.parser import parse_query

def test_ablation_prefilter(benchmark, results_dir):
    corpus = generate_corpus(800, seed=3)
    dblp = render_dblp(corpus, seed=3)
    system = build_system(corpus, [dblp], 3.0)
    # Target the corpus's most prolific author so the query has answers.
    frequency = {}
    for paper in corpus.papers:
        for author_id in paper.author_ids:
            frequency[author_id] = frequency.get(author_id, 0) + 1
    target = corpus.authors[max(frequency, key=frequency.get)].canonical
    parsed = parse_query(
        f'inproceedings(author ~ "{target}", '
        f'booktitle below "database conference")'
    )
    algebra = system.algebra()
    instance = system.instances["dblp"]

    rows = []
    for name, run in (
        (
            "executor (XPath prefilter + verify)",
            lambda: system.select("dblp", parsed.pattern, parsed.roots).results,
        ),
        (
            "direct algebra (full scan)",
            lambda: algebra.selection(instance, parsed.pattern, parsed.roots),
        ),
    ):
        timings = []
        counts = set()
        for _ in range(3):
            started = time.perf_counter()
            results = run()
            timings.append(time.perf_counter() - started)
            counts.add(len(results))
        rows.append([name, min(timings), sum(timings) / len(timings), counts.pop()])

    table = format_table(
        ["strategy", "min seconds", "mean seconds", "results"], rows
    )
    persist(results_dir, "ablation_prefilter.txt",
            "Ablation: XPath prefilter vs full algebra scan\n" + table)

    # Both strategies must agree on the answers.
    executor_results = system.select("dblp", parsed.pattern, parsed.roots).results
    direct_results = algebra.selection(instance, parsed.pattern, parsed.roots)
    assert {t.canonical_key() for t in executor_results} == {
        t.canonical_key() for t in direct_results
    }

    benchmark(lambda: system.select("dblp", parsed.pattern, parsed.roots))
