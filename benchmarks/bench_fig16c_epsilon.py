"""Figure 16(c): TOSS selection/join time against the threshold epsilon.

Paper shape: "both execution times increase approximately linearly with
epsilon because when epsilon increases, each node will contain more
similar terms on average and thus more time is needed to output a larger
result."
"""

from conftest import persist

from repro.data import generate_corpus, render_dblp
from repro.experiments import epsilon_sweep
from repro.experiments.reporting import epsilon_table
from repro.experiments.workload import build_scalability_pattern, build_system

EPSILONS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)


def test_fig16c_epsilon(benchmark, results_dir):
    points = epsilon_sweep(
        epsilons=EPSILONS, papers=500, join_papers=200, repeats=2, seed=0
    )
    persist(results_dir, "fig16c_epsilon.txt", epsilon_table(points))

    for operation in ("selection", "join"):
        series = sorted(
            (p for p in points if p.operation == operation),
            key=lambda p: p.epsilon,
        )
        assert len(series) == len(EPSILONS)
        # Result sizes (and thus work) must not shrink as epsilon grows.
        results = [p.results for p in series]
        assert results == sorted(results), (
            f"{operation} answers must grow with epsilon: {results}"
        )
        # Time trend: the largest epsilon should not be faster than the
        # smallest (noise-tolerant monotonicity of the trend line).
        assert series[-1].seconds >= series[0].seconds * 0.8

    corpus = generate_corpus(500, seed=0)
    dblp = render_dblp(corpus, seed=0)
    system = build_system(corpus, [dblp], 5.0)
    pattern = build_scalability_pattern()
    benchmark(lambda: system.select("dblp", pattern, sl_labels=[1]))
