"""Figure 15(c): recall improvement over TAX, normalised by precision.

Paper claim: "In TOSS (e=3), most of the queries get their normalized
recall more than doubled."
"""

from conftest import persist

from repro.experiments import run_precision_recall_experiment
from repro.experiments.reporting import fig15c_series


def test_fig15c_recall_improvement(benchmark, results_dir):
    results = run_precision_recall_experiment(
        n_datasets=3, papers_per_dataset=100, n_queries=12, seed=0
    )
    persist(results_dir, "fig15c_recall_improvement.txt", fig15c_series(results))

    doubled = 0
    comparisons = 0
    for tax, toss in results.paired("TOSS(e=3)"):
        if tax.recall >= 1.0:
            continue
        comparisons += 1
        baseline = max(tax.recall, 1e-9)
        if toss.recall * toss.precision / baseline >= 2.0:
            doubled += 1
    assert comparisons > 0
    assert doubled / comparisons >= 0.5, (
        f"normalised recall doubled for only {doubled}/{comparisons} queries"
    )

    benchmark(lambda: fig15c_series(results))
