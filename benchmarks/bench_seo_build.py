"""SEO construction pipeline benchmark: filters x workers x cache.

The paper precomputes the SEO "during integration of different XML
databases" and never counts it in query time; this bench makes that cost
visible and measures what each layer of the construction pipeline buys:

* ``serial-allpairs`` — the naive baseline: every same-bucket pair runs
  the (banded) edit-distance programme, one process;
* ``serial-filtered`` — the inverted q-gram candidate index prunes pairs
  before verification;
* ``parallel-4-filtered`` — the filtered blocks fanned out over a
  4-process pool with deterministic merge;
* ``cold-cache`` / ``warm-cache`` — a filtered build that stores /
  restores the persistent similarity-graph cache.

Results are emitted as machine-readable JSON into
``benchmarks/results/seo_build.json`` plus a trajectory copy at the repo
root (``BENCH_seo_build.json``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_seo_build.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_seo_build.py --smoke   # CI crash check

or through pytest (``pytest benchmarks/ --benchmark-only``), which runs
the smoke scale and checks the invariants (identical outputs across
configurations, warm cache hit) without asserting on timings.
"""

import argparse
import json
import sys
import tempfile
import time

from _emit import default_output_paths, emit_results, stage_breakdown
from repro.data import generate_corpus, render_dblp
from repro.experiments.workload import build_system
from repro.obs import Observability
from repro.similarity.persistence import dump_seo

FULL_SIZES = (500, 1000, 2000, 3000)
SMOKE_SIZES = (60,)
EPSILON = 3.0
SEED = 5

#: The workers x candidate-filter sweep (cache runs are added separately).
CONFIGS = (
    {"name": "serial-allpairs", "workers": 1, "candidate_filter": False},
    {"name": "serial-filtered", "workers": 1, "candidate_filter": True},
    {"name": "parallel-4-filtered", "workers": 4, "candidate_filter": True},
)


def _timed_build(corpus, documents, **kwargs):
    """Build a system; returns it plus the *build-step* wall clock.

    Timing comes from :attr:`TossSystem.build_seconds` — fusion + SEA (or
    the cache restore), which is what the pipeline layers under test
    actually accelerate.  Document ingestion and ontology extraction are
    identical across every configuration and would only dilute the
    comparison, so they are kept out of the measured interval (the
    end-to-end figure is still recorded per run).
    """
    started = time.perf_counter()
    system = build_system(
        corpus,
        documents,
        EPSILON,
        observability=Observability(enabled=True),
        **kwargs,
    )
    end_to_end = time.perf_counter() - started
    return system, system.build_seconds, end_to_end


def _run_record(papers, name, config, system, seconds, end_to_end, cache=None):
    report = system.build_report
    record = {
        "papers": papers,
        "config": name,
        "workers": config.get("workers", 1),
        "candidate_filter": config.get("candidate_filter", True),
        "cache": cache,
        "cache_hits": report.cache_hits if report else 0,
        "seconds": round(seconds, 4),
        "end_to_end_seconds": round(end_to_end, 4),
        "ontology_terms": system.ontology_size(),
        "total_pairs": report.total_pairs if report else 0,
        "candidates": report.candidates if report else 0,
        "pairs_pruned": report.pairs_pruned if report else 0,
        "parallel_used": bool(
            report
            and any(
                r.sea is not None and r.sea.get("parallel_used")
                for r in report.relations
            )
        ),
        "stages": stage_breakdown(report.trace) if report else None,
    }
    return record


def run_benchmark(
    sizes=FULL_SIZES,
    smoke=False,
    out_path=None,
    trajectory_path=None,
    verbose=True,
):
    """Sweep sizes x configs (+ cold/warm cache); return the result dict.

    ``smoke`` drops the parallel threshold to 0 so the worker pool is
    exercised even at tiny scale — the point of the CI job is to crash if
    the parallel or cache path breaks, not to measure anything.
    """
    threshold = 0 if smoke else None
    runs = []
    identical_outputs = True
    largest = max(sizes)
    speedup = None
    warm_fraction = None

    for papers in sizes:
        corpus = generate_corpus(papers, seed=SEED)
        documents = [render_dblp(corpus, seed=SEED)]
        reference_dump = None
        timings = {}
        for config in CONFIGS:
            system, seconds, end_to_end = _timed_build(
                corpus,
                documents,
                workers=config["workers"],
                candidate_filter=config["candidate_filter"],
                parallel_threshold=threshold,
                use_cache=False,
            )
            timings[config["name"]] = seconds
            runs.append(
                _run_record(
                    papers, config["name"], config, system, seconds, end_to_end
                )
            )
            if verbose:
                print(
                    f"  {papers:>5} papers  {config['name']:<20} {seconds:8.3f}s",
                    flush=True,
                )
            # Bit-identity across configurations: the canonical JSON dump
            # covers the fused hierarchy, every clique and every edge.
            payload = dump_seo(system.seo)
            if reference_dump is None:
                reference_dump = payload
            elif payload != reference_dump:
                identical_outputs = False

        with tempfile.TemporaryDirectory() as cache_dir:
            cache_config = {"workers": 1, "candidate_filter": True}
            system, cold, cold_e2e = _timed_build(
                corpus, documents, cache_dir=cache_dir, **cache_config
            )
            runs.append(
                _run_record(papers, "cold-cache", cache_config, system, cold,
                            cold_e2e, cache="cold")
            )
            system, warm, warm_e2e = _timed_build(
                corpus, documents, cache_dir=cache_dir, **cache_config
            )
            warm_record = _run_record(
                papers, "warm-cache", cache_config, system, warm, warm_e2e,
                cache="warm"
            )
            runs.append(warm_record)
            if dump_seo(system.seo) != reference_dump:
                identical_outputs = False
            if verbose:
                print(
                    f"  {papers:>5} papers  cache cold/warm      "
                    f"{cold:8.3f}s /{warm:7.3f}s",
                    flush=True,
                )
            if papers == largest:
                speedup = timings["serial-allpairs"] / timings["parallel-4-filtered"]
                warm_fraction = warm / cold

    results = {
        "benchmark": "seo_build",
        "epsilon": EPSILON,
        "seed": SEED,
        "smoke": smoke,
        "sizes": list(sizes),
        "runs": runs,
        "summary": {
            "largest_papers": largest,
            "speedup_parallel4_filtered_vs_serial_allpairs": (
                round(speedup, 2) if speedup is not None else None
            ),
            "warm_cache_fraction_of_cold": (
                round(warm_fraction, 4) if warm_fraction is not None else None
            ),
            "identical_outputs": identical_outputs,
        },
    }
    emit_results(results, out_path=out_path, trajectory_path=trajectory_path)
    return results


# -- pytest entry points (smoke scale; invariants, not timings) -------------


def test_seo_build_smoke(results_dir):
    results = run_benchmark(
        sizes=SMOKE_SIZES,
        smoke=True,
        out_path=results_dir / "seo_build_smoke.json",
        verbose=False,
    )
    assert results["summary"]["identical_outputs"], (
        "parallel / filtered / cached builds disagree with the baseline"
    )
    warm_runs = [run for run in results["runs"] if run["cache"] == "warm"]
    assert warm_runs and all(run["cache_hits"] > 0 for run in warm_runs)
    parallel_runs = [
        run for run in results["runs"] if run["config"] == "parallel-4-filtered"
    ]
    assert parallel_runs and all(run["parallel_used"] for run in parallel_runs)


def test_seo_build_cost(benchmark):
    corpus = generate_corpus(250, seed=SEED)
    documents = [render_dblp(corpus, seed=SEED)]
    benchmark(lambda: build_system(corpus, documents, EPSILON, use_cache=False))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale, parallel threshold 0 (CI crash check)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"paper counts to sweep (default: {FULL_SIZES})",
    )
    args = parser.parse_args(argv)
    sizes = tuple(args.sizes) if args.sizes else (
        SMOKE_SIZES if args.smoke else FULL_SIZES
    )
    out, trajectory = default_output_paths("seo_build", smoke=args.smoke)
    print(f"SEO build benchmark: sizes={sizes} smoke={args.smoke}")
    results = run_benchmark(
        sizes=sizes, smoke=args.smoke, out_path=out, trajectory_path=trajectory
    )
    print(json.dumps(results["summary"], indent=2))
    if not results["summary"]["identical_outputs"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
