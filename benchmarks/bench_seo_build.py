"""SEO precomputation cost and the persistence alternative.

The paper precomputes the SEO "during integration of different XML
databases" and never counts it in query time; this bench makes that cost
visible — fusion + SEA scale roughly quadratically in ontology terms —
and measures the JSON load path a production deployment would use to
amortise it.
"""

import time

from conftest import persist

from repro.data import generate_corpus, render_dblp
from repro.experiments.reporting import format_table
from repro.experiments.workload import build_system
from repro.similarity.persistence import dump_seo, load_seo


def test_seo_build_cost(benchmark, results_dir):
    rows = []
    previous = None
    for papers in (250, 500, 1000):
        corpus = generate_corpus(papers, seed=5)
        dblp = render_dblp(corpus, seed=5)
        started = time.perf_counter()
        system = build_system(corpus, [dblp], 3.0)
        build_seconds = time.perf_counter() - started

        payload = dump_seo(system.seo)
        started = time.perf_counter()
        loaded = load_seo(payload)
        load_seconds = time.perf_counter() - started
        assert loaded.term_count() == system.ontology_size()

        rows.append(
            [
                papers,
                system.ontology_size(),
                build_seconds,
                load_seconds,
                len(payload),
            ]
        )
        # Loading a persisted SEO must be much cheaper than rebuilding.
        assert load_seconds < build_seconds
        previous = build_seconds

    table = format_table(
        ["papers", "ontology terms", "build seconds", "load seconds", "json bytes"],
        rows,
    )
    persist(results_dir, "seo_build_cost.txt",
            "SEO precomputation vs persistence\n" + table)

    corpus = generate_corpus(250, seed=5)
    dblp = render_dblp(corpus, seed=5)
    benchmark(lambda: build_system(corpus, [dblp], 3.0))
