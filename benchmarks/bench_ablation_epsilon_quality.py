"""Ablation: answer quality against the similarity threshold epsilon.

The paper plots time vs epsilon (Figure 16(c)) and reports quality at two
epsilons only (2 and 3).  This ablation completes the picture: sweeping
epsilon shows recall rising towards saturation while precision decays as
confusable-name false positives creep in — quality peaks in the middle,
which is exactly why the DBA-chosen threshold matters.
"""

from conftest import persist

from repro.experiments import run_precision_recall_experiment
from repro.experiments.reporting import format_table

EPSILONS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0)


def test_ablation_epsilon_quality(benchmark, results_dir):
    results = run_precision_recall_experiment(
        n_datasets=2,
        papers_per_dataset=100,
        n_queries=12,
        epsilons=EPSILONS,
        seed=0,
    )
    rows = []
    series = {}
    for epsilon in EPSILONS:
        name = f"TOSS(e={epsilon:g})"
        precision, recall, quality = results.averages(name)
        series[epsilon] = (precision, recall, quality)
        rows.append([epsilon, precision, recall, quality])
    tax_p, tax_r, tax_q = results.averages("TAX")
    rows.append(["TAX", tax_p, tax_r, tax_q])

    table = format_table(["epsilon", "avg P", "avg R", "avg quality"], rows)
    persist(results_dir, "ablation_epsilon_quality.txt",
            "Ablation: quality vs epsilon\n" + table)

    # Recall must be monotone non-decreasing in epsilon.
    recalls = [series[e][1] for e in EPSILONS]
    assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:])), recalls
    # Precision must not increase as epsilon grows.
    precisions = [series[e][0] for e in EPSILONS]
    assert all(a >= b - 1e-9 for a, b in zip(precisions, precisions[1:])), precisions
    # Quality at the extremes is below the best mid-range quality.
    best = max(series[e][2] for e in EPSILONS)
    assert best > series[0.0][2]
    assert best >= series[EPSILONS[-1]][2]

    benchmark(lambda: format_table(["x"], [[1]]))
