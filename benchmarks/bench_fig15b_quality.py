"""Figure 15(b): answer quality sqrt(P*R) against sqrt(TAX recall).

Paper claim: "TOSS (e=3) outperforms TAX for all queries (except the 3
queries mentioned above)" — the exceptions being the tiny-answer queries
where TAX already reaches recall 1.
"""

import math

from conftest import persist

from repro.experiments import run_precision_recall_experiment
from repro.experiments.reporting import fig15b_series


def test_fig15b_quality(benchmark, results_dir):
    results = run_precision_recall_experiment(
        n_datasets=3, papers_per_dataset=100, n_queries=12, seed=0
    )
    persist(results_dir, "fig15b_quality.txt", fig15b_series(results))

    # TOSS(e=3) must beat TAX on quality wherever TAX has not already
    # reached full recall.
    losses = 0
    comparisons = 0
    for tax, toss in results.paired("TOSS(e=3)"):
        if tax.recall >= 1.0:
            continue  # the paper's exempted queries
        comparisons += 1
        if toss.quality < tax.quality:
            losses += 1
    assert comparisons > 0
    assert losses / comparisons <= 0.15, (
        f"TOSS(e=3) lost on quality for {losses}/{comparisons} queries"
    )

    # Average quality ordering: TOSS(e=3) > TOSS(e=2) > TAX.
    _, _, tax_quality = results.averages("TAX")
    _, _, toss2_quality = results.averages("TOSS(e=2)")
    _, _, toss3_quality = results.averages("TOSS(e=3)")
    assert toss3_quality > toss2_quality > tax_quality

    benchmark(lambda: fig15b_series(results))
