"""Shared result emission for the standalone benchmark scripts.

``bench_query_exec`` and ``bench_seo_build`` both write the same payload
twice: the canonical machine-readable copy under ``benchmarks/results/``
and a trajectory copy at the repo root (``BENCH_<name>.json``).  The two
writers used to be duplicated in each script and could drift; this module
is now the single place that knows the layout.

It also owns :func:`stage_breakdown`, which flattens an observability
span tree (:meth:`repro.obs.trace.Span.to_dict` shape) into the
per-stage seconds map the benchmark records embed, so ``BENCH_*.json``
shows where inside the pipeline the measured time went.
"""

from __future__ import annotations

import cProfile
import json
import os
import pathlib
import subprocess

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
PROFILE_DIR = RESULTS_DIR / "profiles"

#: Version of the emitted payload layout.  Bump when the shape every
#: benchmark shares changes (e.g. the ``meta`` block itself), so readers
#: of committed ``BENCH_*.json`` files can tell old records apart.
SCHEMA_VERSION = 2

#: Environment switch for :func:`dump_profile`.  Off by default so the
#: timed sweeps stay unperturbed; CI's smoke-benchmark job sets it to
#: capture pstats artifacts for the largest fig-16 runs.
PROFILE_ENV = "BENCH_PROFILE"


def dump_profile(label, fn):
    """Run ``fn`` once under cProfile and dump ``<label>.pstats``.

    No-op (``fn`` is not even called) unless the :data:`PROFILE_ENV`
    environment variable is set — profiling is an *extra* run after the
    timed measurement, never part of it, so the overhead of the profiler
    cannot leak into recorded timings.  Returns the written path or
    None.  The pstats file reloads with ``pstats.Stats(path)`` so the
    next verify-stage hunt starts from a profile, not a guess.
    """
    if not os.environ.get(PROFILE_ENV):
        return None
    PROFILE_DIR.mkdir(parents=True, exist_ok=True)
    path = PROFILE_DIR / f"{label}.pstats"
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    profiler.dump_stats(path)
    return path


def default_output_paths(name, smoke=False):
    """(canonical, trajectory) paths for a benchmark called ``name``.

    Smoke runs keep only the canonical copy — CI artefacts come from
    ``benchmarks/results/``, and the repo-root trajectory files are
    reserved for full sweeps.
    """
    out = RESULTS_DIR / (f"{name}_smoke.json" if smoke else f"{name}.json")
    trajectory = None if smoke else REPO_ROOT / f"BENCH_{name}.json"
    return out, trajectory


def _git_describe():
    """``git describe --always --dirty`` for the repo, or None.

    Best-effort provenance: benchmarks must run (and emit) fine from a
    tarball or a container without git.
    """
    try:
        return subprocess.run(
            ["git", "-C", str(REPO_ROOT), "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None


def bench_meta():
    """The provenance block every emitted payload carries.

    One place defines it so ``BENCH_query_exec.json`` and the serving
    benches cannot drift apart on what a record says about the machine
    and tree that produced it.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "cpu_count": os.cpu_count(),
        "git_describe": _git_describe(),
    }


def emit_results(results, out_path=None, trajectory_path=None):
    """Write ``results`` as pretty JSON to every non-None path given.

    Both copies are rendered from the same string, so they are
    byte-identical by construction.  A shared :func:`bench_meta`
    provenance block is stamped onto the payload (without mutating the
    caller's dict) unless the caller already supplied one.  Returns the
    list of paths written.
    """
    if isinstance(results, dict) and "meta" not in results:
        results = {**results, "meta": bench_meta()}
    text = json.dumps(results, indent=2) + "\n"
    written = []
    for path in (out_path, trajectory_path):
        if path is None:
            continue
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        written.append(path)
    return written


def stage_breakdown(trace, precision=6):
    """Per-stage seconds from one span tree's first level.

    ``trace`` is a :meth:`repro.obs.trace.Span.to_dict` payload (or None,
    when the run was not traced).  Returns ``{"total_seconds": ...,
    "stages": {child span name: seconds}}``; repeated child names (e.g.
    one span per relation) accumulate.
    """
    if not trace:
        return None
    stages = {}
    for child in trace.get("children", ()):
        name = child.get("name", "?")
        stages[name] = round(
            stages.get(name, 0.0) + float(child.get("seconds", 0.0)), precision
        )
    return {
        "total_seconds": round(float(trace.get("seconds", 0.0)), precision),
        "stages": stages,
    }
