"""Figure 16(b): join time vs total (DBLP + SIGMOD) data size, vs TAX.

Paper shape: linear growth in total data size (with a super-linear tail
when intermediate results dominate), TOSS above TAX with a gap that grows
with data size.
"""

from conftest import persist

from repro.data import generate_corpus, render_dblp, render_sigmod_pages
from repro.experiments import join_scalability
from repro.experiments.reporting import scalability_table
from repro.experiments.workload import build_join_pattern, build_system

PAPER_COUNTS = (100, 200, 400, 800)


def test_fig16b_join_scalability(benchmark, results_dir):
    points = join_scalability(
        paper_counts=PAPER_COUNTS,
        ontology_caps=(50, None),
        epsilon=3.0,
        repeats=2,
        seed=0,
    )
    persist(
        results_dir,
        "fig16b_join_scalability.txt",
        scalability_table(points, "Figure 16(b): join time vs total data size"),
    )

    toss = [p for p in points if p.system_name.startswith("TOSS")]
    tax = sorted(
        (p for p in points if p.system_name == "TAX"),
        key=lambda p: p.data_bytes,
    )
    assert toss and tax

    # Monotone growth with data for every TOSS curve.
    by_ontology: dict = {}
    for point in toss:
        by_ontology.setdefault(point.ontology_terms, []).append(point)
    for series in by_ontology.values():
        series.sort(key=lambda p: p.data_bytes)
        assert series[-1].seconds >= series[0].seconds

    # TOSS at least as slow as TAX on the largest configuration.
    largest_papers = max(p.papers for p in tax)
    tax_large = next(p for p in tax if p.papers == largest_papers)
    toss_large = max(
        p.seconds for p in toss if p.papers == largest_papers
    )
    assert toss_large >= tax_large.seconds * 0.8

    corpus = generate_corpus(200, seed=0)
    keys = corpus.paper_keys()
    dblp = render_dblp(corpus, seed=0, paper_keys=keys)
    pages = render_sigmod_pages(corpus, seed=0, paper_keys=keys)
    system = build_system(corpus, [dblp], 3.0, sigmod_documents=pages)
    pattern = build_join_pattern()
    benchmark(
        lambda: system.join("dblp", "sigmod", pattern, sl_labels=[2, 5])
    )
