"""Serving benchmark: batch throughput and tail latency over worker pools.

PR 5's tentpole claim is that a persistent worker pool turns the
one-query-at-a-time executor into a serving tier — batches of queries
execute concurrently over a snapshot of the built system, and one large
query can partition its candidate scan — without changing a single
answer.  This bench measures both, on the paper's Figure 16(a)
selection workload (2 isa + 4 tag conditions) over a DBLP collection
sharded one paper per document:

* **batch throughput**: a mixed batch of textual fig-16a queries (one
  per author, so every query compiles and verifies real work) runs
  serially in-process, then through :class:`repro.serving.QueryServer`
  pools of 1, 2 and 4 workers.  Every outcome is identity-checked
  against its serial answer; per-query worker latencies give the p50 /
  p95 / max tail figures;
* **intra-query partitioning**: the broad fig-16a selection runs whole,
  then with its candidate document set split 2 and 4 ways
  (:func:`repro.serving.execute_partitioned`), identity-checked against
  the serial result sequence.

Throughput scaling is bounded by the hardware: the shared ``meta``
block records ``cpu_count`` so a 1-core CI box showing ~1x at 4 workers reads as the
honest Amdahl floor it is, not a regression.  The pool start-up cost is
reported separately (like the SEO precompute, it is paid once per
served system, not per query).

Results land in ``benchmarks/results/serving.json`` plus the trajectory
copy ``BENCH_serving.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI crash check

or through pytest (``pytest benchmarks/ --benchmark-only``), which runs
the smoke scale and checks the invariants (identical results, workers
actually serving) without asserting on timings.
"""

import argparse
import os
import sys
import time

from _emit import default_output_paths, emit_results
from repro.data import generate_corpus, render_dblp
from repro.experiments.workload import build_system
from repro.serving import QueryServer, execute_partitioned

FULL_PAPERS = 3000
SMOKE_PAPERS = 60
FULL_BATCH = 32
SMOKE_BATCH = 8
WORKER_COUNTS = (1, 2, 4)
PARTITION_JOBS = (2, 4)
EPSILON = 3.0
SEED = 7

BROAD_QUERY = (
    'inproceedings(author ~ "{author}", '
    'booktitle below "database conference")'
)

#: The heavy half of the serving mix: no selective author condition, so
#: ~a third of the corpus answers and per-query verify work dwarfs the
#: per-query dispatch cost.  Cheap index-pruned author queries measure
#: dispatch overhead and tail latency; these measure work scaling.
HEAVY_QUERY = 'inproceedings(booktitle below "database conference", title)'


def _sharded_dblp(corpus, keys):
    """One document per paper — the layout partitioning exists for."""
    return [render_dblp(corpus, seed=SEED, paper_keys=[key]) for key in keys]


def _build(papers):
    corpus = generate_corpus(papers, seed=SEED)
    documents = _sharded_dblp(corpus, corpus.paper_keys())
    system = build_system(corpus, documents, EPSILON, use_cache=False)
    system.database.get_collection("dblp").search_index(build=True)
    return corpus, system


def _batch_queries(corpus, count):
    """A 50/50 serving mix: index-pruned author selections (distinct
    texts, so each compiles) alternating with the heavy broad-category
    selection (verify-bound)."""
    authors = sorted(corpus.authors.values(), key=lambda a: a.entity_id)
    return [
        HEAVY_QUERY
        if index % 2
        else BROAD_QUERY.format(author=authors[index % len(authors)].canonical)
        for index in range(count)
    ]


def _result_texts(report):
    """Serialized result texts — the wire form itself for served reports.

    ``ExecutionReport.result_texts`` returns the worker's serialized
    payload verbatim (no re-parse), so the identity check compares the
    exact bytes that crossed the process boundary.
    """
    return report.result_texts()


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _serial_baseline(system, queries):
    """(total seconds, per-query result texts) executing in-process."""
    answers = []
    started = time.perf_counter()
    for query in queries:
        answers.append(_result_texts(system.query("dblp", query)))
    return time.perf_counter() - started, answers


def _served_run(system, queries, workers, serial_answers):
    """One pool's record: start-up, batch wall-clock, tails, identity."""
    started = time.perf_counter()
    server = QueryServer(system, workers=workers, default_collection="dblp")
    startup = time.perf_counter() - started
    try:
        # Warm every worker with both query shapes before timing: the
        # serial baseline runs fully warm (second pass over the batch),
        # so the timed served batch should not be charged for one-time
        # per-worker costs — first-touch copy-on-write faults over the
        # inherited system and the dispatch path itself.
        server.execute_many(list(queries[:2]) * workers)
        started = time.perf_counter()
        outcomes = server.execute_many(queries)
        batch_seconds = time.perf_counter() - started
    finally:
        server.close()
    errors = [outcome.error for outcome in outcomes if not outcome.ok]
    if errors:
        raise SystemExit(f"served batch failed: {errors[0]}")
    identical = all(
        _result_texts(outcome.report) == expected
        for outcome, expected in zip(outcomes, serial_answers)
    )
    latencies = [outcome.seconds for outcome in outcomes]
    # Worker-side compute vs everything else: ``outcome.seconds`` is
    # measured inside the worker around the query itself, so the batch
    # wall-clock minus the (per-worker amortized) compute is the
    # dispatch + transport tax the skinny wire format exists to shrink.
    compute = sum(latencies)
    return {
        "workers": workers,
        "startup_seconds": round(startup, 4),
        "batch_seconds": round(batch_seconds, 4),
        "worker_compute_seconds": round(compute, 4),
        "dispatch_overhead_seconds": round(
            max(0.0, batch_seconds - compute / workers), 4
        ),
        "throughput_qps": round(len(queries) / batch_seconds, 2)
        if batch_seconds > 0
        else None,
        "latency_p50": round(_percentile(latencies, 0.50), 4),
        "latency_p95": round(_percentile(latencies, 0.95), 4),
        "latency_max": round(max(latencies), 4),
        "identical": identical,
    }


def _partition_sweep(corpus, system, verbose):
    authors = sorted(corpus.authors.values(), key=lambda a: a.entity_id)
    query = BROAD_QUERY.format(author=authors[0].canonical)
    serial_started = time.perf_counter()
    serial_report = system.query("dblp", query)
    serial_seconds = time.perf_counter() - serial_started
    expected = _result_texts(serial_report)
    runs = []
    with QueryServer(
        system, workers=max(PARTITION_JOBS), default_collection="dblp"
    ) as server:
        for jobs in PARTITION_JOBS:
            started = time.perf_counter()
            merged = execute_partitioned(
                system, server.pool, "dblp", query, jobs=jobs
            )
            seconds = time.perf_counter() - started
            runs.append(
                {
                    "jobs": jobs,
                    "seconds": round(seconds, 4),
                    "speedup": round(serial_seconds / seconds, 2)
                    if seconds > 0
                    else None,
                    "identical": _result_texts(merged) == expected,
                    "results": len(merged.results),
                }
            )
            if verbose:
                print(
                    f"  partitioned jobs={jobs}  {seconds:8.3f}s "
                    f"({runs[-1]['speedup']}x vs serial "
                    f"{serial_seconds:.3f}s)",
                    flush=True,
                )
    return {
        "query": query,
        "serial_seconds": round(serial_seconds, 4),
        "results": len(expected),
        "runs": runs,
    }


def run_benchmark(
    papers=FULL_PAPERS,
    batch=FULL_BATCH,
    smoke=False,
    out_path=None,
    trajectory_path=None,
    verbose=True,
):
    corpus, system = _build(papers)
    queries = _batch_queries(corpus, batch)

    # Warm the compile/plan caches before snapshotting, so the forked
    # workers inherit the same warmed state the serial baseline enjoys.
    serial_seconds, serial_answers = _serial_baseline(system, queries)
    serial_seconds, serial_answers = _serial_baseline(system, queries)
    if verbose:
        print(
            f"  serial          {batch} queries  {serial_seconds:8.3f}s "
            f"({batch / serial_seconds:.2f} q/s)",
            flush=True,
        )

    served = []
    for workers in WORKER_COUNTS:
        record = _served_run(system, queries, workers, serial_answers)
        served.append(record)
        if verbose:
            print(
                f"  workers={workers}       {batch} queries  "
                f"{record['batch_seconds']:8.3f}s "
                f"({record['throughput_qps']} q/s, "
                f"p95 {record['latency_p95']}s)",
                flush=True,
            )

    partitioned = _partition_sweep(corpus, system, verbose)

    by_workers = {record["workers"]: record for record in served}
    results = {
        "benchmark": "serving",
        "epsilon": EPSILON,
        "seed": SEED,
        "smoke": smoke,
        "papers": papers,
        "batch": batch,
        "serial_batch_seconds": round(serial_seconds, 4),
        "serial_throughput_qps": round(batch / serial_seconds, 2),
        "served": served,
        "partitioned": partitioned,
        "summary": {
            "identical_results": all(record["identical"] for record in served)
            and all(run["identical"] for run in partitioned["runs"]),
            "throughput_speedup_at_4": round(
                serial_seconds / by_workers[4]["batch_seconds"], 2
            )
            if by_workers.get(4)
            else None,
            "single_worker_overhead": round(
                by_workers[1]["batch_seconds"] / serial_seconds, 2
            )
            if by_workers.get(1)
            else None,
        },
    }
    emit_results(results, out_path=out_path, trajectory_path=trajectory_path)
    return results


# -- pytest entry points (smoke scale; invariants, not timings) -------------


def test_serving_smoke(results_dir):
    results = run_benchmark(
        papers=SMOKE_PAPERS,
        batch=SMOKE_BATCH,
        smoke=True,
        out_path=results_dir / "serving_smoke.json",
        verbose=False,
    )
    assert results["summary"]["identical_results"], (
        "served execution disagrees with serial execution"
    )
    assert {record["workers"] for record in results["served"]} == set(
        WORKER_COUNTS
    )
    for record in results["served"]:
        assert record["batch_seconds"] > 0
        assert record["latency_p95"] >= record["latency_p50"]
    assert results["partitioned"]["results"] > 0, (
        "the partitioned query answered nothing; the identity check is vacuous"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale (CI crash + identity check)",
    )
    parser.add_argument(
        "--papers",
        type=int,
        default=None,
        help=f"corpus size (default: {FULL_PAPERS}, smoke {SMOKE_PAPERS})",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        help=f"queries per batch (default: {FULL_BATCH}, smoke {SMOKE_BATCH})",
    )
    args = parser.parse_args(argv)
    papers = args.papers or (SMOKE_PAPERS if args.smoke else FULL_PAPERS)
    batch = args.batch or (SMOKE_BATCH if args.smoke else FULL_BATCH)
    out, trajectory = default_output_paths("serving", smoke=args.smoke)
    print(
        f"Serving benchmark: papers={papers} batch={batch} "
        f"workers={WORKER_COUNTS} cpu_count={os.cpu_count()} "
        f"smoke={args.smoke}"
    )
    results = run_benchmark(
        papers=papers,
        batch=batch,
        smoke=args.smoke,
        out_path=out,
        trajectory_path=trajectory,
    )
    summary = results["summary"]
    print(
        f"identical={summary['identical_results']} "
        f"speedup@4={summary['throughput_speedup_at_4']}x "
        f"1-worker-overhead={summary['single_worker_overhead']}x"
    )
    return 0 if summary["identical_results"] else 1


if __name__ == "__main__":
    sys.exit(main())
