"""Figure 16(a): selection time vs data size, per ontology size, vs TAX.

Paper claims to reproduce in shape (absolute numbers depend on hardware
and on Xindice vs our engine):

* time grows roughly linearly with data size;
* time is "almost independent of the ontology size";
* TOSS is slower than TAX by a gap that grows with data size (more
  ontology-expanded disjuncts to test on more data).
"""

from conftest import persist

from repro.data import generate_corpus, render_dblp
from repro.experiments import selection_scalability
from repro.experiments.reporting import scalability_table
from repro.experiments.workload import build_scalability_pattern, build_system

PAPER_COUNTS = (250, 500, 1000, 2000)


def test_fig16a_selection_scalability(benchmark, results_dir):
    points = selection_scalability(
        paper_counts=PAPER_COUNTS,
        ontology_caps=(50, 200, None),
        epsilon=3.0,
        repeats=3,
        seed=0,
    )
    persist(
        results_dir,
        "fig16a_selection_scalability.txt",
        scalability_table(points, "Figure 16(a): selection time vs data size"),
    )

    toss = [p for p in points if p.system_name.startswith("TOSS")]
    tax = sorted(
        (p for p in points if p.system_name == "TAX"),
        key=lambda p: p.data_bytes,
    )

    # Linearity: doubling data should scale time by well under 4x.
    by_ontology: dict = {}
    for point in toss:
        by_ontology.setdefault(point.ontology_terms, []).append(point)
    for series in by_ontology.values():
        series.sort(key=lambda p: p.data_bytes)
        first, last = series[0], series[-1]
        data_ratio = last.data_bytes / first.data_bytes
        time_ratio = last.seconds / max(first.seconds, 1e-9)
        assert time_ratio < data_ratio * 2.5, (
            f"selection no longer ~linear: {time_ratio:.1f}x time for "
            f"{data_ratio:.1f}x data"
        )

    # Near-independence from ontology size: at the largest data size, the
    # spread across ontology curves stays within a small factor.
    largest = max(p.data_bytes for p in toss)
    at_largest = [p.seconds for p in toss if p.data_bytes == largest]
    assert max(at_largest) <= max(4.0 * min(at_largest), min(at_largest) + 0.25)

    # TOSS >= TAX, with the absolute gap growing with data size.
    gaps = []
    for tax_point in tax:
        toss_at = [p.seconds for p in toss if p.papers == tax_point.papers]
        gaps.append(max(toss_at) - tax_point.seconds)
    assert gaps[-1] >= gaps[0], "the TOSS-TAX gap should grow with data size"

    corpus = generate_corpus(500, seed=0)
    dblp = render_dblp(corpus, seed=0)
    system = build_system(corpus, [dblp], 3.0)
    pattern = build_scalability_pattern()
    benchmark(lambda: system.select("dblp", pattern, sl_labels=[1]))
