"""Query execution benchmark: index-pruned vs full-scan TOSS queries.

PR 3's tentpole claim is that the persistent term/path indexes make the
executor's XPath phase sublinear in collection size without changing a
single answer.  This bench measures exactly that, on the paper's own
workloads:

* **Figure 16(a) selection** (2 isa + 4 tag conditions) over a DBLP
  collection sharded one paper per document — the multi-document layout
  the paper's 5 MB-per-document Xindice cap forces at scale.  Two
  instances of the workload run on the same store: the *selective* one
  (narrow isa targets a single venue term, ~6 % of the corpus answers)
  where index pruning pays for the whole scan, and the *broad* one
  (narrow isa = "database conference", ~36 % answers) where the answer
  set itself bounds any possible speedup — verification of the answers
  costs the same on both paths, so this is the honest Amdahl floor;
* **Figure 16(b) join** (5 tag + 1 similarTo) over DBLP x SIGMOD with
  the paper's product-then-select strategy (``similarity_hash_join``
  off), where the cross-side pre-join prunes both collections.

Every timed pair is identity-checked: the indexed run must return the
same result sequence as the scan run or the bench exits non-zero.  The
one-time index build is reported separately (like the paper's SEO
precompute, it is not part of query latency).

Results are emitted as machine-readable JSON into
``benchmarks/results/query_exec.json`` plus a trajectory copy at the
repo root (``BENCH_query_exec.json``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_query_exec.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_query_exec.py --smoke   # CI crash check

or through pytest (``pytest benchmarks/ --benchmark-only``), which runs
the smoke scale and checks the invariants (identical results, pruning
actually engaged) without asserting on timings.
"""

import argparse
import gc
import json
import sys
import time

from _emit import (
    default_output_paths,
    dump_profile,
    emit_results,
    stage_breakdown,
)
from repro.data import generate_corpus, render_dblp
from repro.data.sigmod import render_sigmod_pages
from repro.experiments.workload import (
    build_join_pattern,
    build_scalability_pattern,
    build_system,
)
from repro.obs import Observability
from repro.xmldb.serializer import document_bytes

FULL_SELECTION_SIZES = (500, 1000, 2000, 3000)
SMOKE_SELECTION_SIZES = (60,)
FULL_JOIN_SIZES = (100, 200, 400)
SMOKE_JOIN_SIZES = (40,)
EPSILON = 3.0
SEED = 7
SELECTION_REPEATS = 3
JOIN_REPEATS = 2

#: Timing noise allowance for the "no regression at any size" check.
REGRESSION_SLACK = 1.10

#: Repeats for the telemetry-overhead measurement — more than the
#: speedup sweeps because the quantity of interest is a small *ratio*
#: between two runs of the same query, not a large separation.
OBS_OVERHEAD_REPEATS = 5


def _sharded_dblp(corpus, keys):
    """One document per paper — the layout the index layer exists for."""
    return [render_dblp(corpus, seed=SEED, paper_keys=[key]) for key in keys]


def _timed_runs(run, repeats):
    """(mean seconds, last report) over ``repeats`` timed executions.

    The collector is paused around the timed region (after a full
    collect), the same discipline ``timeit`` applies: a multi-million
    object corpus makes GC pauses land inside individual runs as
    10-50 ms spikes, which would otherwise dominate the sub-100 ms
    figures the compiled paths produce.
    """
    seconds = []
    report = None
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            report = run()
            seconds.append(time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
    return sum(seconds) / len(seconds), report


def _keys(report):
    return [tree.canonical_key() for tree in report.results]


def _measure_modes(system, run, repeats, collections):
    """Time ``run`` with the index on and off; returns the two records.

    The one-time search-index build is forced (and timed) up front so
    the indexed figures measure steady-state query latency; a warmup
    execution per mode absorbs plan-cache compilation for both.
    """
    executor = system.executor
    # Trace the runs (no sinks) so the record can carry the per-stage
    # rewrite/plan/xpath/verify split alongside the wall-clock figures.
    executor.observability = Observability(enabled=True)
    started = time.perf_counter()
    for name in collections:
        system.database.get_collection(name).search_index(build=True)
    index_build = time.perf_counter() - started

    executor.use_index = True
    run()  # warmup: compile + cache the plan
    indexed_seconds, indexed_report = _timed_runs(run, repeats)

    executor.use_index = False
    run()
    scan_seconds, scan_report = _timed_runs(run, repeats)
    executor.use_index = True

    # Ablation: interpreted condition trees + the AST XPath engine +
    # per-document (non-batched) verification must answer identically —
    # the compiled evaluators, the columnar document scan and the
    # set-oriented verifier are pure accelerations, so any divergence
    # here is a correctness bug, not a tuning artifact.
    executor.compile_conditions = False
    executor.verify_batched = False
    for name in collections:
        system.database.get_collection(name).use_columnar = False
    run()  # warmup: the plan cache re-derives the interpreted plan
    interpreted_seconds, interpreted_report = _timed_runs(run, 1)
    executor.compile_conditions = True
    executor.verify_batched = True
    for name in collections:
        system.database.get_collection(name).use_columnar = True

    identical = _keys(indexed_report) == _keys(scan_report)
    interpreted_identical = _keys(indexed_report) == _keys(interpreted_report)
    return {
        "index_build_seconds": round(index_build, 4),
        "indexed_seconds": round(indexed_seconds, 4),
        "scan_seconds": round(scan_seconds, 4),
        "speedup": round(scan_seconds / indexed_seconds, 2)
        if indexed_seconds > 0
        else None,
        "identical": identical,
        "interpreted_seconds": round(interpreted_seconds, 4),
        "compiled_speedup": round(interpreted_seconds / indexed_seconds, 2)
        if indexed_seconds > 0
        else None,
        "interpreted_identical": interpreted_identical,
        "results": len(indexed_report.results),
        "index_used": indexed_report.index_used,
        "docs_total": indexed_report.docs_total,
        "docs_scanned": indexed_report.docs_scanned,
        "plan_cache_hit": indexed_report.plan_cache_hit,
        "indexed_stages": stage_breakdown(indexed_report.trace),
        "scan_stages": stage_breakdown(scan_report.trace),
    }


def _measure_obs_overhead(system, run, repeats):
    """The telemetry spine's wall-clock tax on the indexed fast path.

    Three timings of the same (warmed) query: observability fully off
    (``--no-obs`` semantics: null tracer, metrics and rolling windows
    disabled), the serving default (tracing + metrics + windows), and
    the serving default with the sampling profiler attached.  The two
    ratios over the disabled baseline are what
    ``check_regression.py`` holds the ceilings against.
    """
    from repro.obs import NULL_OBSERVABILITY
    from repro.obs.metrics import REGISTRY as METRICS
    from repro.obs.profile import SamplingProfiler
    from repro.obs.window import WINDOWS

    executor = system.executor
    metrics_enabled = METRICS.enabled
    windows_enabled = WINDOWS.enabled
    try:
        executor.observability = NULL_OBSERVABILITY
        METRICS.enabled = False
        WINDOWS.enabled = False
        run()  # warmup under the new mode
        disabled_seconds, _ = _timed_runs(run, repeats)

        executor.observability = Observability(enabled=True)
        METRICS.enabled = True
        WINDOWS.enabled = True
        run()
        enabled_seconds, _ = _timed_runs(run, repeats)

        profiler = SamplingProfiler().start()
        try:
            run()
            profiler_seconds, _ = _timed_runs(run, repeats)
        finally:
            profiler.stop()
        exemplar = profiler.take_exemplar()
    finally:
        METRICS.enabled = metrics_enabled
        WINDOWS.enabled = windows_enabled
        WINDOWS.reset()
    return {
        "repeats": repeats,
        "disabled_seconds": round(disabled_seconds, 4),
        "enabled_seconds": round(enabled_seconds, 4),
        "profiler_seconds": round(profiler_seconds, 4),
        "enabled_overhead": round(enabled_seconds / disabled_seconds, 3)
        if disabled_seconds > 0
        else None,
        "profiler_overhead": round(profiler_seconds / disabled_seconds, 3)
        if disabled_seconds > 0
        else None,
        "profiler_hz": profiler.hz,
        "profiler_samples": exemplar["samples"],
    }


#: The selective fig-16a instance: same 2 isa + 4 tag shape, but the
#: narrow isa targets one venue term (a long, unambiguous surface form,
#: so ε-merging cannot balloon its μ-class) — ~6 % of papers answer.
SELECTIVE_NARROW = "SIGMOD Conference"

SELECTION_VARIANTS = (
    (
        "selection",
        build_scalability_pattern(
            narrow_category=SELECTIVE_NARROW,
            broad_category="database conference",
        ),
    ),
    ("selection-broad", build_scalability_pattern()),
)


def _selection_sweep(sizes, verbose):
    corpus = generate_corpus(max(sizes), seed=SEED)
    all_keys = corpus.paper_keys()
    runs = []
    obs_overhead = None
    for papers in sizes:
        documents = _sharded_dblp(corpus, all_keys[:papers])
        system = build_system(corpus, documents, EPSILON, use_cache=False)
        for operation, pattern in SELECTION_VARIANTS:
            record = _measure_modes(
                system,
                lambda: system.select("dblp", pattern, sl_labels=[1]),
                SELECTION_REPEATS,
                ["dblp"],
            )
            record.update(
                operation=operation,
                papers=papers,
                data_bytes=sum(document_bytes(d) for d in documents),
            )
            runs.append(record)
            if papers == max(sizes):
                # Post-measurement pstats capture (BENCH_PROFILE only):
                # one extra indexed run of the largest instance, outside
                # every timed region.
                dump_profile(
                    f"query_exec_{operation}_{papers}",
                    lambda: system.select("dblp", pattern, sl_labels=[1]),
                )
            if verbose:
                print(
                    f"  {operation:<15} {papers:>5} papers  "
                    f"scan {record['scan_seconds']:8.3f}s  "
                    f"indexed {record['indexed_seconds']:8.3f}s  "
                    f"({record['speedup']:.1f}x, scanned "
                    f"{record['docs_scanned']}/{record['docs_total']} docs)",
                    flush=True,
                )
        if papers == max(sizes):
            # Telemetry tax on the broad (verify-bound) instance at the
            # largest scale: the longest-running selection, so the ratio
            # is the least noise-dominated figure the sweep can produce.
            _, broad_pattern = SELECTION_VARIANTS[1]
            obs_overhead = _measure_obs_overhead(
                system,
                lambda: system.select("dblp", broad_pattern, sl_labels=[1]),
                OBS_OVERHEAD_REPEATS,
            )
            if verbose:
                print(
                    f"  {'obs-overhead':<15} {papers:>5} papers  "
                    f"off {obs_overhead['disabled_seconds']:8.3f}s  "
                    f"on {obs_overhead['enabled_seconds']:8.3f}s "
                    f"({obs_overhead['enabled_overhead']}x)  "
                    f"profiled {obs_overhead['profiler_seconds']:8.3f}s "
                    f"({obs_overhead['profiler_overhead']}x)",
                    flush=True,
                )
    return runs, obs_overhead


def _join_sweep(sizes, verbose):
    corpus = generate_corpus(max(sizes), seed=SEED)
    all_keys = corpus.paper_keys()
    pattern = build_join_pattern()
    runs = []
    for papers in sizes:
        keys = all_keys[:papers]
        documents = _sharded_dblp(corpus, keys)
        pages = render_sigmod_pages(corpus, seed=SEED, paper_keys=keys)
        system = build_system(
            corpus, documents, EPSILON, sigmod_documents=pages, use_cache=False
        )
        # The paper's Figure 16(b) strategy: product + selection.
        system.executor.similarity_hash_join = False
        record = _measure_modes(
            system,
            lambda: system.join("dblp", "sigmod", pattern, sl_labels=[2, 5]),
            JOIN_REPEATS,
            ["dblp", "sigmod"],
        )
        record.update(
            operation="join",
            papers=papers,
            data_bytes=sum(document_bytes(d) for d in documents)
            + sum(document_bytes(p) for p in pages),
        )
        runs.append(record)
        if papers == max(sizes):
            dump_profile(
                f"query_exec_join_{papers}",
                lambda: system.join(
                    "dblp", "sigmod", pattern, sl_labels=[2, 5]
                ),
            )
        if verbose:
            print(
                f"  {'join':<15} {papers:>5} papers  "
                f"scan {record['scan_seconds']:8.3f}s  "
                f"indexed {record['indexed_seconds']:8.3f}s  "
                f"({record['speedup']:.1f}x, scanned "
                f"{record['docs_scanned']}/{record['docs_total']} docs)",
                flush=True,
            )
    return runs


def run_benchmark(
    selection_sizes=FULL_SELECTION_SIZES,
    join_sizes=FULL_JOIN_SIZES,
    smoke=False,
    out_path=None,
    trajectory_path=None,
    verbose=True,
):
    runs, obs_overhead = _selection_sweep(selection_sizes, verbose)
    runs += _join_sweep(join_sizes, verbose)

    selections = [r for r in runs if r["operation"] == "selection"]
    broad = [r for r in runs if r["operation"] == "selection-broad"]
    joins = [r for r in runs if r["operation"] == "join"]
    largest_selection = max(selections, key=lambda r: r["papers"])
    largest_broad = max(broad, key=lambda r: r["papers"])
    largest_join = max(joins, key=lambda r: r["papers"])
    results = {
        "benchmark": "query_exec",
        "epsilon": EPSILON,
        "seed": SEED,
        "smoke": smoke,
        "selection_sizes": list(selection_sizes),
        "join_sizes": list(join_sizes),
        "obs_overhead": obs_overhead,
        "runs": runs,
        "summary": {
            "identical_results": all(r["identical"] for r in runs),
            "interpreted_identical": all(r["interpreted_identical"] for r in runs),
            "index_used": all(r["index_used"] for r in runs),
            "selection_speedup_at_largest": largest_selection["speedup"],
            "selection_broad_speedup_at_largest": largest_broad["speedup"],
            "join_speedup_at_largest": largest_join["speedup"],
            # Set-oriented verify floors: interpreted-over-compiled at
            # the largest instances, plus the absolute join latency the
            # late-materialised path is accountable for.
            "broad_compiled_speedup_at_largest": largest_broad[
                "compiled_speedup"
            ],
            "join_compiled_speedup_at_largest": largest_join[
                "compiled_speedup"
            ],
            "join_indexed_seconds_at_largest": largest_join["indexed_seconds"],
            "obs_enabled_overhead": obs_overhead["enabled_overhead"],
            "obs_profiler_overhead": obs_overhead["profiler_overhead"],
            "join_regression": any(
                r["indexed_seconds"] > r["scan_seconds"] * REGRESSION_SLACK
                for r in joins
            ),
        },
    }
    emit_results(results, out_path=out_path, trajectory_path=trajectory_path)
    return results


# -- pytest entry points (smoke scale; invariants, not timings) -------------


def test_query_exec_smoke(results_dir):
    results = run_benchmark(
        selection_sizes=SMOKE_SELECTION_SIZES,
        join_sizes=SMOKE_JOIN_SIZES,
        smoke=True,
        out_path=results_dir / "query_exec_smoke.json",
        verbose=False,
    )
    assert results["summary"]["identical_results"], (
        "indexed execution disagrees with the full scan"
    )
    assert results["summary"]["interpreted_identical"], (
        "compiled execution disagrees with the interpreted path"
    )
    assert results["summary"]["index_used"]
    # Pruning must actually engage — and keep a non-empty answer so the
    # identity check is not vacuous — even at smoke scale.
    for run in results["runs"]:
        assert run["docs_scanned"] < run["docs_total"], run
        assert run["results"] > 0, run
    # The telemetry-tax record is always measured (ratios are asserted
    # only on committed full-sweep results, where noise is amortized).
    overhead = results["obs_overhead"]
    assert overhead["enabled_overhead"] is not None
    assert overhead["profiler_overhead"] is not None


def test_query_exec_cost(benchmark):
    corpus = generate_corpus(100, seed=SEED)
    documents = _sharded_dblp(corpus, corpus.paper_keys())
    system = build_system(corpus, documents, EPSILON, use_cache=False)
    pattern = build_scalability_pattern()
    system.database.get_collection("dblp").search_index(build=True)
    system.select("dblp", pattern, sl_labels=[1])  # warmup
    benchmark(lambda: system.select("dblp", pattern, sl_labels=[1]))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale (CI crash + identity check)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"selection paper counts to sweep (default: {FULL_SELECTION_SIZES})",
    )
    parser.add_argument(
        "--join-sizes",
        type=int,
        nargs="+",
        default=None,
        help=f"join paper counts to sweep (default: {FULL_JOIN_SIZES})",
    )
    args = parser.parse_args(argv)
    selection_sizes = (
        tuple(args.sizes)
        if args.sizes
        else (SMOKE_SELECTION_SIZES if args.smoke else FULL_SELECTION_SIZES)
    )
    join_sizes = (
        tuple(args.join_sizes)
        if args.join_sizes
        else (SMOKE_JOIN_SIZES if args.smoke else FULL_JOIN_SIZES)
    )
    out, trajectory = default_output_paths("query_exec", smoke=args.smoke)
    print(
        f"Query execution benchmark: selection={selection_sizes} "
        f"join={join_sizes} smoke={args.smoke}"
    )
    results = run_benchmark(
        selection_sizes=selection_sizes,
        join_sizes=join_sizes,
        smoke=args.smoke,
        out_path=out,
        trajectory_path=trajectory,
    )
    print(json.dumps(results["summary"], indent=2))
    if not results["summary"]["identical_results"]:
        return 1
    if results["summary"]["join_regression"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
