"""Shared plumbing for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's figures: it runs
the corresponding experiment from :mod:`repro.experiments`, prints the
paper-shaped table, persists it under ``benchmarks/results/`` and hands
one representative callable to pytest-benchmark for stable timing.

Run everything with::

    pytest benchmarks/ --benchmark-only

(add ``-s`` to see the tables inline; they are always written to the
results directory either way).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def persist(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a results table and write it next to the benchmarks."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
