"""Figure 15(a): precision and recall — TAX vs TOSS(e=2) vs TOSS(e=3).

Paper protocol: 12 selection queries on 3 datasets of 100 random DBLP
papers; each query has 1 isa + 1 similarTo + 3 tag conditions; TAX
degrades isa to `contains` and similarTo to exact match.

Paper numbers: TAX precision 1.0 with recall < 0.5 for 75% of queries;
TOSS(e=3) averages P=0.942 / R=0.843; TOSS(e=2) averages P=0.987 /
R=0.596.  The shape assertions below encode exactly that ordering.
"""

from conftest import persist

from repro.experiments import run_precision_recall_experiment
from repro.experiments.reporting import fig15a_summary, fig15a_table
from repro.experiments.workload import build_selection_workload, build_system
from repro.data import generate_corpus, render_dblp


def test_fig15a_precision_recall(benchmark, results_dir):
    results = run_precision_recall_experiment(
        n_datasets=3, papers_per_dataset=100, n_queries=12, seed=0
    )
    table = fig15a_table(results)
    summary = fig15a_summary(results)
    persist(
        results_dir,
        "fig15a_precision_recall.txt",
        "Figure 15(a): precision/recall per query\n"
        + table + "\n\n" + summary,
    )

    tax_p, tax_r, tax_q = results.averages("TAX")
    toss2_p, toss2_r, _ = results.averages("TOSS(e=2)")
    toss3_p, toss3_r, _ = results.averages("TOSS(e=3)")

    # The paper's qualitative claims.
    assert tax_p == 1.0, "TAX's exact matching must keep 100% precision"
    assert results.fraction_tax_recall_below(0.5) >= 0.5
    assert toss3_r > toss2_r > tax_r, "recall must grow with epsilon"
    assert toss2_p >= toss3_p - 0.05, "lower epsilon must not cost precision"
    assert toss3_p > 0.8 and toss3_r > 0.6

    # Benchmark one representative TOSS query end to end.
    corpus = generate_corpus(100, seed=0)
    dblp = render_dblp(corpus, seed=0)
    queries = build_selection_workload(corpus, 12, seed=0)
    system = build_system(corpus, [dblp], 3.0)
    query = queries[0]

    benchmark(
        lambda: system.select("dblp", query.toss_pattern, query.sl_labels)
    )
